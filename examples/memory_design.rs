//! Memory design flow: from a workload description to a synthesised SRAM.
//!
//! This is the paper's §5.3 pipeline as a tool: pick a workload and weight
//! configuration, compute the minimum fast memory size for the optimal /
//! tiling scheduler and for the baseline, round to powers of two, run both
//! through the SRAM macro model, and report the area/power savings that the
//! better schedule buys at the circuit level.
//!
//! ```sh
//! cargo run --example memory_design
//! ```

use pebblyn::prelude::*;
use pebblyn::synth::sram::reduction_pct;

struct DesignRow {
    workload: String,
    scheme: &'static str,
    ours_bits: Weight,
    baseline_bits: Weight,
}

fn main() {
    let mut rows = Vec::new();

    // DWT(256, 8): optimum vs layer-by-layer (Table 1 rows 1-4).
    for scheme in WeightScheme::paper_configs() {
        let dwt = DwtGraph::new(256, 8, scheme).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let ours = min_memory(
            |b| dwt_opt::min_cost(&dwt, b),
            lb,
            MinMemoryOptions::for_graph(g).monotone(true),
        )
        .expect("optimum reaches the bound");
        let baseline = min_memory(
            |b| layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default()),
            lb,
            MinMemoryOptions::for_graph(g),
        )
        .expect("baseline reaches the bound eventually");
        rows.push(DesignRow {
            workload: "DWT(256, 8)".into(),
            scheme: scheme.label(),
            ours_bits: ours,
            baseline_bits: baseline,
        });
    }

    // MVM(96, 120): tiling vs the IOOpt upper-bound model (rows 5-8).
    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(96, 120, scheme).unwrap();
        let ioopt = IoOptMvmModel::for_graph(&mvm);
        rows.push(DesignRow {
            workload: "MVM(96, 120)".into(),
            scheme: scheme.label(),
            ours_bits: mvm_tiling::min_memory(&mvm),
            baseline_bits: ioopt.min_memory(),
        });
    }

    // Synthesise every design and print the comparison.
    let process = Process::default();
    println!(
        "{:<14} {:<6} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9}",
        "workload", "wts", "ours", "baseline", "area ours", "area base", "Δarea", "Δleak"
    );
    for row in &rows {
        let ours = SramConfig::words16(round_pow2(row.ours_bits)).synthesize(&process);
        let base = SramConfig::words16(round_pow2(row.baseline_bits)).synthesize(&process);
        println!(
            "{:<14} {:<6} {:>8} b {:>8} b {:>9.0}λ² {:>9.0}λ² {:>8.1}% {:>8.1}%",
            row.workload,
            row.scheme,
            row.ours_bits,
            row.baseline_bits,
            ours.area_l2,
            base.area_l2,
            reduction_pct(base.area_l2, ours.area_l2),
            reduction_pct(base.leakage_mw, ours.leakage_mw),
        );
    }

    // Figure-8-style floorplan comparison for the headline DWT row.
    let ours = SramConfig::words16(round_pow2(rows[0].ours_bits)).synthesize(&process);
    let base = SramConfig::words16(round_pow2(rows[0].baseline_bits)).synthesize(&process);
    println!(
        "\nfloorplans, Equal DWT(256, 8) — drawn areas proportional to silicon:\n{}",
        Floorplan::of(&ours)
            .render_comparison(&Floorplan::of(&base), ("Optimum", "Layer-by-Layer"))
    );

    println!(
        "throughput stays flat: {:.0} GB/s (ours) vs {:.0} GB/s (baseline) peak read",
        ours.read_gbps, base.read_gbps
    );

    // Close the loop: price one DWT frame's data movement with the
    // synthesized macro's own access energies plus embedded-Flash costs.
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let schedule = dwt_opt::schedule(&dwt, 160).unwrap();
    let (load_pj, store_pj) = ours.transfer_energy_per_bit(&NvmParams::default());
    let model = EnergyModel {
        load_pj_per_bit: load_pj,
        store_pj_per_bit: store_pj,
        compute_pj_per_op: 0.5,
    };
    let ops = pebblyn::kernels::haar::op_table(&dwt);
    let env = pebblyn::kernels::haar::inputs_for(&dwt, &vec![0.25; 256]);
    let report = Machine::new(dwt.cdag(), &ops, 160)
        .with_energy_model(model)
        .run(&schedule, &env)
        .unwrap();
    println!(
        "
energy per DWT frame on the synthesized 256-bit SRAM: {:.1} nJ          ({:.2} pJ/bit loads, {:.2} pJ/bit stores)",
        report.energy.total_pj() / 1000.0,
        load_pj,
        store_pj
    );
}
