//! Quickstart: build a weighted DWT graph, generate an optimal schedule,
//! validate it, and execute it on the two-level memory machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pebblyn::prelude::*;

fn main() {
    // An 8-sample, 3-level Haar DWT with 16-bit samples and 32-bit
    // accumulators (the paper's Double-Accumulator configuration).
    let dwt = DwtGraph::new(8, 3, WeightScheme::DoubleAccumulator(16)).unwrap();
    let g = dwt.cdag();
    println!(
        "DWT(8, 3): {} nodes, {} edges, total weight {} bits",
        g.len(),
        g.edge_count(),
        g.total_weight()
    );

    // The two fundamental quantities of the model.
    let lb = algorithmic_lower_bound(g);
    let minb = min_feasible_budget(g);
    println!("algorithmic lower bound: {lb} bits of I/O");
    println!("minimum feasible budget: {minb} bits of fast memory");

    // Sweep budgets: cost falls as fast memory grows, until it pins to the
    // lower bound.
    println!(
        "\n{:>12} {:>14} {:>14}",
        "budget", "optimal I/O", "naive I/O"
    );
    let naive_cost = naive::cost(g);
    let mut b = minb;
    while b <= g.total_weight() {
        if let Some(c) = dwt_opt::min_cost(&dwt, b) {
            println!("{b:>10} b {c:>12} b {naive_cost:>12} b");
        }
        b += 48;
    }

    // Generate the optimal schedule at a tight budget and replay it through
    // the independent validator.
    let budget = 288; // 18 words of 16 bits — Table 1's DA DWT row
    let schedule = dwt_opt::schedule(&dwt, budget).expect("schedule exists");
    let stats = validate_schedule(g, budget, &schedule).expect("schedule is valid");
    println!(
        "\nat {budget} bits: {} moves, cost {} bits (lower bound {lb}), peak {} bits",
        stats.moves, stats.cost, stats.peak_red_weight
    );

    // Execute it with real numbers: the machine checks every output value
    // against a schedule-free reference evaluation.
    let signal = vec![4.0, 2.0, 6.0, 8.0, -1.0, 1.0, 3.0, 5.0];
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &signal);
    let machine = Machine::new(g, &ops, budget);
    let report = machine.run(&schedule, &env).expect("execution succeeds");
    println!(
        "machine: {} bits moved, {:.1} pJ ({:.0}% spent on data movement)",
        report.io_bits,
        report.energy.total_pj(),
        100.0 * report.energy.movement_fraction()
    );

    // The deepest average equals the scaled signal mean — read it off the
    // machine's slow memory.
    let root = dwt.tree_roots()[0];
    println!(
        "DWT root (scaled signal mean): {:.4}",
        report.outputs[&root]
    );
}
