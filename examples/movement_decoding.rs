//! Movement-intent decoding: the paper's MVM workload, end to end.
//!
//! A linear decoder maps 120 neural features to 96 output channels —
//! `MVM(96, 120)`, the paper's Utah-array-scale benchmark.  The §4.3 tiling
//! scheduler is run in both weight configurations at their Table 1 minimum
//! memory sizes, executed on the memory machine with fixed-point-faithful
//! data, and compared against the IOOpt upper bound.
//!
//! ```sh
//! cargo run --example movement_decoding
//! ```

use pebblyn::kernels::mvm as mvm_kernel;
use pebblyn::kernels::signal::SignalConfig;
use pebblyn::prelude::*;

const M: usize = 96; // decoder outputs (electrode channels)
const N: usize = 120; // neural features

fn main() {
    // Deterministic synthetic decoder weights and feature vector.
    let feature_cfg = SignalConfig {
        samples: N,
        seed: 7,
        ..Default::default()
    };
    let features: Vec<f64> = signal::generate_channel(&feature_cfg)
        .iter()
        .map(|s| (s * 0.05).clamp(-0.99, 0.99))
        .collect();
    let weights_cfg = SignalConfig {
        samples: M * N,
        seed: 11,
        ..Default::default()
    };
    let weights: Vec<f64> = signal::generate_channel(&weights_cfg)
        .iter()
        .map(|s| (s * 0.02).clamp(-0.99, 0.99))
        .collect();
    let a = mvm_kernel::Matrix::new(M, N, weights);

    println!("decoding {M} outputs from {N} features (MVM({M}, {N}))\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "min mem", "tiling I/O", "IOOpt UB", "tile"
    );

    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(M, N, scheme).unwrap();
        let g = mvm.cdag();
        let lb = algorithmic_lower_bound(g);

        // Definition 2.6: smallest budget at which tiling hits the bound.
        let budget = mvm_tiling::min_memory(&mvm);
        let cfg = mvm_tiling::best_config(&mvm, budget).unwrap();
        let schedule = mvm_tiling::schedule_with_config(&mvm, &cfg);
        let stats = validate_schedule(g, budget, &schedule).unwrap();
        assert_eq!(stats.cost, lb, "tiling reaches the lower bound");

        // What IOOpt's fixed split would transfer at the same memory size.
        let ioopt = IoOptMvmModel::for_graph(&mvm);
        let ub = ioopt
            .upper_bound(budget)
            .map(|c| format!("{c}"))
            .unwrap_or_else(|| "infeasible".into());

        println!(
            "{:<22} {:>8} b {:>10} b {:>10} b {:>10}",
            scheme.to_string(),
            budget,
            stats.cost,
            ub,
            format!("h={},x={}", cfg.tile_height, cfg.resident_vector),
        );

        // Execute on the machine and spot-check the decoded outputs.
        let ops = mvm_kernel::op_table(&mvm);
        let env = mvm_kernel::inputs_for(&mvm, &a, &features);
        let machine = Machine::new(g, &ops, budget);
        let report = machine.run(&schedule, &env).expect("decode executes");
        let expected = mvm_kernel::mvm_ref(&a, &features);
        for r in [1, M / 2, M] {
            let got = report.outputs[&mvm.output(r)];
            assert!((got - expected[r - 1]).abs() < 1e-9);
        }
        println!(
            "    decoded e.g. y[1] = {:+.5}, y[{M}] = {:+.5}; energy {:.1} nJ/decode",
            expected[0],
            expected[M - 1],
            report.energy.total_pj() / 1000.0
        );
    }

    // The fixed-point view: why accumulators weigh twice the inputs.
    let float_y0: f64 = (0..N).map(|c| a.at(0, c) * features[c]).sum();
    let fixed_y0 = fixed::fixed_dot(&(0..N).map(|c| a.at(0, c)).collect::<Vec<_>>(), &features);
    println!(
        "\nfixed-point check (16-bit samples, 32-bit accumulator): float {float_y0:+.6} vs Q15 {fixed_y0:+.6}"
    );
}
