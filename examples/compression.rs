//! On-implant neural data compression — the paper's other DWT use case
//! ("time-frequency analysis on signals and data compression pipelines").
//!
//! Implanted BCIs cannot stream raw 20–30 kHz data over their power budget;
//! they compress on-device by wavelet-transforming each frame, keeping only
//! the largest coefficients, and transmitting those.  This example runs the
//! forward `DWT(256, 8)` through its optimal WRBPG schedule on the memory
//! machine (10 words of SRAM!), thresholds the coefficients, reconstructs
//! with the inverse transform, and reports compression ratio vs
//! reconstruction error — plus the data-movement energy per frame.
//!
//! ```sh
//! cargo run --release --example compression
//! ```

use pebblyn::kernels::haar::{haar_idwt, HaarLevel};
use pebblyn::kernels::signal::SignalConfig;
use pebblyn::prelude::*;

const WINDOW: usize = 256;
const LEVELS: usize = 8;

fn main() {
    let dwt = DwtGraph::new(WINDOW, LEVELS, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let budget: Weight = 160; // Table 1's 10 words
    let schedule = dwt_opt::schedule(&dwt, budget).unwrap();
    let stats = validate_schedule(g, budget, &schedule).unwrap();
    assert_eq!(stats.cost, algorithmic_lower_bound(g));

    let recording = signal::generate_channel(&SignalConfig {
        samples: 8 * WINDOW,
        seed: 99,
        ..Default::default()
    });

    let ops = haar::op_table(&dwt);
    let machine = Machine::new(g, &ops, budget);

    println!(
        "frame = {WINDOW} samples, {LEVELS}-level Haar DWT on a 10-word SRAM ({} bits moved/frame)\n",
        stats.cost
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "keep top", "ratio", "NRMSE", "energy/frame"
    );

    for keep_fraction in [0.50, 0.25, 0.10, 0.05] {
        let mut total_err = 0.0;
        let mut total_ref = 0.0;
        let mut energy_pj = 0.0;
        for frame in recording.chunks_exact(WINDOW) {
            // Forward transform via the schedule (checked against the
            // reference inside the machine).
            let env = haar::inputs_for(&dwt, frame);
            let report = machine.run(&schedule, &env).expect("frame executes");
            energy_pj += report.energy.total_pj();

            // Collect the levels from the machine outputs.
            let mut levels: Vec<HaarLevel> = Vec::with_capacity(LEVELS);
            for k in 1..=LEVELS {
                let layer = k + 1;
                let nodes = &dwt.layers()[layer - 1];
                let mut averages = Vec::new();
                let mut coefficients = Vec::new();
                for (j, &v) in nodes.iter().enumerate() {
                    // Interior averages are not outputs; recompute them via
                    // the reference when absent (only coefficients and the
                    // deepest averages are sinks).
                    let value = report.outputs.get(&v).copied();
                    if (j + 1) % 2 == 1 {
                        averages.push(value.unwrap_or(f64::NAN));
                    } else {
                        coefficients.push(value.expect("coefficients are outputs"));
                    }
                }
                levels.push(HaarLevel {
                    averages,
                    coefficients,
                });
            }
            // Fill the interior averages from the reference transform (the
            // implant never stores them — that is the point of the
            // schedule — but the reconstruction only needs the deepest
            // ones, which are outputs).
            let reference = haar::haar_dwt(frame, LEVELS);
            for (lvl, ref_lvl) in levels.iter_mut().zip(&reference) {
                lvl.averages = ref_lvl.averages.clone();
            }

            // Keep the top fraction of coefficients by magnitude.
            let mut all: Vec<f64> = levels
                .iter()
                .flat_map(|l| l.coefficients.iter().map(|c| c.abs()))
                .collect();
            all.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let keep = ((all.len() as f64 * keep_fraction) as usize).max(1);
            let threshold = all[keep - 1];
            for l in &mut levels {
                for c in &mut l.coefficients {
                    if c.abs() < threshold {
                        *c = 0.0;
                    }
                }
            }

            let back = haar_idwt(&levels);
            for (a, b) in frame.iter().zip(&back) {
                total_err += (a - b) * (a - b);
                total_ref += a * a;
            }
        }
        let nrmse = (total_err / total_ref).sqrt();
        let kept_coeffs = (255.0 * keep_fraction) as usize + 1;
        let ratio = WINDOW as f64 / (kept_coeffs + 1) as f64;
        println!(
            "{:>9.0}% {:>11.1}x {:>12.4} {:>11.1} nJ",
            keep_fraction * 100.0,
            ratio,
            nrmse,
            energy_pj / 1000.0 / 8.0
        );
    }

    println!("\n(NRMSE = normalised RMS reconstruction error; energy is slow-memory traffic only)");
}
