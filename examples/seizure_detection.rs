//! Seizure detection on an implanted BCI: the paper's motivating DWT
//! workload, end to end.
//!
//! A synthetic neural recording (with an injected ictal event) is processed
//! window-by-window: each 256-sample window runs through the `DWT(256, 8)`
//! graph using the *optimal* WRBPG schedule under a 10-word fast memory —
//! the Table 1 headline configuration — executed on the two-level memory
//! machine.  Wavelet band energies feed a threshold detector.  The same
//! pipeline is priced with the layer-by-layer baseline to show the energy
//! gap.
//!
//! ```sh
//! cargo run --example seizure_detection
//! ```

use pebblyn::kernels::signal::{SeizureEvent, SignalConfig};
use pebblyn::prelude::*;

const WINDOW: usize = 256;
const LEVELS: usize = 8;

fn main() {
    // ~4 s of 1 kHz single-channel recording with a seizure in the middle.
    let cfg = SignalConfig {
        samples: 16 * WINDOW,
        fs_hz: 1000.0,
        seed: 42,
        events: vec![SeizureEvent {
            start: 8 * WINDOW,
            len: 3 * WINDOW,
            amplitude: 9.0,
            freq_hz: 5.0,
        }],
        ..Default::default()
    };
    let recording = signal::generate_channel(&cfg);

    // The workload graph and its optimal schedule at the paper's minimum
    // memory: 10 words = 160 bits (Equal weighting).
    let dwt = DwtGraph::new(WINDOW, LEVELS, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let budget: Weight = 160;
    let lb = algorithmic_lower_bound(g);

    let optimal = dwt_opt::schedule(&dwt, budget).expect("optimal schedule at 10 words");
    let stats = validate_schedule(g, budget, &optimal).unwrap();
    assert_eq!(stats.cost, lb, "10 words reach the lower bound (Table 1)");

    // The baseline needs far more memory; at 10 words it cannot even run
    // spill-free — price it at the same budget for the energy comparison.
    let baseline = layer_by_layer::schedule(&dwt, budget, LayerByLayerOptions::default())
        .expect("layer-by-layer runs, with spills");
    let base_stats = validate_schedule(g, budget, &baseline).unwrap();

    println!("window = {WINDOW} samples, {LEVELS} DWT levels, fast memory = {budget} bits");
    println!(
        "optimal schedule:        {:>8} bits/window (= lower bound)",
        stats.cost
    );
    println!(
        "layer-by-layer baseline: {:>8} bits/window ({:.2}x)",
        base_stats.cost,
        base_stats.cost as f64 / stats.cost as f64
    );

    // Stream the recording through the machine window by window.
    let ops = haar::op_table(&dwt);
    let machine = Machine::new(g, &ops, budget);
    let mut detector = features::ThresholdDetector::new(4.0);
    let mut total_pj = 0.0;
    let mut detections = Vec::new();

    println!("\n{:>7} {:>14} {:>10}", "window", "deep energy", "seizure?");
    for (w, window) in recording.chunks_exact(WINDOW).enumerate() {
        let env = haar::inputs_for(&dwt, window);
        let report = machine.run(&optimal, &env).expect("window executes");
        total_pj += report.energy.total_pj();

        // Reconstruct per-level coefficient energy from the machine outputs.
        let mut deep_energy = 0.0;
        for level in 5..=LEVELS {
            let layer = level + 1;
            for (j, &node) in dwt.layers()[layer - 1].iter().enumerate() {
                if (j + 1) % 2 == 0 {
                    // coefficient node
                    let c = report.outputs[&node];
                    deep_energy += c * c;
                }
            }
        }
        let fired = detector.step(deep_energy);
        if fired {
            detections.push(w);
        }
        println!(
            "{w:>7} {deep_energy:>14.2} {:>10}",
            if fired { "DETECTED" } else { "-" }
        );
    }

    let ictal_windows: Vec<usize> = (8..11).collect();
    println!(
        "\ninjected seizure spans windows {:?}; detector fired in {:?}",
        ictal_windows, detections
    );
    assert!(
        detections.iter().any(|w| ictal_windows.contains(w)),
        "the detector must fire during the injected event"
    );
    println!(
        "total data-movement energy: {:.1} nJ across {} windows",
        total_pj / 1000.0,
        recording.len() / WINDOW
    );
}
