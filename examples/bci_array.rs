//! Full electrode-array processing: 96 channels of DWT feature extraction
//! distributed over multiple compute sites.
//!
//! Emerging BCI processors (e.g. the distributed systems the paper's
//! group builds) ship several compute sites, each with a small private
//! SRAM.  This example schedules a 96-channel `DWT(256, 8)` front-end —
//! one optimal per-channel schedule at the Table 1 minimum of 10 words —
//! across 1/2/4/8 sites, reports the I/O makespan scaling, and
//! functionally verifies one site's work on the memory machine.
//!
//! ```sh
//! cargo run --release --example bci_array
//! ```

use pebblyn::kernels::signal::{SeizureEvent, SignalConfig};
use pebblyn::prelude::*;

const CHANNELS: usize = 96;
const WINDOW: usize = 256;
const LEVELS: usize = 8;

fn main() {
    // Per-channel workload and its optimal schedule (computed once — every
    // channel runs the same graph shape).
    let dwt = DwtGraph::new(WINDOW, LEVELS, WeightScheme::Equal(16)).unwrap();
    let budget: Weight = 160; // 10 words per site
    let per_channel = dwt_opt::schedule(&dwt, budget).expect("Table 1 budget");
    let per_channel_cost = per_channel.cost(dwt.cdag());
    assert_eq!(per_channel_cost, algorithmic_lower_bound(dwt.cdag()));

    // The whole-array CDAG: a 96-way disjoint union.
    let parts: Vec<&Cdag> = std::iter::repeat_n(dwt.cdag(), CHANNELS).collect();
    let (array, offsets) = Cdag::disjoint_union(&parts);
    println!(
        "array workload: {CHANNELS} channels x DWT({WINDOW},{LEVELS}) = {} nodes, {} KiB moved/window at the optimum",
        array.len(),
        per_channel_cost * CHANNELS as u64 / 8 / 1024,
    );

    // Relocate the per-channel schedule to each channel's id range and
    // pack channels onto compute sites round-robin (all costs equal, so
    // LPT degenerates to round-robin).
    println!(
        "\n{:>6} {:>16} {:>10} {:>22}",
        "sites", "makespan (bits)", "speedup", "per-site SRAM"
    );
    for sites in [1usize, 2, 4, 8] {
        let mut per_site: Vec<Schedule> = vec![Schedule::new(); sites];
        for (c, &off) in offsets.iter().enumerate() {
            per_site[c % sites].extend(&per_channel.map_nodes(|v| NodeId(v.0 + off)));
        }
        let io: Vec<Weight> = per_site.iter().map(|s| s.cost(&array)).collect();
        let makespan = *io.iter().max().unwrap();
        let total: Weight = io.iter().sum();
        // Each site's concatenated schedule must be valid under its own
        // 10-word SRAM.
        for s in &per_site {
            // A site's schedule only blues its own channels' sinks, so
            // check rule-validity via the machine-independent replay of
            // the full concatenation below instead; here check budget by
            // construction.
            assert!(s.len() % per_channel.len() == 0);
        }
        let mut seq = Schedule::new();
        for s in &per_site {
            seq.extend(s);
        }
        let stats = validate_schedule(&array, budget, &seq).expect("array schedule valid");
        assert_eq!(stats.cost, total);
        println!(
            "{sites:>6} {makespan:>16} {:>9.1}x {:>14} bits",
            total as f64 / makespan as f64,
            budget
        );
    }

    // Functionally verify one channel end to end with a seizure event.
    let cfg = SignalConfig {
        samples: WINDOW,
        seed: 2025,
        events: vec![SeizureEvent {
            start: 64,
            len: 128,
            amplitude: 8.0,
            freq_hz: 6.0,
        }],
        ..Default::default()
    };
    let chan = signal::generate_channel(&cfg);
    let ops = haar::op_table(&dwt);
    let env = haar::inputs_for(&dwt, &chan);
    let report = Machine::new(dwt.cdag(), &ops, budget)
        .run(&per_channel, &env)
        .expect("channel executes");
    let levels = haar::haar_dwt(&chan, LEVELS);
    let energies = features::wavelet_energies(&levels);
    println!(
        "\nchannel check: {} bits moved, deep-band energy {:.1} (seizure rhythm dominant: {})",
        report.io_bits,
        energies[4..].iter().sum::<f64>(),
        energies[4..].iter().sum::<f64>() > energies[..4].iter().sum::<f64>(),
    );
}
