//! Property tests for the canonicalizing cache (satellite of the
//! scheduling-as-a-service PR).
//!
//! The two properties the cache's correctness rests on:
//!
//! 1. the canonical *hash* is isomorphism-invariant for every graph,
//!    unconditionally (the WL fixpoint signature is label-free), and
//!    when the bounded canonical search completes on both sides, the
//!    full comparison bytes agree too;
//! 2. a cache hit on a *relabeled* isomorph transports a schedule that
//!    replays on the requester's graph to exactly the cost a fresh
//!    engine solve would report.
//!
//! Graphs come from the conformance generator (the same four families
//! the differential oracle fuzzes) and relabelings from its metamorphic
//! permutation transform, so these properties are exercised on the
//! shapes the rest of the workspace already trusts.

use pebblyn_conformance::metamorphic::{permute_nodes, random_perm};
use pebblyn_conformance::{generate, SplitRng};
use pebblyn_core::{min_feasible_budget, validate_schedule, ScheduleRequest};
use pebblyn_service::canon::canonical_form;
use pebblyn_service::{GraphSpec, Outcome, Request, Service};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// WL signature hashes never see node labels: any permutation of any
    /// generated graph hashes identically, exactness is decided the same
    /// way on both sides, and exact forms serialize identically.
    #[test]
    fn canonical_hash_is_isomorphism_invariant(seed in 0u64..2000, index in 0u64..8, pseed in 0u64..1000) {
        let case = generate(seed, index);
        let g1 = case.graph;
        let mut rng = SplitRng::new(pseed ^ 0x9e37_79b9_7f4a_7c15);
        let perm = random_perm(g1.len(), &mut rng);
        let g2 = permute_nodes(&g1, &perm);

        let f1 = canonical_form(&g1);
        let f2 = canonical_form(&g2);
        prop_assert_eq!(f1.hash(), f2.hash(), "hash must ignore labels ({})", case.spec);
        // The search tree's size is label-free, so the budget verdict is too.
        prop_assert_eq!(f1.is_exact(), f2.is_exact(), "exactness must ignore labels");
        if f1.is_exact() {
            prop_assert_eq!(f1.bytes(), f2.bytes(), "exact forms must serialize identically");
            // The two labelings need not agree pointwise (they may differ
            // by an automorphism), but routing g1 through its labeling and
            // back out of g2's must be an isomorphism g1 -> g2 — the map
            // the cache transport uses.
            let inv2 = f2.inverse_perm();
            let map = |v: pebblyn_core::NodeId| inv2[f1.to_canon(v).index()];
            for v in g1.nodes() {
                prop_assert_eq!(g1.weight(v), g2.weight(map(v)));
                let mut expect: Vec<u32> = g1.preds(v).iter().map(|&p| map(p).0).collect();
                let mut got: Vec<u32> = g2.preds(map(v)).iter().map(|p| p.0).collect();
                expect.sort_unstable();
                got.sort_unstable();
                prop_assert_eq!(expect, got);
            }
        }
    }

    /// Serving a relabeled isomorph from the cache gives a schedule that
    /// validates on the requester's labeling at exactly the cost of a
    /// fresh solve of that labeling.
    #[test]
    fn cache_hit_transports_to_fresh_solve_cost(seed in 0u64..500, index in 0u64..4, pseed in 0u64..500) {
        let case = generate(seed, index);
        let g1 = case.graph;
        let mut rng = SplitRng::new(pseed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
        let perm = random_perm(g1.len(), &mut rng);
        let g2 = permute_nodes(&g1, &perm);
        let budget = min_feasible_budget(&g1) + g1.total_weight() / 2;

        let svc = Service::with_default_config();
        let cold = svc.handle(Request {
            id: 1,
            ask: ScheduleRequest::new(GraphSpec::Custom(g1.clone()), budget, "naive"),
            no_cache: false,
        });
        let Outcome::Ok { cost: cold_cost, cache_hit: false, .. } = cold.outcome else {
            panic!("cold solve must succeed above the minimum feasible budget")
        };

        let warm = svc.handle(Request {
            id: 2,
            ask: ScheduleRequest::new(GraphSpec::Custom(g2.clone()), budget, "naive"),
            no_cache: false,
        });
        let Outcome::Ok { cost, schedule, cache_hit, .. } = warm.outcome else {
            panic!("warm solve must succeed above the minimum feasible budget")
        };
        // Exact canonicalization on both sides guarantees the relabeled
        // isomorph hits; inexact (budget-bounded) forms are allowed to
        // miss but never to answer wrong.
        let exact = canonical_form(&g1).is_exact();
        if exact {
            prop_assert!(cache_hit, "exact isomorphs must share a cache entry ({})", case.spec);
        }
        // Hit or miss, the answer must validate on *this* labeling and
        // match the cost a fresh solve reports (naive's cost is a pure
        // function of structure, so cold and warm agree).
        let sched = schedule.expect("full request returns moves");
        let stats = validate_schedule(&g2, budget, &sched).expect("transported schedule replays");
        prop_assert_eq!(stats.cost, cost);
        prop_assert_eq!(cost, cold_cost);

        // A fresh, cache-bypassing solve of the relabeled graph agrees.
        let fresh = svc.handle(Request {
            id: 3,
            ask: ScheduleRequest::new(GraphSpec::Custom(g2), budget, "naive"),
            no_cache: true,
        });
        let Outcome::Ok { cost: fresh_cost, cache_hit: false, .. } = fresh.outcome else {
            panic!("fresh solve must succeed")
        };
        prop_assert_eq!(cost, fresh_cost);
    }
}
