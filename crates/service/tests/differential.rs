//! Differential conformance for the daemon: a seeded 500-request trace
//! answered twice, by a cache-enabled service and a cache-disabled
//! control, with every divergence a hard failure.
//!
//! The trace cycles 40 conformance-generated graphs through four request
//! variants: identical-label full solves, identical-label cost-only
//! probes, randomly relabeled isomorphs, and a second scheduler at the
//! same labels.  The acceptance bar (from the PR issue):
//!
//! * identical-label requests must produce **byte-identical** encoded
//!   responses (after normalizing the cache-hit flag) from both
//!   services — a cache hit is indistinguishable from a cold solve;
//! * relabeled requests must agree on cost with the control (`naive`'s
//!   cost is a pure function of structure) and their transported
//!   schedules must replay on the requester's labeling at that cost;
//! * the trace must actually exercise the cache: identity repeats
//!   guarantee hundreds of hits, and at least one relabeled isomorph
//!   must hit through exact canonicalization.

use pebblyn_conformance::metamorphic::{permute_nodes, random_perm};
use pebblyn_conformance::{generate, SplitRng};
use pebblyn_core::{validate_schedule, Cdag, ScheduleRequest};
use pebblyn_service::{wire, GraphSpec, Outcome, Request, Response, Service, ServiceConfig};

const TRACE_SEED: u64 = 0xC0FFEE;
const CASES: usize = 40;
const REQUESTS: usize = 500;

struct TraceItem {
    req: Request,
    graph: Cdag,
    relabeled: bool,
}

/// Deterministic request `i` of the trace.
fn trace_item(cases: &[Cdag], i: usize) -> TraceItem {
    let case = i % CASES;
    let cycle = i / CASES;
    let variant = cycle % 4;
    let g = &cases[case];
    let minb = pebblyn_core::min_feasible_budget(g);
    let budget = minb + g.total_weight() / 2;
    let (graph, scheduler, cost_only, relabeled) = match variant {
        0 => (g.clone(), "naive", false, false),
        1 => (g.clone(), "naive", true, false),
        2 => {
            let mut rng = SplitRng::for_case(TRACE_SEED ^ 0xA5A5, i as u64);
            let perm = random_perm(g.len(), &mut rng);
            (permute_nodes(g, &perm), "naive", false, true)
        }
        _ => (g.clone(), "greedy-belady", false, false),
    };
    TraceItem {
        req: Request {
            id: i as u64,
            ask: ScheduleRequest::new(GraphSpec::Custom(graph.clone()), budget, scheduler)
                .with_cost_only(cost_only),
            no_cache: false,
        },
        graph,
        relabeled,
    }
}

/// Encode with the cache-hit flag cleared, so cached and cold answers can
/// be compared byte for byte.
fn normalized_bytes(resp: &Response) -> Vec<u8> {
    let mut r = resp.clone();
    if let Outcome::Ok { cache_hit, .. } = &mut r.outcome {
        *cache_hit = false;
    }
    wire::encode_response(&r)
}

#[test]
fn cached_service_is_byte_equivalent_to_control_on_500_request_trace() {
    let cases: Vec<Cdag> = (0..CASES as u64)
        .map(|i| generate(TRACE_SEED, i).graph)
        .collect();
    let cached = Service::with_default_config();
    let control = Service::new(&ServiceConfig {
        cache: false,
        ..ServiceConfig::default()
    });

    let mut relabeled_hits = 0u64;
    for i in 0..REQUESTS {
        let item = trace_item(&cases, i);
        let a = cached.handle(item.req.clone());
        let b = control.handle(item.req.clone());
        assert_eq!(a.id, b.id);

        let hit = matches!(
            a.outcome,
            Outcome::Ok {
                cache_hit: true,
                ..
            }
        );
        if item.relabeled {
            // Label-sensitive schedulers may emit different (equally
            // valid) moves for different labelings, so the contract here
            // is semantic: same cost, and a schedule that replays on the
            // requester's labeling at exactly that cost.
            match (&a.outcome, &b.outcome) {
                (
                    Outcome::Ok {
                        cost: ca,
                        schedule: sa,
                        ..
                    },
                    Outcome::Ok { cost: cb, .. },
                ) => {
                    assert_eq!(ca, cb, "request {i}: cached and control cost diverge");
                    let sched = sa.as_ref().expect("full request returns moves");
                    let stats = validate_schedule(&item.graph, item.req.ask.budget(), sched)
                        .unwrap_or_else(|e| {
                            panic!("request {i}: transported schedule invalid: {e}")
                        });
                    assert_eq!(stats.cost, *ca, "request {i}: replay cost mismatch");
                }
                (Outcome::Rejected { kind: ka, .. }, Outcome::Rejected { kind: kb, .. }) => {
                    assert_eq!(ka, kb, "request {i}: rejection kinds diverge")
                }
                (a, b) => panic!("request {i}: outcomes diverge: {a:?} vs {b:?}"),
            }
            if hit {
                relabeled_hits += 1;
            }
        } else {
            // Identical labels: the daemon's answer must be
            // indistinguishable from a cold solve, byte for byte.
            assert_eq!(
                normalized_bytes(&a),
                normalized_bytes(&b),
                "request {i}: cached response not byte-identical to control"
            );
        }
    }

    let stats = cached.cache().expect("cache enabled").stats();
    // Identity-label repeats alone guarantee hundreds of hits on this
    // trace shape (see the cycle structure in `trace_item`).
    assert!(
        stats.hits() >= 300,
        "expected >= 300 hits, got {} (misses {})",
        stats.hits(),
        stats.misses()
    );
    assert!(
        stats.misses() >= CASES as u64,
        "every first occurrence must miss"
    );
    assert!(
        relabeled_hits >= 1,
        "at least one relabeled isomorph must hit via exact canonicalization"
    );
    // The control service never touches a cache.
    assert!(control.cache().is_none());
}
