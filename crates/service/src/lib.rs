//! # pebblyn-service — scheduling as a service
//!
//! A long-running daemon that answers
//! [`ScheduleRequest`](pebblyn_core::ScheduleRequest)s over a
//! hand-rolled wire protocol, fronted by a canonicalizing schedule
//! cache.  The pipeline for one request:
//!
//! ```text
//! frame -> decode -> identity lookup ──hit──────────────────────> frame
//!            |               |
//!        bad-request       miss
//!                            v
//!                  canonicalize -> cache lookup ──hit──> transport -> frame
//!                                       |
//!                                     miss
//!                                       v
//!                             schedulers::api::execute -> insert -> frame
//! ```
//!
//! * [`canon`] — isomorphism-invariant hashing (WL color refinement) and
//!   budget-bounded canonical labeling, so clients that build the same
//!   dataflow in different node orders share cache entries,
//! * [`cache`] — the sharded two-level store: an identity index (the
//!   graph's own labels, no transport — the fast path for resubmitted
//!   graphs) in front of a canonical index whose schedules are kept in
//!   canonical labels and transported back through each requester's
//!   labeling,
//! * [`wire`] — length-prefixed little-endian frames (no serde),
//! * [`service`] — the typed request handler shared by every transport,
//! * [`server`] — bounded-queue worker pool (load shedding as the
//!   backpressure policy) plus stdio and unix-socket serving loops.
//!
//! The daemon answers through the *same* registry executor as the CLI and
//! the sweep engine, so a served schedule can never diverge from an
//! in-process solve; replay validation happens inside the executor before
//! any answer is cached or returned.
//!
//! ```
//! use pebblyn_core::ScheduleRequest;
//! use pebblyn_graphs::{WeightScheme, Workload};
//! use pebblyn_service::{GraphSpec, Outcome, Request, Service};
//!
//! let svc = Service::with_default_config();
//! let ask = ScheduleRequest::new(
//!     GraphSpec::Workload {
//!         workload: Workload::Dwt { n: 16, d: 2 },
//!         scheme: WeightScheme::Equal(16),
//!     },
//!     256,
//!     "dwt-opt",
//! );
//! let cold = svc.handle(Request { id: 1, ask: ask.clone(), no_cache: false });
//! let warm = svc.handle(Request { id: 2, ask, no_cache: false });
//! let (Outcome::Ok { cache_hit: false, .. }, Outcome::Ok { cache_hit: true, .. }) =
//!     (cold.outcome, warm.outcome)
//! else {
//!     panic!("second identical request must hit the cache")
//! };
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{CacheHit, CacheStats, ScheduleCache};
pub use canon::{
    canonical_form, canonical_form_with_budget, identity_form, CanonicalForm, IdentityForm,
};
pub use server::{serve_stream, serve_unix, Server, ServerConfig};
pub use service::{GraphSpec, Outcome, RejectKind, Request, Response, Service, ServiceConfig};
