//! The sharded, canonicalizing schedule cache.
//!
//! Two index levels, consulted cheapest-first:
//!
//! * **Identity index** — keyed by the graph's serialization under its
//!   own labels ([`IdentityForm`], one `O(V + E)` pass).  This is the
//!   fast path for the dominant daemon pattern, a client resubmitting
//!   the graph it built last time: a hit costs no color refinement and
//!   no schedule transport, because the stored moves are already in the
//!   requester's labels.
//! * **Canonical index** — keyed by the full serialized canonical form
//!   ([`CanonicalForm`]).  Entries here answer *relabeled* isomorphs:
//!   cached schedules are stored in canonical labels and a hit
//!   transports the moves through the requester's inverse labeling, so
//!   isomorphic requests receive a schedule valid for their own node
//!   ids (the PR 3 metamorphic isomorphism invariant is what licenses
//!   this transport).  Only exact forms participate — an inexact form
//!   can only ever match byte-identical instances, which the identity
//!   index already covers.
//!
//! Both levels compare full serialized bytes, never just the bucket
//! hash — collisions degrade to misses, not wrong answers — and key on
//! the scheduler name and the full [`MachineSpec`] besides the graph:
//! two requests for the same graph on different machines (processor
//! count, per-processor budgets, or communication price) can never
//! answer each other.  Sharding is by hash over independently-locked
//! `HashMap`s, so worker threads answering unrelated graphs never
//! contend.

use crate::canon::{CanonicalForm, IdentityForm};
use pebblyn_core::{FastHashMap, MachineSpec, Schedule, Weight};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached answer: replayed cost, the multiprocessor metrics when the
/// entry answered a multiprocessor request, and moves when the entry came
/// from a full (non-cost-only) single-processor solve.  Stored labels
/// depend on the index: the requester's own in the identity index,
/// canonical in the canonical one.
#[derive(Debug, Clone)]
struct Entry {
    key: EntryKey,
    cost: Weight,
    makespan: Option<Weight>,
    comm_cost: Option<Weight>,
    schedule: Option<Schedule>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EntryKey {
    bytes: Vec<u8>,
    scheduler: String,
    machine: MachineSpec,
}

/// A transported cache hit.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The replayed cost recorded at insert time.
    pub cost: Weight,
    /// Makespan recorded at insert time (multiprocessor entries only).
    pub makespan: Option<Weight>,
    /// Communication cost recorded at insert time (multiprocessor only).
    pub comm_cost: Option<Weight>,
    /// The cached moves, rewritten to the requester's node labels
    /// (`None` when the entry was cost-only or the request is).
    pub schedule: Option<Schedule>,
}

/// Monotone hit/miss/insert counters (cache-local; the service also
/// mirrors hits and misses into the telemetry pipeline).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

impl CacheStats {
    /// Lookups answered from either index.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
    /// Lookups that fell through to the engine.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
    /// Entries currently resident, summed over both indexes.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }
}

/// What a [`Shards::find`] hit yields: `(cost, makespan, comm_cost,
/// schedule)` — the two middle fields only for multiprocessor entries,
/// the schedule only when the caller asked for moves.
type Found = (Weight, Option<Weight>, Option<Weight>, Option<Schedule>);

/// One sharded byte-keyed index (the two cache levels share this shape).
struct Shards(Vec<Mutex<FastHashMap<u64, Vec<Entry>>>>);

impl Shards {
    fn new(shards: usize) -> Self {
        Shards(
            (0..shards.max(1))
                .map(|_| Mutex::new(FastHashMap::default()))
                .collect(),
        )
    }

    fn shard(&self, hash: u64) -> &Mutex<FastHashMap<u64, Vec<Entry>>> {
        &self.0[(hash as usize) % self.0.len()]
    }

    /// Find a satisfying entry; a full entry satisfies both full and
    /// cost-only requests, a cost-only entry only the latter.  Returns
    /// the recorded metrics and (when `need_moves`) a clone of the stored
    /// schedule.
    fn find(
        &self,
        hash: u64,
        bytes: &[u8],
        scheduler: &str,
        machine: &MachineSpec,
        need_moves: bool,
    ) -> Option<Found> {
        let shard = self.shard(hash).lock().unwrap();
        let hit = shard.get(&hash)?.iter().find(|e| {
            e.key.machine == *machine
                && e.key.scheduler == scheduler
                && (!need_moves || e.schedule.is_some())
                && e.key.bytes == bytes
        })?;
        let schedule = if need_moves {
            hit.schedule.clone()
        } else {
            None
        };
        Some((hit.cost, hit.makespan, hit.comm_cost, schedule))
    }

    /// Insert or upgrade: a full entry replaces a cost-only entry for the
    /// same key, a cost-only insert never downgrades a full entry.
    /// Returns whether a brand-new entry was created.
    #[allow(clippy::too_many_arguments)]
    fn put(
        &self,
        hash: u64,
        bytes: &[u8],
        scheduler: &str,
        machine: &MachineSpec,
        cost: Weight,
        makespan: Option<Weight>,
        comm_cost: Option<Weight>,
        schedule: Option<Schedule>,
    ) -> bool {
        let key = EntryKey {
            bytes: bytes.to_vec(),
            scheduler: scheduler.to_string(),
            machine: machine.clone(),
        };
        let mut shard = self.shard(hash).lock().unwrap();
        let bucket = shard.entry(hash).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.key == key) {
            if existing.schedule.is_none() {
                if let Some(s) = schedule {
                    existing.schedule = Some(s);
                    existing.cost = cost;
                    existing.makespan = makespan;
                    existing.comm_cost = comm_cost;
                }
            }
            return false;
        }
        bucket.push(Entry {
            key,
            cost,
            makespan,
            comm_cost,
            schedule,
        });
        true
    }
}

/// The two-level sharded cache.
pub struct ScheduleCache {
    ident: Shards,
    canon: Shards,
    stats: CacheStats,
}

impl ScheduleCache {
    /// A cache with `shards` independent lock domains per index (rounded
    /// up to 1).
    pub fn new(shards: usize) -> Self {
        ScheduleCache {
            ident: Shards::new(shards),
            canon: Shards::new(shards),
            stats: CacheStats::default(),
        }
    }

    /// Identity-index lookup: byte-identical graph, same labels, so the
    /// stored schedule is returned without transport.
    pub fn lookup_identity(
        &self,
        form: &IdentityForm,
        scheduler: &str,
        machine: &MachineSpec,
        need_moves: bool,
    ) -> Option<CacheHit> {
        let (cost, makespan, comm_cost, schedule) =
            self.ident
                .find(form.hash(), form.bytes(), scheduler, machine, need_moves)?;
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        Some(CacheHit {
            cost,
            makespan,
            comm_cost,
            schedule,
        })
    }

    /// Canonical-index lookup.  On hit the stored canonical schedule is
    /// transported through `form`'s inverse labeling.
    pub fn lookup(
        &self,
        form: &CanonicalForm,
        scheduler: &str,
        machine: &MachineSpec,
        need_moves: bool,
    ) -> Option<CacheHit> {
        let (cost, makespan, comm_cost, stored) =
            self.canon
                .find(form.hash(), form.bytes(), scheduler, machine, need_moves)?;
        let schedule = stored.map(|s| {
            let inv = form.inverse_perm();
            s.map_nodes(|c| inv[c.index()])
        });
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        Some(CacheHit {
            cost,
            makespan,
            comm_cost,
            schedule,
        })
    }

    /// Record a miss (for stats symmetry; the service calls this when
    /// every lookup level returns `None` and the engine is consulted).
    pub fn record_miss(&self) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert into the identity index.  `schedule` is stored as-is, in
    /// the requester's labels.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_identity(
        &self,
        form: &IdentityForm,
        scheduler: &str,
        machine: &MachineSpec,
        cost: Weight,
        makespan: Option<Weight>,
        comm_cost: Option<Weight>,
        schedule: Option<&Schedule>,
    ) {
        if self.ident.put(
            form.hash(),
            form.bytes(),
            scheduler,
            machine,
            cost,
            makespan,
            comm_cost,
            schedule.cloned(),
        ) {
            self.stats.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert into the canonical index.  `schedule` must be in the
    /// *requester's* labels; it is rewritten to canonical labels via
    /// `form` before storage.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        form: &CanonicalForm,
        scheduler: &str,
        machine: &MachineSpec,
        cost: Weight,
        makespan: Option<Weight>,
        comm_cost: Option<Weight>,
        schedule: Option<&Schedule>,
    ) {
        let stored = schedule.map(|s| s.map_nodes(|v| form.to_canon(v)));
        if self.canon.put(
            form.hash(),
            form.bytes(),
            scheduler,
            machine,
            cost,
            makespan,
            comm_cost,
            stored,
        ) {
            self.stats.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The cache-local counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::{canonical_form, identity_form};
    use pebblyn_core::{CdagBuilder, Move, NodeId};

    fn chain3() -> pebblyn_core::Cdag {
        let mut b = CdagBuilder::new();
        let a = b.unnamed(1);
        let c = b.unnamed(2);
        let d = b.unnamed(3);
        b.edge(a, c);
        b.edge(c, d);
        b.build().unwrap()
    }

    #[test]
    fn full_entry_serves_cost_only_but_not_vice_versa() {
        let g = chain3();
        let form = canonical_form(&g);
        let cache = ScheduleCache::new(4);
        let m10 = MachineSpec::uniprocessor(10);
        assert!(cache.lookup(&form, "naive", &m10, false).is_none());

        cache.insert(&form, "naive", &m10, 7, None, None, None); // cost-only entry
        assert!(cache.lookup(&form, "naive", &m10, true).is_none());
        assert_eq!(cache.lookup(&form, "naive", &m10, false).unwrap().cost, 7);

        let sched = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(1))]);
        cache.insert(&form, "naive", &m10, 7, None, None, Some(&sched)); // upgrade to full
        let hit = cache.lookup(&form, "naive", &m10, true).unwrap();
        assert_eq!(hit.cost, 7);
        assert_eq!(hit.schedule.unwrap().moves(), sched.moves());
        assert_eq!(cache.stats().entries(), 1);
        // Different budget or scheduler: miss.
        assert!(cache
            .lookup(&form, "naive", &MachineSpec::uniprocessor(11), false)
            .is_none());
        assert!(cache.lookup(&form, "kary", &m10, false).is_none());
    }

    /// The machine spec participates in the key in full: processor count,
    /// per-processor budgets, and communication price each discriminate.
    #[test]
    fn machine_spec_discriminates_entries() {
        let g = chain3();
        let form = canonical_form(&g);
        let cache = ScheduleCache::new(2);
        let uni = MachineSpec::uniprocessor(10);
        let duo = MachineSpec::symmetric(2, 10);
        let duo_pricey = MachineSpec::symmetric(2, 10).with_comm_price(5);

        cache.insert(&form, "partition-belady", &uni, 7, None, None, None);
        cache.insert(&form, "partition-belady", &duo, 9, Some(20), Some(4), None);
        assert_eq!(
            cache
                .lookup(&form, "partition-belady", &uni, false)
                .unwrap()
                .cost,
            7
        );
        let hit = cache
            .lookup(&form, "partition-belady", &duo, false)
            .unwrap();
        assert_eq!(
            (hit.cost, hit.makespan, hit.comm_cost),
            (9, Some(20), Some(4))
        );
        assert!(cache
            .lookup(&form, "partition-belady", &duo_pricey, false)
            .is_none());
        assert_eq!(cache.stats().entries(), 2);
    }

    #[test]
    fn transported_hit_rewrites_labels() {
        // Same chain built in reverse construction order.
        let g1 = chain3();
        let mut b = CdagBuilder::new();
        let d = b.unnamed(3);
        let c = b.unnamed(2);
        let a = b.unnamed(1);
        b.edge(a, c);
        b.edge(c, d);
        let g2 = b.build().unwrap();

        let f1 = canonical_form(&g1);
        let f2 = canonical_form(&g2);
        assert_eq!(f1.bytes(), f2.bytes());

        let cache = ScheduleCache::new(1);
        // Schedule in g1 labels: touch every node once.
        let sched = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Compute(NodeId(1)),
            Move::Compute(NodeId(2)),
        ]);
        let m10 = MachineSpec::uniprocessor(10);
        cache.insert(&f1, "naive", &m10, 5, None, None, Some(&sched));
        let hit = cache.lookup(&f2, "naive", &m10, true).unwrap();
        // g1's node v corresponds to g2's node with the same canonical
        // label; weights identify the mapping: 0->2, 1->1, 2->0.
        assert_eq!(
            hit.schedule.unwrap().moves(),
            vec![
                Move::Load(NodeId(2)),
                Move::Compute(NodeId(1)),
                Move::Compute(NodeId(0)),
            ]
        );
    }

    #[test]
    fn identity_index_is_label_strict_and_transport_free() {
        let g1 = chain3();
        let mut b = CdagBuilder::new();
        let d = b.unnamed(3);
        let c = b.unnamed(2);
        let a = b.unnamed(1);
        b.edge(a, c);
        b.edge(c, d);
        let g2 = b.build().unwrap();

        let i1 = identity_form(&g1);
        let i2 = identity_form(&g2);
        let cache = ScheduleCache::new(2);
        let sched = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(2))]);
        let m10 = MachineSpec::uniprocessor(10);
        cache.insert_identity(&i1, "naive", &m10, 5, None, None, Some(&sched));
        // Same graph object: hit, moves byte-for-byte as stored.
        let hit = cache.lookup_identity(&i1, "naive", &m10, true).unwrap();
        assert_eq!(hit.schedule.unwrap().moves(), sched.moves());
        // Isomorphic but relabeled: the identity index must NOT answer.
        assert!(cache.lookup_identity(&i2, "naive", &m10, true).is_none());
        // Upgrade semantics match the canonical index.
        cache.insert_identity(&i1, "naive", &m10, 5, None, None, None);
        assert!(cache.lookup_identity(&i1, "naive", &m10, true).is_some());
        assert_eq!(cache.stats().entries(), 1);
    }
}
