//! The serving layer: bounded queue, worker pool, transports.
//!
//! [`Server`] owns a pool of worker threads fed by a bounded
//! `sync_channel`.  Submission never blocks: when the queue is full the
//! request is *shed* — an [`Outcome::Rejected`]/`Overloaded` response is
//! delivered immediately and the `service_shed` counter ticks.  Bounding
//! the queue is the backpressure policy: a burst beyond
//! `queue_depth + workers` requests degrades crisply (typed shed
//! responses the client can retry) instead of accumulating unbounded
//! latency.
//!
//! Transports are thin: [`serve_stream`] speaks the length-prefixed wire
//! format over any `Read`/`Write` pair (stdin/stdout for `pebblyn serve`,
//! one accepted unix-socket connection in [`serve_unix`]).  A reader
//! thread decodes and submits as fast as frames arrive — a pipelining
//! client can therefore actually fill the queue — while the transport
//! writes responses back *in request order*, so clients may simply read
//! answers sequentially.

use crate::service::{Request, Response, Service};
use crate::wire::{self, Frame};
use pebblyn_telemetry::{self as telemetry, Counter, Gauge};
use std::io::{Read, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded queue depth; a full queue sheds load.
    pub queue_depth: usize,
    /// Worker threads; `0` sizes from the machine (see
    /// `pebblyn_engine::thread_count`).
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_depth: 64,
            workers: 0,
        }
    }
}

struct Job {
    req: Request,
    reply: mpsc::Sender<Response>,
}

/// A worker pool over one [`Service`].
pub struct Server {
    service: Arc<Service>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    queued: Arc<AtomicU64>,
}

impl Server {
    /// Start the worker pool.
    pub fn start(service: Arc<Service>, cfg: &ServerConfig) -> Server {
        let workers = if cfg.workers == 0 {
            pebblyn_engine::par::thread_count(usize::MAX)
        } else {
            cfg.workers
        };
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth.max(1));
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let queued = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("pebblyn-svc-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap();
                            guard.recv()
                        };
                        let Ok(job) = job else { return };
                        queued.fetch_sub(1, Ordering::Relaxed);
                        let resp = service.handle(job.req);
                        // A dropped receiver (client gone) is not an error.
                        let _ = job.reply.send(resp);
                    })
                    .expect("spawn service worker")
            })
            .collect();
        Server {
            service,
            tx: Some(tx),
            workers: handles,
            queued,
        }
    }

    /// The service behind the pool.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Submit a request without blocking.  The returned channel yields
    /// exactly one [`Response`]: the worker's answer, or an immediate
    /// `Overloaded` shed when the queue is full.
    pub fn submit(&self, req: Request) -> Receiver<Response> {
        let (reply, rx) = mpsc::channel();
        let id = req.id;
        let tx = self.tx.as_ref().expect("server already shut down");
        // Count the slot *before* enqueueing: a worker may dequeue (and
        // decrement) before try_send even returns.
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(Job {
            req,
            reply: reply.clone(),
        }) {
            Ok(()) => telemetry::gauge_max(Gauge::ServiceQueueDepthPeak, depth),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                telemetry::incr(Counter::ServiceShed);
                let _ = reply.send(Response::overloaded(id));
            }
        }
        rx
    }

    /// Stop accepting, drain the queue, and join the workers.
    pub fn shutdown(mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serve one framed connection until EOF or a shutdown frame.
///
/// Returns `true` if the client requested daemon shutdown.  Responses are
/// written in request arrival order; submission happens on a dedicated
/// thread so a pipelining client exercises the queue (and can be shed).
pub fn serve_stream(
    server: &Server,
    input: impl Read + Send,
    output: &mut impl Write,
) -> std::io::Result<bool> {
    let (pending_tx, pending_rx) = mpsc::channel::<Receiver<Response>>();
    let result = std::thread::scope(|scope| {
        let reader = scope.spawn(move || -> std::io::Result<bool> {
            let mut input = input;
            let mut shutdown = false;
            while let Some(payload) = wire::read_frame(&mut input)? {
                match wire::decode_payload(&payload) {
                    Ok(Frame::Request(req)) => {
                        if pending_tx.send(server.submit(req)).is_err() {
                            break;
                        }
                    }
                    Ok(Frame::Shutdown) => {
                        shutdown = true;
                        break;
                    }
                    Ok(Frame::Response(_)) => {
                        // A client sending responses is confused; answer
                        // with a malformed-input rejection on id 0.
                        let (tx, rx) = mpsc::channel();
                        let _ = tx.send(Response::rejected(
                            0,
                            crate::service::RejectKind::BadRequest,
                            "unexpected response frame",
                        ));
                        if pending_tx.send(rx).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let (tx, rx) = mpsc::channel();
                        let _ = tx.send(Response::rejected(
                            0,
                            crate::service::RejectKind::BadRequest,
                            e.to_string(),
                        ));
                        if pending_tx.send(rx).is_err() {
                            break;
                        }
                    }
                }
            }
            drop(pending_tx);
            Ok(shutdown)
        });
        for rx in pending_rx {
            let Ok(resp) = rx.recv() else { continue };
            wire::write_frame(output, &wire::encode_response(&resp))?;
        }
        reader.join().expect("connection reader panicked")
    })?;
    if result {
        // Acknowledge so the client can await a clean stop.
        wire::write_frame(output, &wire::encode_shutdown())?;
    }
    Ok(result)
}

/// Serve a unix socket until a client sends a shutdown frame.
///
/// Connections are handled one at a time in accept order — the worker
/// pool parallelism lives *behind* the queue, and the load generator
/// drives a single pipelined connection — which keeps the transport free
/// of per-connection thread management.
pub fn serve_unix(server: &Server, path: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = AtomicBool::new(false);
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let mut output = stream.try_clone()?;
                match serve_stream(server, stream, &mut output) {
                    Ok(true) => stop.store(true, Ordering::Relaxed),
                    Ok(false) => {}
                    // A dropped connection must not kill the daemon.
                    Err(_) => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{GraphSpec, Outcome, RejectKind, ServiceConfig};
    use pebblyn_core::ScheduleRequest;
    use pebblyn_graphs::{WeightScheme, Workload};

    fn request(id: u64) -> Request {
        Request {
            id,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Dwt { n: 16, d: 2 },
                    scheme: WeightScheme::Equal(16),
                },
                256,
                "dwt-opt",
            ),
            no_cache: false,
        }
    }

    #[test]
    fn pool_answers_and_second_request_hits_cache() {
        let server = Server::start(
            Arc::new(Service::new(&ServiceConfig::default())),
            &ServerConfig::default(),
        );
        let first = server.submit(request(1)).recv().unwrap();
        let second = server.submit(request(2)).recv().unwrap();
        let Outcome::Ok { cache_hit: h1, .. } = first.outcome else {
            panic!("expected ok")
        };
        let Outcome::Ok { cache_hit: h2, .. } = second.outcome else {
            panic!("expected ok")
        };
        assert!(!h1);
        assert!(h2);
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_typed_response() {
        // One worker, depth-1 queue, and a worker stalled on a slow MVM
        // solve: subsequent submissions must shed, not block.
        let server = Server::start(
            Arc::new(Service::new(&ServiceConfig {
                cache: false,
                ..ServiceConfig::default()
            })),
            &ServerConfig {
                queue_depth: 1,
                workers: 1,
            },
        );
        let slow = |id| Request {
            id,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Mvm { m: 48, n: 48 },
                    scheme: WeightScheme::Equal(16),
                },
                16 * 256,
                "mvm-tiling",
            ),
            no_cache: true,
        };
        // Submit a burst far faster than one worker can drain: with one
        // slot processing and one queued, the rest must shed immediately.
        let receivers: Vec<_> = (0..64).map(|id| server.submit(slow(id))).collect();
        let mut shed = 0;
        for rx in receivers {
            let resp = rx.recv().unwrap();
            match resp.outcome {
                Outcome::Rejected { kind, .. } => {
                    assert_eq!(kind, RejectKind::Overloaded);
                    shed += 1;
                }
                Outcome::Ok { .. } => {}
            }
        }
        assert!(shed > 0, "expected at least one shed at depth 1");
        server.shutdown();
    }

    #[test]
    fn stream_serves_frames_in_order_and_honors_shutdown() {
        let server = Server::start(
            Arc::new(Service::new(&ServiceConfig::default())),
            &ServerConfig::default(),
        );
        let mut input = Vec::new();
        for id in 0..3 {
            wire::write_frame(&mut input, &wire::encode_request(&request(id))).unwrap();
        }
        wire::write_frame(&mut input, b"garbage").unwrap();
        wire::write_frame(&mut input, &wire::encode_shutdown()).unwrap();

        let mut output = Vec::new();
        let shutdown = serve_stream(&server, &input[..], &mut output).unwrap();
        assert!(shutdown);

        let mut r = &output[..];
        let mut responses = Vec::new();
        while let Some(payload) = wire::read_frame(&mut r).unwrap() {
            responses.push(wire::decode_payload(&payload).unwrap());
        }
        assert_eq!(responses.len(), 5); // 3 answers + 1 bad-request + ack
        for (i, frame) in responses.iter().take(3).enumerate() {
            let Frame::Response(resp) = frame else {
                panic!("expected response")
            };
            assert_eq!(resp.id, i as u64);
            assert!(matches!(resp.outcome, Outcome::Ok { .. }));
        }
        let Frame::Response(bad) = &responses[3] else {
            panic!("expected response")
        };
        assert!(matches!(
            bad.outcome,
            Outcome::Rejected {
                kind: RejectKind::BadRequest,
                ..
            }
        ));
        assert!(matches!(responses[4], Frame::Shutdown));
        server.shutdown();
    }
}
