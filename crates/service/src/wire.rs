//! The daemon's hand-rolled wire format.
//!
//! The workspace has a no-serde policy, so frames are explicit
//! little-endian layouts, length-prefixed for stream transports:
//!
//! ```text
//! frame    := len:u32 payload[len]            (len excludes itself)
//! payload  := magic:u16 version:u8 kind:u8 body
//! kind     := 0 request | 1 response | 2 shutdown
//!
//! request  := id:u64 flags:u8 machine scheduler:str graph
//! machine  := procs:u16 budget:u64[procs] comm_price:u64
//! flags    := bit0 cost_only, bit1 no_cache
//! str      := len:u16 utf8[len]
//! graph    := 0 custom:u8 n:u32 weight:u64[n] m:u32 (from:u32 to:u32)[m]
//!           | 1 dwt:u8    n:u64 d:u64        scheme
//!           | 2 mvm:u8    m:u64 n:u64        scheme
//!           | 3 conv:u8   n:u64 k:u64        scheme
//!           | 4 dwt2d:u8  n:u64 levels:u64   scheme
//!           | 5 banded:u8 n:u64 bandwidth:u64 scheme
//! scheme   := kind:u8 (0 equal | 1 double-accumulator) word:u64
//!
//! response := id:u64 status:u8 cache:u8 cost:u64 makespan:u64 comm:u64
//!             message:str moves
//! status   := 0 ok | 1 unknown-scheduler | 2 unsupported | 3 infeasible
//!           | 4 validation-failed | 5 overloaded | 6 bad-request
//! cost     := replayed cost (ok) | min-feasible hint or u64::MAX (infeasible)
//! makespan := multiprocessor makespan, u64::MAX when absent (uniprocessor)
//! comm     := multiprocessor communication cost, u64::MAX when absent
//! moves    := present:u8 [count:u32 (tag:u8 node:u32)[count]]
//!
//! shutdown := (empty body; the server acknowledges with an empty
//!              shutdown frame, flushes telemetry, and stops accepting)
//! ```
//!
//! Version history: v1 requests carried a bare `budget:u64` where v2
//! carries `machine`, and v1 responses had no `makespan`/`comm` words.
//! Encoders always emit v2; the decoder accepts both, mapping a v1
//! budget to [`MachineSpec::uniprocessor`] so old clients keep working
//! against new servers unchanged.
//!
//! Decoders never trust lengths: every read is bounds-checked, frame and
//! collection sizes are capped, and any violation surfaces as a
//! [`WireError`] which the server answers with a `bad-request` response
//! instead of dying.

use crate::service::{GraphSpec, Outcome, RejectKind, Request, Response};
use pebblyn_core::stream::MoveTag;
use pebblyn_core::{
    CdagBuilder, MachineSpec, Move, NodeId, ProcBudget, Schedule, ScheduleRequest, Weight,
};
use pebblyn_graphs::{WeightScheme, Workload};
use std::fmt;
use std::io::{self, Read, Write};

/// `"pw"` — pebblyn wire.
pub const MAGIC: u16 = 0x7077;
/// Wire format version emitted by encoders (decoders also accept v1).
pub const VERSION: u8 = 2;
/// The pre-multiprocessor format still accepted on decode.
pub const VERSION_V1: u8 = 1;
/// Upper bound on a frame payload (guards allocations on hostile input).
pub const MAX_FRAME: u32 = 64 << 20;
/// Upper bound on nodes/edges/moves in one frame.
const MAX_ITEMS: u32 = 1 << 24;

/// A decoded frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A scheduling request.
    Request(Request),
    /// A response (client side decodes these).
    Response(Response),
    /// Graceful-stop marker.
    Shutdown,
}

/// Decode failure: malformed bytes, not I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

// ---------------------------------------------------------------- encode

struct Enc(Vec<u8>);

impl Enc {
    fn new(kind: u8) -> Self {
        let mut e = Enc(Vec::with_capacity(64));
        e.0.extend_from_slice(&MAGIC.to_le_bytes());
        e.0.push(VERSION);
        e.0.push(kind);
        e
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = u16::try_from(bytes.len()).expect("wire string over 64 KiB");
        self.0.extend_from_slice(&len.to_le_bytes());
        self.0.extend_from_slice(bytes);
    }
}

fn encode_scheme(e: &mut Enc, scheme: WeightScheme) {
    match scheme {
        WeightScheme::Equal(w) => {
            e.u8(0);
            e.u64(w);
        }
        WeightScheme::DoubleAccumulator(w) => {
            e.u8(1);
            e.u64(w);
        }
        WeightScheme::Custom { input, compute } => {
            e.u8(2);
            e.u64(input);
            e.u64(compute);
        }
    }
}

fn encode_machine(e: &mut Enc, machine: &MachineSpec) {
    let procs = u16::try_from(machine.num_procs()).expect("over 65535 processors on the wire");
    e.0.extend_from_slice(&procs.to_le_bytes());
    for p in machine.procs() {
        e.u64(p.budget());
    }
    e.u64(machine.comm_price());
}

fn encode_graph(e: &mut Enc, spec: &GraphSpec) {
    match spec {
        GraphSpec::Custom(g) => {
            e.u8(0);
            e.u32(g.len() as u32);
            for v in g.nodes() {
                e.u64(g.weight(v));
            }
            e.u32(g.edge_count() as u32);
            for v in g.nodes() {
                for &u in g.preds(v) {
                    e.u32(u.0);
                    e.u32(v.0);
                }
            }
        }
        GraphSpec::Workload { workload, scheme } => {
            let (tag, a, b) = match *workload {
                Workload::Dwt { n, d } => (1u8, n as u64, d as u64),
                Workload::Mvm { m, n } => (2, m as u64, n as u64),
                Workload::Conv { n, k } => (3, n as u64, k as u64),
                Workload::Dwt2d { n, levels } => (4, n as u64, levels as u64),
                Workload::Banded { n, bandwidth } => (5, n as u64, bandwidth as u64),
            };
            e.u8(tag);
            e.u64(a);
            e.u64(b);
            encode_scheme(e, *scheme);
        }
    }
}

/// Encode a request payload (without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new(0);
    e.u64(req.id);
    let mut flags = 0u8;
    if req.ask.is_cost_only() {
        flags |= 1;
    }
    if req.no_cache {
        flags |= 2;
    }
    e.u8(flags);
    encode_machine(&mut e, req.ask.machine());
    e.str(req.ask.scheduler());
    encode_graph(&mut e, req.ask.graph());
    e.0
}

fn status_code(kind: RejectKind) -> u8 {
    match kind {
        RejectKind::UnknownScheduler => 1,
        RejectKind::Unsupported => 2,
        RejectKind::Infeasible => 3,
        RejectKind::ValidationFailed => 4,
        RejectKind::Overloaded => 5,
        RejectKind::BadRequest => 6,
    }
}

/// Encode a response payload (without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut e = Enc::new(1);
    e.u64(resp.id);
    match &resp.outcome {
        Outcome::Ok {
            cost,
            schedule,
            cache_hit,
            makespan,
            comm_cost,
        } => {
            e.u8(0);
            e.u8(u8::from(*cache_hit));
            e.u64(*cost);
            e.u64(makespan.unwrap_or(u64::MAX));
            e.u64(comm_cost.unwrap_or(u64::MAX));
            e.str("");
            match schedule {
                Some(s) => {
                    e.u8(1);
                    let stream = s.stream();
                    e.u32(stream.len() as u32);
                    for mv in stream.iter() {
                        let tag = match mv {
                            Move::Load(_) => MoveTag::Load,
                            Move::Store(_) => MoveTag::Store,
                            Move::Compute(_) => MoveTag::Compute,
                            Move::Delete(_) => MoveTag::Delete,
                        };
                        e.u8(tag as u8);
                        e.u32(mv.node().0);
                    }
                }
                None => e.u8(0),
            }
        }
        Outcome::Rejected {
            kind,
            message,
            min_feasible,
        } => {
            e.u8(status_code(*kind));
            e.u8(0);
            e.u64(min_feasible.unwrap_or(u64::MAX));
            e.u64(u64::MAX);
            e.u64(u64::MAX);
            e.str(message);
            e.u8(0);
        }
    }
    e.0
}

/// Encode the shutdown payload.
pub fn encode_shutdown() -> Vec<u8> {
    Enc::new(2).0
}

// ---------------------------------------------------------------- decode

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return err(format!(
                "truncated payload: wanted {n} bytes at offset {}",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("invalid utf8".into()))
    }
    /// Read an item count, capped and cross-checked against the bytes
    /// actually remaining (`stride` per item), so a hostile length can
    /// never drive an allocation the payload cannot back.
    fn counted(&mut self, what: &str, stride: usize) -> Result<u32, WireError> {
        let n = self.u32()?;
        if n > MAX_ITEMS {
            return err(format!("{what} count {n} exceeds cap {MAX_ITEMS}"));
        }
        if (n as usize).saturating_mul(stride) > self.buf.len() - self.pos {
            return err(format!("{what} count {n} exceeds payload size"));
        }
        Ok(n)
    }
    fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn decode_scheme(d: &mut Dec) -> Result<WeightScheme, WireError> {
    let kind = d.u8()?;
    let word = d.u64()?;
    if word == 0 {
        return err("weight scheme word must be positive");
    }
    match kind {
        0 => Ok(WeightScheme::Equal(word)),
        1 => Ok(WeightScheme::DoubleAccumulator(word)),
        2 => {
            let compute = d.u64()?;
            if compute == 0 {
                return err("weight scheme compute weight must be positive");
            }
            Ok(WeightScheme::Custom {
                input: word,
                compute,
            })
        }
        k => err(format!("unknown weight scheme kind {k}")),
    }
}

fn decode_machine(d: &mut Dec) -> Result<MachineSpec, WireError> {
    let procs = d.u16()? as usize;
    if procs == 0 {
        return err("a machine needs at least one processor");
    }
    if procs.saturating_mul(8) > d.buf.len() - d.pos {
        return err(format!("processor count {procs} exceeds payload size"));
    }
    let mut budgets = Vec::with_capacity(procs);
    for _ in 0..procs {
        budgets.push(ProcBudget::new(d.u64()?));
    }
    let comm_price = d.u64()?;
    Ok(MachineSpec::new(budgets).with_comm_price(comm_price))
}

fn decode_graph(d: &mut Dec) -> Result<GraphSpec, WireError> {
    let tag = d.u8()?;
    if tag == 0 {
        let n = d.counted("node", 8)?;
        let mut b = CdagBuilder::with_capacity(n as usize);
        let mut ids = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ids.push(b.unnamed(d.u64()?));
        }
        let m = d.counted("edge", 8)?;
        for _ in 0..m {
            let from = d.u32()?;
            let to = d.u32()?;
            if from >= n || to >= n {
                return err(format!("edge ({from}, {to}) out of range for {n} nodes"));
            }
            b.edge(ids[from as usize], ids[to as usize]);
        }
        let cdag = b
            .build()
            .map_err(|e| WireError(format!("graph rejected: {e}")))?;
        return Ok(GraphSpec::Custom(cdag));
    }
    let a = d.u64()? as usize;
    let b = d.u64()? as usize;
    let workload = match tag {
        1 => Workload::Dwt { n: a, d: b },
        2 => Workload::Mvm { m: a, n: b },
        3 => Workload::Conv { n: a, k: b },
        4 => Workload::Dwt2d { n: a, levels: b },
        5 => Workload::Banded { n: a, bandwidth: b },
        t => return err(format!("unknown graph tag {t}")),
    };
    let scheme = decode_scheme(d)?;
    Ok(GraphSpec::Workload { workload, scheme })
}

fn decode_moves(d: &mut Dec) -> Result<Option<Schedule>, WireError> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let count = d.counted("move", 5)?;
            let mut moves = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let tag = match d.u8()? {
                    0 => MoveTag::Load,
                    1 => MoveTag::Store,
                    2 => MoveTag::Compute,
                    3 => MoveTag::Delete,
                    t => return err(format!("unknown move tag {t}")),
                };
                moves.push(tag.with_node(NodeId(d.u32()?)));
            }
            Ok(Some(Schedule::from_moves(moves)))
        }
        p => err(format!("bad schedule-present flag {p}")),
    }
}

/// Decode one payload (a frame body without its length prefix).
pub fn decode_payload(buf: &[u8]) -> Result<Frame, WireError> {
    let mut d = Dec { buf, pos: 0 };
    let magic = d.u16()?;
    if magic != MAGIC {
        return err(format!("bad magic {magic:#06x}"));
    }
    let version = d.u8()?;
    if version != VERSION && version != VERSION_V1 {
        return err(format!("unsupported version {version}"));
    }
    match d.u8()? {
        0 => {
            let id = d.u64()?;
            let flags = d.u8()?;
            if flags & !3 != 0 {
                return err(format!("unknown request flags {flags:#04x}"));
            }
            // v1 carried a bare uniprocessor budget; v2 a full machine.
            let machine = if version == VERSION_V1 {
                let budget: Weight = d.u64()?;
                MachineSpec::uniprocessor(budget)
            } else {
                decode_machine(&mut d)?
            };
            let scheduler = d.str()?;
            let graph = decode_graph(&mut d)?;
            d.done()?;
            Ok(Frame::Request(Request {
                id,
                ask: ScheduleRequest::new(graph, machine, scheduler).with_cost_only(flags & 1 != 0),
                no_cache: flags & 2 != 0,
            }))
        }
        1 => {
            let id = d.u64()?;
            let status = d.u8()?;
            let cache = d.u8()?;
            let cost = d.u64()?;
            // v1 responses had no makespan/comm words.
            let (makespan, comm) = if version == VERSION_V1 {
                (u64::MAX, u64::MAX)
            } else {
                (d.u64()?, d.u64()?)
            };
            let message = d.str()?;
            let schedule = decode_moves(&mut d)?;
            d.done()?;
            let outcome = match status {
                0 => Outcome::Ok {
                    cost,
                    schedule,
                    cache_hit: cache != 0,
                    makespan: (makespan != u64::MAX).then_some(makespan),
                    comm_cost: (comm != u64::MAX).then_some(comm),
                },
                s => {
                    let kind = match s {
                        1 => RejectKind::UnknownScheduler,
                        2 => RejectKind::Unsupported,
                        3 => RejectKind::Infeasible,
                        4 => RejectKind::ValidationFailed,
                        5 => RejectKind::Overloaded,
                        6 => RejectKind::BadRequest,
                        _ => return err(format!("unknown status {s}")),
                    };
                    Outcome::Rejected {
                        kind,
                        message,
                        min_feasible: (kind == RejectKind::Infeasible && cost != u64::MAX)
                            .then_some(cost),
                    }
                }
            };
            Ok(Frame::Response(Response { id, outcome }))
        }
        2 => {
            d.done()?;
            Ok(Frame::Shutdown)
        }
        k => err(format!("unknown frame kind {k}")),
    }
}

// ---------------------------------------------------------------- framing

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame over 4 GiB");
    assert!(len <= MAX_FRAME, "frame over MAX_FRAME");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame.  `Ok(None)` means clean EOF at a frame
/// boundary; mid-frame EOF is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::Cdag;

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.unnamed(2);
        let l = b.unnamed(3);
        let r = b.unnamed(3);
        let s = b.unnamed(4);
        b.edge(a, l);
        b.edge(a, r);
        b.edge(l, s);
        b.edge(r, s);
        b.build().unwrap()
    }

    #[test]
    fn request_round_trips_both_graph_kinds() {
        let custom = Request {
            id: 42,
            ask: ScheduleRequest::new(GraphSpec::Custom(diamond()), 12, "naive")
                .with_cost_only(true),
            no_cache: true,
        };
        let Frame::Request(back) = decode_payload(&encode_request(&custom)).unwrap() else {
            panic!("expected request frame")
        };
        assert_eq!(back.id, 42);
        assert_eq!(back.ask.budget(), 12);
        assert_eq!(back.ask.scheduler(), "naive");
        assert!(back.ask.is_cost_only());
        assert!(back.no_cache);
        let GraphSpec::Custom(g) = back.ask.graph() else {
            panic!("expected custom graph")
        };
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.weight(NodeId(3)), 4);

        let wl = Request {
            id: 7,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Mvm { m: 4, n: 6 },
                    scheme: WeightScheme::DoubleAccumulator(16),
                },
                999,
                "mvm-tiling",
            ),
            no_cache: false,
        };
        let Frame::Request(back) = decode_payload(&encode_request(&wl)).unwrap() else {
            panic!("expected request frame")
        };
        let GraphSpec::Workload { workload, scheme } = back.ask.graph() else {
            panic!("expected workload graph")
        };
        assert_eq!(*workload, Workload::Mvm { m: 4, n: 6 });
        assert_eq!(*scheme, WeightScheme::DoubleAccumulator(16));
    }

    #[test]
    fn response_round_trips() {
        let ok = Response {
            id: 9,
            outcome: Outcome::Ok {
                cost: 128,
                schedule: Some(Schedule::from_moves(vec![
                    Move::Load(NodeId(0)),
                    Move::Compute(NodeId(1)),
                    Move::Store(NodeId(1)),
                    Move::Delete(NodeId(0)),
                ])),
                cache_hit: true,
                makespan: None,
                comm_cost: None,
            },
        };
        let Frame::Response(back) = decode_payload(&encode_response(&ok)).unwrap() else {
            panic!("expected response frame")
        };
        let Outcome::Ok {
            cost,
            schedule,
            cache_hit,
            makespan,
            comm_cost,
        } = back.outcome
        else {
            panic!("expected ok")
        };
        assert_eq!((back.id, cost, cache_hit), (9, 128, true));
        assert_eq!((makespan, comm_cost), (None, None));
        assert_eq!(schedule.unwrap().len(), 4);

        let multi = Response {
            id: 11,
            outcome: Outcome::Ok {
                cost: 96,
                schedule: None,
                cache_hit: false,
                makespan: Some(40),
                comm_cost: Some(12),
            },
        };
        let Frame::Response(back) = decode_payload(&encode_response(&multi)).unwrap() else {
            panic!("expected response frame")
        };
        let Outcome::Ok {
            cost,
            makespan,
            comm_cost,
            ..
        } = back.outcome
        else {
            panic!("expected ok")
        };
        assert_eq!((cost, makespan, comm_cost), (96, Some(40), Some(12)));

        let infeasible = Response {
            id: 10,
            outcome: Outcome::Rejected {
                kind: RejectKind::Infeasible,
                message: "too tight".into(),
                min_feasible: Some(64),
            },
        };
        let Frame::Response(back) = decode_payload(&encode_response(&infeasible)).unwrap() else {
            panic!("expected response frame")
        };
        let Outcome::Rejected {
            kind,
            message,
            min_feasible,
        } = back.outcome
        else {
            panic!("expected rejection")
        };
        assert_eq!(kind, RejectKind::Infeasible);
        assert_eq!(message, "too tight");
        assert_eq!(min_feasible, Some(64));
    }

    /// v2 requests carry the full machine: processor count, each budget,
    /// and the communication price all survive the round trip.
    #[test]
    fn multi_machine_requests_round_trip() {
        let req = Request {
            id: 5,
            ask: ScheduleRequest::new(
                GraphSpec::Custom(diamond()),
                MachineSpec::new(vec![ProcBudget::new(24), ProcBudget::new(8)]).with_comm_price(3),
                "comm-list",
            ),
            no_cache: false,
        };
        let Frame::Request(back) = decode_payload(&encode_request(&req)).unwrap() else {
            panic!("expected request frame")
        };
        let m = back.ask.machine();
        assert_eq!(m.num_procs(), 2);
        assert_eq!((m.proc_budget(0), m.proc_budget(1)), (24, 8));
        assert_eq!(m.comm_price(), 3);
        assert!(!m.is_uniprocessor());
    }

    /// Hand-encode v1 payloads (bare budget, no makespan/comm words) and
    /// check the decoder still accepts them: an old client's request maps
    /// to a uniprocessor machine, an old server's response decodes with
    /// the multi fields absent.
    #[test]
    fn v1_payloads_still_decode() {
        // v1 request: id flags budget scheduler graph.
        let mut e = Enc::new(0);
        e.0[2] = VERSION_V1;
        e.u64(77);
        e.u8(1); // cost_only
        e.u64(160);
        e.str("naive");
        e.u8(1); // dwt workload
        e.u64(16);
        e.u64(2);
        e.u8(0); // equal scheme
        e.u64(16);
        let Frame::Request(back) = decode_payload(&e.0).unwrap() else {
            panic!("expected request frame")
        };
        assert_eq!(back.id, 77);
        assert!(back.ask.is_cost_only());
        assert_eq!(back.ask.machine(), &MachineSpec::uniprocessor(160));
        assert_eq!(back.ask.scheduler(), "naive");

        // v1 ok response: id status cache cost message moves.
        let mut e = Enc::new(1);
        e.0[2] = VERSION_V1;
        e.u64(77);
        e.u8(0); // ok
        e.u8(1); // cache hit
        e.u64(512);
        e.str("");
        e.u8(0); // no moves
        let Frame::Response(back) = decode_payload(&e.0).unwrap() else {
            panic!("expected response frame")
        };
        let Outcome::Ok {
            cost,
            cache_hit,
            makespan,
            comm_cost,
            schedule,
        } = back.outcome
        else {
            panic!("expected ok")
        };
        assert_eq!((cost, cache_hit), (512, true));
        assert_eq!((makespan, comm_cost), (None, None));
        assert!(schedule.is_none());
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        assert!(decode_payload(&[]).is_err());
        assert!(decode_payload(&[0xff, 0xff, 1, 0]).is_err()); // bad magic
        let mut good = encode_request(&Request {
            id: 1,
            ask: ScheduleRequest::new(GraphSpec::Custom(diamond()), 12, "naive"),
            no_cache: false,
        });
        good[2] = 99; // bad version
        assert!(decode_payload(&good).is_err());
        // Truncated frame body.
        let full = encode_shutdown();
        assert!(matches!(decode_payload(&full), Ok(Frame::Shutdown)));
        assert!(decode_payload(&full[..full.len() - 1]).is_err());
        // Edge out of range.
        let mut e = Enc::new(0);
        e.u64(1);
        e.u8(0);
        e.0.extend_from_slice(&1u16.to_le_bytes()); // one processor
        e.u64(10);
        e.u64(2); // comm price
        e.str("naive");
        e.u8(0); // custom graph
        e.u32(1); // one node
        e.u64(5);
        e.u32(1); // one edge
        e.u32(0);
        e.u32(7); // target out of range
        assert!(decode_payload(&e.0).is_err());
        // A machine with zero processors is rejected at decode time.
        let mut e = Enc::new(0);
        e.u64(1);
        e.u8(0);
        e.0.extend_from_slice(&0u16.to_le_bytes());
        e.u64(2);
        e.str("naive");
        assert!(decode_payload(&e.0).is_err());
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let partial = [5u8, 0, 0]; // eof inside length
        assert!(read_frame(&mut &partial[..]).is_err());
    }
}
