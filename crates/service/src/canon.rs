//! Canonical graph forms for the schedule cache.
//!
//! The daemon's cache must answer "have I scheduled this graph before?"
//! where "this graph" means *up to node relabeling*: two clients that
//! built the same dataflow in different construction orders should hit
//! the same entry.  That requires two things with different robustness
//! budgets:
//!
//! 1. An **isomorphism-invariant hash** for bucket addressing.  We use
//!    the fixpoint of Weisfeiler–Leman color refinement: starting from
//!    `(weight, in-degree, out-degree)` colors, each round recolors a
//!    node by its color plus the sorted multisets of its predecessor and
//!    successor colors, densely re-ranked.  The fixpoint partition is a
//!    label-free function of the graph, so hashing its color histogram
//!    together with the edge color pairs is invariant for *every* graph,
//!    unconditionally — the property the service proptests pin down.
//!
//! 2. A **canonical labeling** for exact entry comparison and for
//!    transporting a cached schedule to the requester's labels.  When
//!    refinement leaves color classes with more than one node (the graph
//!    has nontrivial symmetry), we first run a **twin sweep**: a class
//!    whose members all share the *same* predecessor set and successor
//!    set (DWT's approx/detail pairs, fan-out replicas) is a genuine
//!    automorphism orbit, so any fixed internal order serializes to the
//!    same bytes — we split every such class deterministically at zero
//!    branching cost.  Only the symmetry twins cannot explain falls to
//!    textbook individualization–refinement: branch on each member of
//!    the first surviving non-singleton class, refine, recurse, and keep
//!    the lexicographically least serialized form over *all* branches.
//!    Exploring every branch is what makes the winner label-independent.
//!    The search tree can be factorial, so two invariant guards bound
//!    it: a class wider than [`CLASS_CAP`] (dense MVM's interchangeable
//!    rows — class *sizes* are label-free) aborts immediately, and the
//!    tree runs under a node budget whose sufficiency is also
//!    label-independent (the tree's size does not depend on labels).  On
//!    either bail-out we fall back to the original labeling marked
//!    inexact: identically-labeled repeats still hit (the common case
//!    for a client in a loop, served by the cache's identity fast path),
//!    relabeled isomorphs of highly-symmetric graphs miss, and
//!    correctness is never at stake because the cache compares full
//!    serialized bytes, never just the hash.

use pebblyn_core::symmetry::{
    count_classes, dense_rank, initial_colors, refine, split_twin_classes,
};
use pebblyn_core::{Cdag, FastHasher, NodeId};
use std::hash::Hasher;

/// Default individualization–refinement search budget (tree nodes).
///
/// After the twin sweep, every workload family in the paper discretizes
/// in a handful of nodes; the budget is a backstop for adversarial
/// many-small-orbit graphs (e.g. dozens of interchangeable components).
pub const DEFAULT_SEARCH_BUDGET: usize = 2048;

/// Widest non-twin color class the search will branch on.  A wider class
/// means at least `CLASS_CAP!`-ish work to canonicalize exactly, which no
/// budget this side of absurd covers — bail to the inexact fallback
/// before paying even one branch.  Class sizes are a label-free property
/// of the refined partition, so the bail-out is isomorphism-invariant.
pub const CLASS_CAP: usize = 24;

/// A graph's cache identity: invariant hash, comparison bytes, and the
/// labeling that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    hash: u64,
    bytes: Vec<u8>,
    perm: Vec<u32>,
    exact: bool,
}

impl CanonicalForm {
    /// The isomorphism-invariant bucket hash (WL fixpoint signature).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The serialized comparison form.  Two graphs with equal bytes are
    /// identical after applying their respective [`perm`](Self::perm)s.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// `perm[v] = c`: original node `v` holds canonical label `c`.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Whether the canonical search completed.  Inexact forms use the
    /// original labeling and only match byte-identical instances.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Map an original-label node to its canonical label.
    pub fn to_canon(&self, v: NodeId) -> NodeId {
        NodeId(self.perm[v.index()])
    }

    /// The inverse labeling: `inv[c] = v` with `perm[v] = c`.  Used to
    /// transport a canonically-labeled cached schedule back to this
    /// requester's node ids.
    pub fn inverse_perm(&self) -> Vec<NodeId> {
        let mut inv = vec![NodeId(0); self.perm.len()];
        for (v, &c) in self.perm.iter().enumerate() {
            inv[c as usize] = NodeId(v as u32);
        }
        inv
    }
}

/// Compute the canonical form under [`DEFAULT_SEARCH_BUDGET`].
pub fn canonical_form(g: &Cdag) -> CanonicalForm {
    canonical_form_with_budget(g, DEFAULT_SEARCH_BUDGET)
}

/// Compute the canonical form under an explicit search budget.
pub fn canonical_form_with_budget(g: &Cdag, budget: usize) -> CanonicalForm {
    let mut colors = initial_colors(g);
    refine(g, &mut colors);
    let hash = signature_hash(g, &colors);

    let mut remaining = budget;
    match search(g, colors, &mut remaining) {
        Some((bytes, perm)) => CanonicalForm {
            hash,
            bytes,
            perm,
            exact: true,
        },
        None => {
            let identity: Vec<u32> = (0..g.len() as u32).collect();
            CanonicalForm {
                hash,
                bytes: serialize(g, &identity, false),
                perm: identity,
                exact: false,
            }
        }
    }
}

/// A graph's *identity* form: its serialization under its own labels.
///
/// Costs one `O(V + E)` pass — no refinement, no search — and keys the
/// cache's first-level fast path for the dominant daemon pattern: a
/// client resubmitting the exact graph it built last time.  Schedules
/// stored under an identity form are already in the requester's labels,
/// so hits need no transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityForm {
    hash: u64,
    bytes: Vec<u8>,
}

impl IdentityForm {
    /// Bucket hash of the identity bytes (not the WL signature — this
    /// form deliberately distinguishes labelings).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The serialized comparison form under the graph's own labels.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Serialize `g` under its own labels and hash the bytes.
pub fn identity_form(g: &Cdag) -> IdentityForm {
    let identity: Vec<u32> = (0..g.len() as u32).collect();
    let bytes = serialize(g, &identity, false);
    let mut h = FastHasher::default();
    h.write_u64(0x70_65_62_5f_69_64_5f_31); // "peb_id_1" domain tag
    h.write(&bytes);
    IdentityForm {
        hash: h.finish(),
        bytes,
    }
}

/// Split `v` off from its color class, ordered before its old classmates.
fn individualize(colors: &[u32], v: usize) -> Vec<u32> {
    let keys: Vec<(u32, u8)> = colors
        .iter()
        .enumerate()
        .map(|(u, &c)| (c, u8::from(u != v)))
        .collect();
    dense_rank(&keys).0
}

/// Individualization–refinement: return the lex-least serialized form and
/// its labeling, or `None` if the graph is too symmetric to finish —
/// a branching class wider than [`CLASS_CAP`] or `budget` search-tree
/// nodes exhausted, both label-invariant conditions.
fn search(g: &Cdag, mut colors: Vec<u32>, budget: &mut usize) -> Option<(Vec<u8>, Vec<u32>)> {
    refine(g, &mut colors);
    while split_twin_classes(g, &mut colors) {
        refine(g, &mut colors);
    }
    let n = g.len();
    if count_classes(&colors) == n {
        // Discrete: the colors are a permutation 0..n and *are* the
        // canonical labeling of this branch.
        let bytes = serialize(g, &colors, true);
        return Some((bytes, colors));
    }
    // First non-singleton class by color value — an invariant choice.
    let mut counts = vec![0u32; n];
    for &c in &colors {
        counts[c as usize] += 1;
    }
    let target = (0..n as u32).find(|&c| counts[c as usize] > 1)?;
    if counts[target as usize] as usize > CLASS_CAP {
        return None;
    }
    *budget = budget.checked_sub(1)?;
    let mut best: Option<(Vec<u8>, Vec<u32>)> = None;
    for v in 0..n {
        if colors[v] != target {
            continue;
        }
        // Explore *every* member: the winner is the lex-min over the whole
        // orbit, which no relabeling can change.
        let child = individualize(&colors, v);
        let cand = search(g, child, budget)?;
        match &best {
            Some((b, _)) if *b <= cand.0 => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// Serialize `g` under labeling `perm` (original id -> label): weights and
/// sorted predecessor lists per label, prefixed by an exactness tag so
/// exact and fallback forms can never compare equal.
fn serialize(g: &Cdag, perm: &[u32], exact: bool) -> Vec<u8> {
    let n = g.len();
    let mut inv = vec![0u32; n];
    for (v, &c) in perm.iter().enumerate() {
        inv[c as usize] = v as u32;
    }
    let mut out = Vec::with_capacity(16 + 12 * n + 4 * g.edge_count());
    out.push(u8::from(exact));
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
    for &orig in &inv {
        let v = NodeId(orig);
        out.extend_from_slice(&g.weight(v).to_le_bytes());
        let mut preds: Vec<u32> = g.preds(v).iter().map(|u| perm[u.index()]).collect();
        preds.sort_unstable();
        out.extend_from_slice(&(preds.len() as u32).to_le_bytes());
        for p in preds {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }
    out
}

/// Hash the WL fixpoint signature: size, color histogram (with weights
/// folded in via the initial partition), and the multiset of edge color
/// pairs.  Every ingredient is label-free, so the hash is invariant.
fn signature_hash(g: &Cdag, colors: &[u32]) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(0x70_65_62_5f_63_61_6e_31); // "peb_can1" domain tag
    h.write_usize(g.len());
    h.write_usize(g.edge_count());

    let mut node_sig: Vec<(u32, u64)> = g
        .nodes()
        .map(|v| (colors[v.index()], g.weight(v)))
        .collect();
    node_sig.sort_unstable();
    for (c, w) in node_sig {
        h.write_u32(c);
        h.write_u64(w);
    }

    let mut edge_sig: Vec<(u32, u32)> = Vec::with_capacity(g.edge_count());
    for v in g.nodes() {
        for &u in g.preds(v) {
            edge_sig.push((colors[u.index()], colors[v.index()]));
        }
    }
    edge_sig.sort_unstable();
    for (a, b) in edge_sig {
        h.write_u32(a);
        h.write_u32(b);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::CdagBuilder;

    /// A small asymmetric DAG: path with a weighted side branch.
    fn asymmetric() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.unnamed(1);
        let c = b.unnamed(2);
        let d = b.unnamed(1);
        let e = b.unnamed(3);
        b.edge(a, c);
        b.edge(c, d);
        b.edge(c, e);
        b.edge(d, e);
        b.build().unwrap()
    }

    /// The same DAG built in a different node order.
    fn asymmetric_relabeled() -> (Cdag, Vec<u32>) {
        // perm maps asymmetric() ids -> these ids: a->3, c->1, d->0, e->2
        let mut b = CdagBuilder::new();
        let d = b.unnamed(1);
        let c = b.unnamed(2);
        let e = b.unnamed(3);
        let a = b.unnamed(1);
        b.edge(a, c);
        b.edge(c, d);
        b.edge(c, e);
        b.edge(d, e);
        (b.build().unwrap(), vec![3, 1, 0, 2])
    }

    #[test]
    fn isomorphic_graphs_share_hash_and_bytes() {
        let g1 = asymmetric();
        let (g2, _) = asymmetric_relabeled();
        let f1 = canonical_form(&g1);
        let f2 = canonical_form(&g2);
        assert!(f1.is_exact() && f2.is_exact());
        assert_eq!(f1.hash(), f2.hash());
        assert_eq!(f1.bytes(), f2.bytes());
    }

    #[test]
    fn perm_transports_between_labelings() {
        let g1 = asymmetric();
        let (g2, perm) = asymmetric_relabeled();
        let f1 = canonical_form(&g1);
        let f2 = canonical_form(&g2);
        // Node v in g1 corresponds to perm[v] in g2; both must land on
        // the same canonical label.
        for (v, &p) in perm.iter().enumerate() {
            assert_eq!(f1.perm()[v], f2.perm()[p as usize]);
        }
        // inverse_perm round-trips.
        let inv = f1.inverse_perm();
        for v in g1.nodes() {
            assert_eq!(inv[f1.to_canon(v).index()], v);
        }
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let g1 = asymmetric();
        let mut b = CdagBuilder::new();
        let a = b.unnamed(1);
        let c = b.unnamed(2);
        let d = b.unnamed(1);
        let e = b.unnamed(4); // different weight
        b.edge(a, c);
        b.edge(c, d);
        b.edge(c, e);
        b.edge(d, e);
        let g2 = b.build().unwrap();
        let f1 = canonical_form(&g1);
        let f2 = canonical_form(&g2);
        assert_ne!(f1.bytes(), f2.bytes());
    }

    #[test]
    fn twin_classes_collapse_without_any_search_budget() {
        // A 1 -> {2..9} -> 10 double-fan: the middle nodes are mutually
        // interchangeable *twins* (same pred set {1}, same succ set
        // {10}), so the twin sweep discretizes the partition and even a
        // zero search budget yields an exact, labeling-independent form.
        let fan = |order: &[u32]| {
            let mut b = CdagBuilder::new();
            let ids: Vec<_> = (0..10).map(|_| b.unnamed(1)).collect();
            for &m in order {
                b.edge(ids[0], ids[m as usize]);
                b.edge(ids[m as usize], ids[9]);
            }
            b.build().unwrap()
        };
        let g1 = fan(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let g2 = fan(&[8, 3, 1, 7, 2, 6, 4, 5]);
        let f1 = canonical_form_with_budget(&g1, 0);
        let f2 = canonical_form_with_budget(&g2, 0);
        assert!(f1.is_exact() && f2.is_exact());
        assert_eq!(f1.hash(), f2.hash());
        assert_eq!(f1.bytes(), f2.bytes());
    }

    /// `k` disjoint 2-node chains `a_i -> b_i`: every `a_i` is in one WL
    /// class but they are *not* twins (each has a different successor),
    /// so canonicalizing takes a genuine `k`-way branch per level.
    fn chains(k: usize, order: &[usize]) -> Cdag {
        let mut b = CdagBuilder::new();
        let heads: Vec<_> = (0..k).map(|_| b.unnamed(1)).collect();
        let tails: Vec<_> = (0..k).map(|_| b.unnamed(2)).collect();
        for &i in order {
            b.edge(heads[i], tails[i]);
        }
        b.build().unwrap()
    }

    #[test]
    fn symmetric_non_twin_graph_exhausts_budget_but_hash_stays_invariant() {
        let g1 = chains(6, &[0, 1, 2, 3, 4, 5]);
        let g2 = chains(6, &[4, 0, 5, 2, 1, 3]);
        let f1 = canonical_form_with_budget(&g1, 2);
        let f2 = canonical_form_with_budget(&g2, 2);
        assert!(!f1.is_exact() && !f2.is_exact());
        assert_eq!(f1.hash(), f2.hash());
        // With a generous budget the 6!-leaf search completes and the
        // forms agree across labelings.
        let e1 = canonical_form_with_budget(&g1, 1 << 20);
        let e2 = canonical_form_with_budget(&g2, 1 << 20);
        assert!(e1.is_exact() && e2.is_exact());
        assert_eq!(e1.bytes(), e2.bytes());
        // Exact and inexact forms never compare equal even on the same
        // graph (leading exactness tag differs).
        assert_ne!(e1.bytes(), f1.bytes());
    }

    #[test]
    fn classes_wider_than_cap_bail_to_inexact_at_any_budget() {
        let wide = CLASS_CAP + 2;
        let order1: Vec<usize> = (0..wide).collect();
        let order2: Vec<usize> = (0..wide).rev().collect();
        let g1 = chains(wide, &order1);
        let g2 = chains(wide, &order2);
        let f1 = canonical_form_with_budget(&g1, usize::MAX);
        let f2 = canonical_form_with_budget(&g2, usize::MAX);
        assert!(!f1.is_exact() && !f2.is_exact());
        assert_eq!(f1.hash(), f2.hash());
    }

    #[test]
    fn identity_form_distinguishes_labelings_but_not_repeats() {
        let g1 = asymmetric();
        let (g2, _) = asymmetric_relabeled();
        let i1 = identity_form(&g1);
        let i1_again = identity_form(&g1);
        let i2 = identity_form(&g2);
        assert_eq!(i1, i1_again);
        assert_eq!(i1.hash(), i1_again.hash());
        assert_ne!(i1.bytes(), i2.bytes());
    }
}
