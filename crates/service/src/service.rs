//! The daemon-side request handler: cache in front, engine behind.
//!
//! [`Service::handle`] is the single synchronous entry point shared by
//! every transport (stdio framing, unix socket, the in-process load
//! generator): decode-free typed [`Request`] in, typed [`Response`] out.
//! The handler builds the graph and consults the [`ScheduleCache`] in
//! two steps — the `O(V + E)` identity form first (byte-identical
//! repeats, the dominant pattern, skip canonicalization entirely), the
//! canonical form only on identity miss — and only on a full miss pays
//! for a real solve through `pebblyn_schedulers::api::execute`, the same
//! executor the CLI and the sweep engine use, so a daemon answer can
//! never diverge from an in-process one.  Requests whose scheduler is
//! unknown or does not support the graph bypass the cache for the same
//! reason: the cache must never answer where the executor would reject.

use crate::cache::ScheduleCache;
use crate::canon::{
    canonical_form_with_budget, identity_form, CanonicalForm, DEFAULT_SEARCH_BUDGET,
};
use pebblyn_core::{Cdag, Schedule, ScheduleRequest, Weight};
use pebblyn_graphs::{AnyGraph, WeightScheme, Workload};
use pebblyn_schedulers::api;
use pebblyn_schedulers::{ExecuteError, ScheduleError};
use pebblyn_telemetry::{self as telemetry, Counter, Gauge};
use std::time::Instant;

/// The graph payload of a service request: either explicit structure or
/// the parameters of a named workload family (cheaper on the wire, and
/// the form under which typed schedulers like `dwt-opt` apply).
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// An explicit CDAG.
    Custom(Cdag),
    /// A workload family instance to build server-side.
    Workload {
        /// Which family and size.
        workload: Workload,
        /// Node-weight configuration.
        scheme: WeightScheme,
    },
}

impl GraphSpec {
    /// Build the workload-erased graph, consuming the spec: explicit
    /// CDAGs move in without a copy (the handler owns its request, and
    /// graph cloning would otherwise dominate a cache hit's latency).
    fn build(self) -> Result<AnyGraph, String> {
        match self {
            GraphSpec::Custom(cdag) => Ok(AnyGraph::custom("wire-custom", cdag)),
            GraphSpec::Workload { workload, scheme } => {
                AnyGraph::build(workload, scheme).map_err(|e| e.to_string())
            }
        }
    }
}

/// One service request: a [`ScheduleRequest`] over a [`GraphSpec`], plus
/// the wire-level id used to pair responses on a pipelined connection and
/// a per-request cache opt-out (the load generator's control runs).
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The scheduling question.
    pub ask: ScheduleRequest<GraphSpec>,
    /// Skip the cache for this request (forces a fresh solve and does not
    /// insert the answer).
    pub no_cache: bool,
}

/// Why a request was not answered with a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// The request named a scheduler the registry does not know.
    UnknownScheduler,
    /// The scheduler does not apply to this graph family.
    Unsupported,
    /// The budget is below what this algorithm (or any) needs.
    Infeasible,
    /// The scheduler produced a schedule that failed replay — a server
    /// bug surfaced honestly rather than silently.
    ValidationFailed,
    /// The server's bounded queue was full (load shed).
    Overloaded,
    /// The request could not be decoded or the graph failed to build.
    BadRequest,
}

/// The outcome carried by a [`Response`].
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A scheduled answer.
    Ok {
        /// Replay-validated cost in bits.
        cost: Weight,
        /// The moves (absent for cost-only requests and for
        /// multiprocessor answers, whose move streams are not
        /// transported over the wire yet).
        schedule: Option<Schedule>,
        /// Whether the answer came from the cache.
        cache_hit: bool,
        /// Multiprocessor makespan (None for uniprocessor answers).
        makespan: Option<Weight>,
        /// Multiprocessor communication cost (None for uniprocessor).
        comm_cost: Option<Weight>,
    },
    /// A typed rejection.
    Rejected {
        /// The category, mirrored to a wire status code.
        kind: RejectKind,
        /// Human-readable detail.
        message: String,
        /// For [`RejectKind::Infeasible`]: the game-level minimum
        /// feasible budget when known.
        min_feasible: Option<Weight>,
    },
}

/// One service response, paired to its request by `id`.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    /// What happened.
    pub outcome: Outcome,
}

impl Response {
    /// Shorthand for a rejection without a feasibility hint.
    pub fn rejected(id: u64, kind: RejectKind, message: impl Into<String>) -> Self {
        Response {
            id,
            outcome: Outcome::Rejected {
                kind,
                message: message.into(),
                min_feasible: None,
            },
        }
    }

    /// The load-shed response the server emits when its queue is full.
    pub fn overloaded(id: u64) -> Self {
        Response::rejected(id, RejectKind::Overloaded, "server queue full")
    }
}

/// Service knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Enable the canonicalizing schedule cache.
    pub cache: bool,
    /// Cache shard count (lock domains).
    pub shards: usize,
    /// Canonicalization search budget (see [`crate::canon`]).
    pub canon_budget: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache: true,
            shards: 16,
            canon_budget: DEFAULT_SEARCH_BUDGET,
        }
    }
}

/// The request handler: a cache plus the registry executor.
pub struct Service {
    cache: Option<ScheduleCache>,
    canon_budget: usize,
}

impl Service {
    /// Build a service from config.
    pub fn new(cfg: &ServiceConfig) -> Self {
        Service {
            cache: cfg.cache.then(|| ScheduleCache::new(cfg.shards)),
            canon_budget: cfg.canon_budget,
        }
    }

    /// A service with default config (cache on).
    pub fn with_default_config() -> Self {
        Service::new(&ServiceConfig::default())
    }

    /// The cache, when enabled (the load generator reads its stats).
    pub fn cache(&self) -> Option<&ScheduleCache> {
        self.cache.as_ref()
    }

    /// Answer one request.  Takes the request by value — it arrives
    /// owned through every transport, and ownership lets a custom graph
    /// move into the handler instead of being deep-cloned on the hot
    /// path.  Never panics on malformed input; every failure maps to a
    /// typed [`Outcome::Rejected`].
    pub fn handle(&self, req: Request) -> Response {
        let _span = telemetry::span("service_request");
        telemetry::incr(Counter::ServiceRequests);
        let started = Instant::now();
        let resp = self.answer(req);
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry::gauge_max(Gauge::ServiceLatencyPeakNs, elapsed_ns);
        resp
    }

    fn answer(&self, req: Request) -> Response {
        let Request { id, ask, no_cache } = req;
        let machine = ask.machine().clone();
        let budget = ask.budget();
        let need_moves = !ask.is_cost_only();
        let cost_only = ask.is_cost_only();
        let scheduler = ask.scheduler().to_owned();
        let graph = match ask.into_graph().build() {
            Ok(g) => g,
            Err(msg) => return Response::rejected(id, RejectKind::BadRequest, msg),
        };
        let exec_req = ScheduleRequest::new(&graph, machine.clone(), scheduler.as_str())
            .with_cost_only(cost_only);

        let cache = match (&self.cache, no_cache) {
            (Some(c), false) => Some(c),
            _ => None,
        };
        // The cache only participates when a direct solve would too:
        // answering an (unknown scheduler, unsupported family) request
        // from an entry another graph spec populated would diverge from
        // the executor's typed rejection.  Multiprocessor full-schedule
        // requests always miss: the cache stores single-processor move
        // streams only, so multi answers are cached cost-level
        // (cost + makespan + comm) and re-solved when moves are needed.
        let cache = cache.filter(|_| {
            api::by_name(&scheduler).is_some_and(|s| s.supports_machine(&graph, &machine))
        });

        // Level 1: identity form — one serialization pass, no transport.
        let ident = cache.map(|_| identity_form(graph.cdag()));
        if let (Some(cache), Some(ident)) = (cache, &ident) {
            if let Some(hit) = cache.lookup_identity(ident, &scheduler, &machine, need_moves) {
                telemetry::incr(Counter::ServiceCacheHits);
                return Response {
                    id,
                    outcome: Outcome::Ok {
                        cost: hit.cost,
                        schedule: hit.schedule,
                        cache_hit: true,
                        makespan: hit.makespan,
                        comm_cost: hit.comm_cost,
                    },
                };
            }
        }

        // Level 2: canonical form, for relabeled isomorphs.  Inexact
        // forms are dropped — they can only match byte-identical
        // instances, which level 1 already ruled out.
        let form = cache
            .map(|_| canonical_form_with_budget(graph.cdag(), self.canon_budget))
            .filter(CanonicalForm::is_exact);
        if let (Some(cache), Some(form)) = (cache, &form) {
            if let Some(hit) = cache.lookup(form, &scheduler, &machine, need_moves) {
                telemetry::incr(Counter::ServiceCacheHits);
                return Response {
                    id,
                    outcome: Outcome::Ok {
                        cost: hit.cost,
                        schedule: hit.schedule,
                        cache_hit: true,
                        makespan: hit.makespan,
                        comm_cost: hit.comm_cost,
                    },
                };
            }
        }
        if let Some(cache) = cache {
            cache.record_miss();
            telemetry::incr(Counter::ServiceCacheMisses);
        }

        match api::execute(&exec_req) {
            Ok(answer) => {
                if let Some(cache) = cache {
                    let ident = ident.as_ref().expect("identity form accompanies cache");
                    cache.insert_identity(
                        ident,
                        &scheduler,
                        &machine,
                        answer.cost(),
                        answer.makespan(),
                        answer.comm_cost(),
                        answer.schedule(),
                    );
                    if let Some(form) = &form {
                        cache.insert(
                            form,
                            &scheduler,
                            &machine,
                            answer.cost(),
                            answer.makespan(),
                            answer.comm_cost(),
                            answer.schedule(),
                        );
                    }
                }
                Response {
                    id,
                    outcome: Outcome::Ok {
                        cost: answer.cost(),
                        makespan: answer.makespan(),
                        comm_cost: answer.comm_cost(),
                        schedule: answer.into_schedule(),
                        cache_hit: false,
                    },
                }
            }
            Err(ExecuteError::UnknownScheduler { requested, valid }) => Response::rejected(
                id,
                RejectKind::UnknownScheduler,
                format!(
                    "unknown scheduler '{requested}' (valid: {})",
                    valid.join(", ")
                ),
            ),
            Err(ExecuteError::Schedule(ScheduleError::Unsupported)) => Response::rejected(
                id,
                RejectKind::Unsupported,
                format!("scheduler '{scheduler}' does not support {}", graph.name()),
            ),
            Err(ExecuteError::Schedule(ScheduleError::InfeasibleBudget { min_feasible })) => {
                Response {
                    id,
                    outcome: Outcome::Rejected {
                        kind: RejectKind::Infeasible,
                        message: format!("budget {budget} infeasible for '{scheduler}'"),
                        min_feasible,
                    },
                }
            }
            Err(ExecuteError::Schedule(
                e @ (ScheduleError::ValidationFailed(_) | ScheduleError::MultiValidationFailed(_)),
            )) => Response::rejected(id, RejectKind::ValidationFailed, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, MachineSpec};

    fn workload_request(id: u64, budget: Weight, scheduler: &str) -> Request {
        Request {
            id,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Dwt { n: 16, d: 2 },
                    scheme: WeightScheme::Equal(16),
                },
                budget,
                scheduler,
            ),
            no_cache: false,
        }
    }

    #[test]
    fn miss_then_hit_agree_and_validate() {
        let svc = Service::with_default_config();
        let req = workload_request(1, 16 * 16, "dwt-opt");

        let cold = svc.handle(req.clone());
        let Outcome::Ok {
            cost: cold_cost,
            schedule: Some(cold_sched),
            cache_hit: false,
            ..
        } = cold.outcome
        else {
            panic!("expected cold full answer, got {:?}", cold.outcome)
        };

        let warm = svc.handle(Request { id: 2, ..req });
        let Outcome::Ok {
            cost: warm_cost,
            schedule: Some(warm_sched),
            cache_hit: true,
            ..
        } = warm.outcome
        else {
            panic!("expected warm cached answer, got {:?}", warm.outcome)
        };
        assert_eq!(warm.id, 2);
        assert_eq!(cold_cost, warm_cost);

        // The transported schedule replays to the same cost on the
        // requester's graph.
        let g = AnyGraph::build(Workload::Dwt { n: 16, d: 2 }, WeightScheme::Equal(16)).unwrap();
        let stats = validate_schedule(g.cdag(), 16 * 16, &warm_sched).unwrap();
        assert_eq!(stats.cost, cold_cost);
        assert_eq!(cold_sched.moves(), warm_sched.moves());
        assert_eq!(svc.cache().unwrap().stats().hits(), 1);
        assert_eq!(svc.cache().unwrap().stats().misses(), 1);
    }

    #[test]
    fn no_cache_requests_bypass_and_do_not_populate() {
        let svc = Service::with_default_config();
        let mut req = workload_request(1, 16 * 16, "dwt-opt");
        req.no_cache = true;
        for _ in 0..2 {
            let resp = svc.handle(req.clone());
            let Outcome::Ok { cache_hit, .. } = resp.outcome else {
                panic!("expected ok")
            };
            assert!(!cache_hit);
        }
        assert_eq!(svc.cache().unwrap().stats().hits(), 0);
        assert_eq!(svc.cache().unwrap().stats().entries(), 0);
    }

    /// Multiprocessor requests flow through the same handler: cost-only
    /// answers carry makespan and communication cost, cache cost-level
    /// entries reproduce them on a warm hit, and full-schedule multi
    /// requests re-solve (the cache stores uniprocessor move streams
    /// only).
    #[test]
    fn multi_requests_carry_makespan_and_cache_cost_level() {
        let svc = Service::with_default_config();
        let multi_req = |id| Request {
            id,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Dwt { n: 16, d: 2 },
                    scheme: WeightScheme::Equal(16),
                },
                MachineSpec::symmetric(2, 16 * 16),
                "partition-belady",
            )
            .with_cost_only(true),
            no_cache: false,
        };

        let cold = svc.handle(multi_req(1));
        let Outcome::Ok {
            cost: cold_cost,
            schedule: None,
            cache_hit: false,
            makespan: Some(cold_span),
            comm_cost: Some(_),
        } = cold.outcome
        else {
            panic!("expected cold multi cost answer, got {:?}", cold.outcome)
        };

        let warm = svc.handle(multi_req(2));
        let Outcome::Ok {
            cost: warm_cost,
            cache_hit: true,
            makespan: Some(warm_span),
            ..
        } = warm.outcome
        else {
            panic!("expected warm multi hit, got {:?}", warm.outcome)
        };
        assert_eq!((cold_cost, cold_span), (warm_cost, warm_span));

        // Same graph, uniprocessor machine: a distinct cache key.
        let uni = svc.handle(workload_request(3, 16 * 16, "partition-belady"));
        let Outcome::Ok {
            cache_hit: false,
            makespan: None,
            comm_cost: None,
            ..
        } = uni.outcome
        else {
            panic!("expected fresh uniprocessor answer, got {:?}", uni.outcome)
        };
    }

    #[test]
    fn rejections_are_typed() {
        let svc = Service::with_default_config();

        let unknown = Request {
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Dwt { n: 16, d: 2 },
                    scheme: WeightScheme::Equal(16),
                },
                256,
                "nonsense",
            ),
            ..workload_request(7, 256, "naive")
        };
        let resp = svc.handle(unknown);
        let Outcome::Rejected { kind, message, .. } = resp.outcome else {
            panic!("expected rejection")
        };
        assert_eq!(kind, RejectKind::UnknownScheduler);
        assert!(message.contains("dwt-opt"), "lists valid names: {message}");

        // Bad workload parameters -> BadRequest, not a panic.
        let bad = Request {
            id: 8,
            ask: ScheduleRequest::new(
                GraphSpec::Workload {
                    workload: Workload::Dwt { n: 7, d: 3 },
                    scheme: WeightScheme::Equal(16),
                },
                256,
                "naive",
            ),
            no_cache: false,
        };
        let Outcome::Rejected { kind, .. } = svc.handle(bad).outcome else {
            panic!("expected rejection")
        };
        assert_eq!(kind, RejectKind::BadRequest);

        // Infeasible budget carries the hint when known.
        let tight = workload_request(9, 1, "dwt-opt");
        let Outcome::Rejected { kind, .. } = svc.handle(tight).outcome else {
            panic!("expected rejection")
        };
        assert_eq!(kind, RejectKind::Infeasible);
    }
}
