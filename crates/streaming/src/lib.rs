//! # pebblyn-streaming — single-pass schedulers for the million-node regime
//!
//! Every other scheduler in the workspace assumes the CDAG is small enough
//! for exhaustive search or per-workload dynamic programming.  This crate
//! targets graphs the exact solver can never touch: it provides two O(V + E)
//! heuristics that stream over the CSR plane of a [`pebblyn_core::Cdag`]
//! without any per-node heap structures beyond flat arrays and one lazy
//! binary heap.
//!
//! * [`window`] — a **topological-window greedy**: compute nodes in
//!   topological order, keep operands resident, and when the weighted red
//!   budget overflows evict the resident whose next use (within a bounded
//!   lookahead window of the compute order) is furthest away — Belady's
//!   MIN policy restricted to streaming lookahead.
//! * [`slab`] — a **layered slab partitioner**: cut the topological order
//!   into contiguous budget-feasible slabs, choosing each boundary among
//!   the trailing feasible positions to minimize the weight of values that
//!   must cross it (reload-aware cuts), then emit a load / compute / store /
//!   flush phase per slab.
//!
//! Neither scheduler is optimal; both are *certified* instead: they succeed
//! exactly when Prop 2.3 says a schedule exists (`budget ≥
//! min_feasible_budget`), every emitted schedule replays cleanly under the
//! rule validator, and the cost is compared against the Prop 2.4 lower
//! bound by the STREAMING conformance regime, which records the observed
//! gap rather than demanding equality.
//!
//! The functions here return `Option<Schedule>` (`None` = infeasible under
//! Prop 2.3); the `pebblyn-schedulers` crate wraps them behind the sealed
//! `Scheduler` trait with the typed `InfeasibleBudget` error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod slab;
pub mod window;

pub use slab::{slab_schedule, slab_schedule_with, SlabConfig, SlabStats};
pub use window::{window_schedule, window_schedule_with, WindowConfig, WindowStats};
