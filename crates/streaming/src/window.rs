//! Topological-window greedy with Belady-style furthest-next-use eviction.
//!
//! Nodes are computed in topological order.  Every value that enters fast
//! memory is tracked in a lazy max-heap keyed by its next consumption
//! position in the compute order; when the weighted budget would overflow,
//! the resident with the *furthest* next use is evicted (Belady's MIN
//! policy).  The streaming twist is the **window**: next uses more than
//! `window` compute steps ahead are indistinguishable — they all clamp to
//! the same "beyond horizon" key — so the scheduler only ever relies on
//! lookahead a real streaming frontend could buffer.
//!
//! The whole pass is O((V + E) log R) for R resident values, and the hot
//! loop is engineered for the million-node regime, where it is cache-miss
//! bound rather than compute bound:
//!
//! * a **next-use chain** is precomputed by one backward sweep over the
//!   edge-consumption events, so advancing an operand's next use is a
//!   sequential read instead of a use-list lookup;
//! * each node's residency flags and next-use position live in one packed
//!   8-byte [`NodeRec`], so touching an operand costs one scattered cache
//!   line, not three;
//! * values whose last consumption just happened are reclaimed on the spot
//!   (deletes are free), keeping dead entries out of the heap, and the
//!   heap itself is compacted once stale entries pile up, so its size
//!   stays O(residents) even on eviction-free runs.
//!
//! Eager re-push after each consumption keeps at least one live-keyed
//! entry per resident, so the popped maximum is the true Belady victim —
//! the audit mode used by the unit tests verifies exactly that.

use std::collections::BinaryHeap;

use pebblyn_core::{min_feasible_budget, Cdag, Move, MoveStream, NodeId, Schedule, Weight};
use pebblyn_telemetry::{self as telemetry, Counter, Gauge};

/// Default lookahead window, in compute steps.
pub const DEFAULT_WINDOW: usize = 1024;

/// Next-use key for a value with no remaining consumers.
const KEY_DEAD: u64 = u64::MAX;
/// Next-use key for a value whose next consumer is beyond the window.
const KEY_BEYOND: u64 = u64::MAX - 1;
/// Sentinel next-use position: no further consumption.
const NO_USE: u32 = u32::MAX;

/// Tuning knobs for [`window_schedule_with`].
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Lookahead horizon in compute steps; `0` means unbounded (full
    /// Belady knowledge of the compute order).
    pub window: usize,
    /// When set, every eviction is cross-checked against a full scan of
    /// the resident set and counted in [`WindowStats::audit_violations`]
    /// if a strictly better victim existed.  O(V) per eviction — test
    /// use only.
    pub audit: bool,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_WINDOW,
            audit: false,
        }
    }
}

/// Counters reported alongside a schedule by [`window_schedule_with`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Compute moves emitted (= non-source node count).
    pub computes: u64,
    /// Residents evicted to make room.
    pub evictions: u64,
    /// Load moves emitted.
    pub loads: u64,
    /// Store moves emitted.
    pub stores: u64,
    /// Peak resident red weight, in bits.
    pub peak_red: Weight,
    /// Evictions where a strictly-further-next-use victim was available
    /// (only counted under [`WindowConfig::audit`]; always 0 in a correct
    /// build).
    pub audit_violations: u64,
}

/// Schedule `graph` under `budget` with the default window.
///
/// Returns `None` exactly when Prop 2.3 says no schedule exists
/// (`budget < min_feasible_budget`).
pub fn window_schedule(graph: &Cdag, budget: Weight) -> Option<Schedule> {
    window_schedule_with(graph, budget, &WindowConfig::default()).map(|(s, _)| s)
}

/// Schedule `graph` under `budget` with explicit [`WindowConfig`],
/// returning the schedule together with [`WindowStats`].
pub fn window_schedule_with(
    graph: &Cdag,
    budget: Weight,
    cfg: &WindowConfig,
) -> Option<(Schedule, WindowStats)> {
    if budget < min_feasible_budget(graph) {
        return None;
    }
    let mut state = State::new(graph, budget, cfg);
    state.run();
    let State { moves, stats, .. } = state;
    telemetry::add(Counter::StreamNodes, stats.computes);
    telemetry::add(Counter::WindowEvictions, stats.evictions);
    telemetry::gauge_max(Gauge::WindowPeak, stats.peak_red);
    Some((Schedule::from_stream(moves), stats))
}

const RED: u8 = 1;
const BLUE: u8 = 2;
const DIRTY: u8 = 4;
const PINNED: u8 = 8;
/// Transient marker used only inside [`State::compact_victims`].
const SEEN: u8 = 16;

/// Per-node scheduler state packed into one 8-byte record so the hot loop
/// costs a single scattered cache line per operand.
#[derive(Clone, Copy)]
struct NodeRec {
    /// Next consumption position in the compute order ([`NO_USE`] = none).
    next: u32,
    /// RED / BLUE / DIRTY / PINNED bits.
    flags: u8,
}

/// Compact the victim heap once it exceeds `COMPACT_FACTOR` entries per
/// resident: without this, graphs scheduled under ample budgets (few
/// evictions, so the heap is rarely drained) accumulate one stale entry
/// per consumed edge and heap pushes degrade to O(log E) with cold cache
/// lines.  Compaction is O(heap) and amortized O(1) per push.
const COMPACT_FACTOR: usize = 4;

/// The eviction key for a value whose next consumption is `next`, seen
/// from compute position `t`: the position itself, clamped to
/// [`KEY_BEYOND`] past the window and [`KEY_DEAD`] when no consumption
/// remains.  Larger keys are better victims.
#[inline]
fn key_of(next: u32, t: usize, window: usize) -> u64 {
    if next == NO_USE {
        return KEY_DEAD;
    }
    if window > 0 && u64::from(next) > (t as u64).saturating_add(window as u64) {
        KEY_BEYOND
    } else {
        u64::from(next)
    }
}

struct State<'g> {
    graph: &'g Cdag,
    budget: Weight,
    window: usize,
    audit: bool,
    /// Next-use chain in consumption order: entry `k` is the compute
    /// position at which the operand of the `k`-th edge-consumption event
    /// is consumed *next* ([`NO_USE`] = never again).  Events are numbered
    /// in compute order, operands in predecessor-slice order, so the run
    /// loop reads this array strictly sequentially.
    next_at: Vec<u32>,
    /// Packed per-node flags and next-use position.
    rec: Vec<NodeRec>,
    red_weight: Weight,
    /// Residents currently red (invariant: every red node has at least one
    /// heap entry, so compaction can enumerate residents from the heap).
    red_count: usize,
    /// Max-heap of `(next-use key, node)` eviction candidates; entries are
    /// revalidated lazily at pop time and compacted once stale entries
    /// outnumber residents by [`COMPACT_FACTOR`].
    victims: BinaryHeap<(u64, NodeId)>,
    moves: MoveStream,
    stats: WindowStats,
}

impl<'g> State<'g> {
    fn new(graph: &'g Cdag, budget: Weight, cfg: &WindowConfig) -> Self {
        let n = graph.len();
        // Every edge is consumed exactly once, at its head's compute step.
        let events = graph.edge_count();
        let steps = n - graph.sources().len();

        let mut rec = vec![
            NodeRec {
                next: NO_USE,
                flags: 0
            };
            n
        ];

        // One backward sweep over the compute order threads each operand's
        // consumptions into a chain: event k records where its operand is
        // consumed next, and `rec.next` ends holding every node's first
        // consumption.  Slots within a step run in reverse so that, when
        // the forward pass overwrites a node's `next` once per slot, the
        // last write is the first consumption strictly after the step.
        let mut next_at = vec![NO_USE; events];
        let mut k = events;
        let mut t = steps;
        for &v in graph.topo_order().iter().rev() {
            if graph.is_source(v) {
                continue;
            }
            let preds = graph.preds(v);
            t -= 1;
            k -= preds.len();
            for i in (0..preds.len()).rev() {
                let p = preds[i].index();
                next_at[k + i] = rec[p].next;
                rec[p].next = t as u32;
            }
        }
        debug_assert_eq!((k, t), (0, 0), "events and steps account for every edge");
        for &s in graph.sources() {
            rec[s.index()].flags = BLUE;
        }

        // Emit straight into the struct-of-arrays move stream (no
        // Vec<Move> + conversion pass), reserved at a provable upper bound
        // — computes + stores ≤ 2·steps (a value is stored at most once),
        // loads ≤ events, deletes ≤ loads + computes — so the columns never
        // regrow mid-pass: at a million nodes each regrowth is a
        // multi-ten-MB remap that costs more than the scheduling itself.
        let moves = MoveStream::with_capacity(3 * steps + 2 * events);

        Self {
            graph,
            budget,
            window: cfg.window,
            audit: cfg.audit,
            next_at,
            rec,
            red_weight: 0,
            red_count: 0,
            victims: BinaryHeap::with_capacity(1024),
            moves,
            stats: WindowStats::default(),
        }
    }

    #[inline]
    fn has(&self, u: NodeId, bit: u8) -> bool {
        self.rec[u.index()].flags & bit != 0
    }

    #[inline]
    fn set(&mut self, u: NodeId, bit: u8) {
        self.rec[u.index()].flags |= bit;
    }

    #[inline]
    fn clear(&mut self, u: NodeId, bit: u8) {
        self.rec[u.index()].flags &= !bit;
    }

    fn needed_again(&self, u: NodeId) -> bool {
        self.rec[u.index()].next != NO_USE
    }

    /// The live eviction key of `u` at compute position `t`.
    #[inline]
    fn key(&self, u: NodeId, t: usize) -> u64 {
        key_of(self.rec[u.index()].next, t, self.window)
    }

    /// Push an eviction candidate, compacting the heap when stale entries
    /// pile up (see [`COMPACT_FACTOR`]).  Not used from inside
    /// [`Self::make_room`], whose own re-pushes never grow the heap net.
    #[inline]
    fn push_victim(&mut self, key: u64, u: NodeId, t: usize) {
        self.victims.push((key, u));
        if self.victims.len() > 64 && self.victims.len() > COMPACT_FACTOR * self.red_count {
            self.compact_victims(t);
        }
    }

    /// Rebuild the heap with exactly one live-keyed entry per resident.
    /// Every resident has at least one heap entry (eager re-push), so
    /// draining the old heap enumerates them all.
    fn compact_victims(&mut self, t: usize) {
        let old = std::mem::take(&mut self.victims).into_vec();
        let mut keep: Vec<(u64, NodeId)> = Vec::with_capacity(self.red_count);
        for (_, u) in old {
            // Transient SEEN bit dedups residents with several heap entries;
            // cleared again before returning.
            if self.has(u, RED) && !self.has(u, SEEN) {
                self.set(u, SEEN);
                keep.push((self.key(u, t), u));
            }
        }
        for &(_, u) in &keep {
            self.clear(u, SEEN);
        }
        self.victims = BinaryHeap::from(keep);
    }

    fn run(&mut self) {
        // Compute-step and edge-event cursors, advancing in lockstep with
        // the topological order exactly as `next_at` was laid out.
        let mut t = 0usize;
        let mut k = 0usize;
        for &v in self.graph.topo_order() {
            if self.graph.is_source(v) {
                continue;
            }
            // Pin the operands and the target for the duration of the step.
            self.set(v, PINNED);
            for &p in self.graph.preds(v) {
                self.set(p, PINNED);
            }
            for &p in self.graph.preds(v) {
                if !self.has(p, RED) {
                    self.load(p, t);
                }
            }
            self.make_room(self.graph.weight(v), t);
            self.moves.push(Move::Compute(v));
            self.set(v, RED | DIRTY);
            self.red_weight += self.graph.weight(v);
            self.red_count += 1;
            self.stats.peak_red = self.stats.peak_red.max(self.red_weight);
            self.stats.computes += 1;
            self.clear(v, PINNED);
            // Consume the operands; eager re-push keeps a live-keyed heap
            // entry for every resident (keys only grow as uses burn down).
            // Values with no consumption left are reclaimed on the spot —
            // deletes are free in the WRBPG and an immediate M4 both frees
            // budget earlier and keeps dead entries out of the heap.
            for (i, &p) in self.graph.preds(v).iter().enumerate() {
                let next = self.next_at[k + i];
                let r = &mut self.rec[p.index()];
                r.flags &= !PINNED;
                r.next = next;
                if next == NO_USE {
                    self.reclaim(p);
                } else {
                    self.push_victim(key_of(next, t, self.window), p, t);
                }
            }
            k += self.graph.preds(v).len();
            let next_v = self.rec[v.index()].next;
            if next_v == NO_USE {
                // A freshly computed value with no consumers is a sink:
                // stream it straight out and drop the red pebble.
                self.moves.push(Move::Store(v));
                self.set(v, BLUE);
                self.clear(v, DIRTY);
                self.stats.stores += 1;
                self.reclaim(v);
            } else {
                self.push_victim(key_of(next_v, t, self.window), v, t);
            }
            t += 1;
        }
        // Sinks are streamed out the moment they are computed and interior
        // values stored on eviction when needed, so by here every sink is
        // blue; the sweep is a cheap belt-and-braces for the stopping
        // condition.
        for &z in self.graph.sinks() {
            if !self.has(z, BLUE) {
                debug_assert!(self.has(z, RED), "unsaved sink must still be red");
                self.moves.push(Move::Store(z));
                self.set(z, BLUE);
                self.clear(z, DIRTY);
                self.stats.stores += 1;
            }
        }
    }

    fn load(&mut self, p: NodeId, t: usize) {
        debug_assert!(self.has(p, BLUE), "loaded value must be blue");
        self.make_room(self.graph.weight(p), t);
        self.moves.push(Move::Load(p));
        self.set(p, RED);
        self.clear(p, DIRTY);
        self.red_weight += self.graph.weight(p);
        self.red_count += 1;
        self.stats.peak_red = self.stats.peak_red.max(self.red_weight);
        self.stats.loads += 1;
        self.push_victim(self.key(p, t), p, t);
    }

    /// Evict furthest-next-use residents until `need` more bits fit.
    fn make_room(&mut self, need: Weight, t: usize) {
        if self.red_weight + need <= self.budget {
            return;
        }
        let mut parked = Vec::new();
        while self.red_weight + need > self.budget {
            let (k, u) = self
                .victims
                .pop()
                .expect("budget >= min_feasible leaves an evictable resident");
            if !self.has(u, RED) {
                continue; // stale: already evicted
            }
            if self.has(u, PINNED) {
                parked.push((k, u));
                continue;
            }
            let live = self.key(u, t);
            if live > k {
                continue; // stale: a fresher entry with the larger key exists
            }
            if live < k {
                // The next use slid inside the window since this entry was
                // pushed; re-queue at its true (smaller) key.
                self.victims.push((live, u));
                continue;
            }
            if self.audit {
                self.audit_eviction(u, live, t);
            }
            self.evict(u);
        }
        self.victims.extend(parked);
    }

    /// Drop the red pebble of a value that will never be consumed again.
    /// Not an eviction: nothing is displaced and no store is needed (dead
    /// non-sinks are never stored; sinks are stored by the caller first).
    fn reclaim(&mut self, u: NodeId) {
        self.moves.push(Move::Delete(u));
        self.clear(u, RED);
        self.red_weight -= self.graph.weight(u);
        self.red_count -= 1;
    }

    fn evict(&mut self, u: NodeId) {
        if self.has(u, DIRTY) && (self.needed_again(u) || self.graph.is_sink(u)) {
            self.moves.push(Move::Store(u));
            self.set(u, BLUE);
            self.clear(u, DIRTY);
            self.stats.stores += 1;
        }
        self.moves.push(Move::Delete(u));
        self.clear(u, RED);
        self.red_weight -= self.graph.weight(u);
        self.red_count -= 1;
        self.stats.evictions += 1;
    }

    /// Audit one eviction: no other unpinned resident may have a strictly
    /// larger live key.  In particular a value needed *within* the window
    /// is never evicted while a beyond-window or dead resident exists.
    fn audit_eviction(&mut self, victim: NodeId, victim_key: u64, t: usize) {
        for w in self.graph.nodes() {
            if w != victim
                && self.has(w, RED)
                && !self.has(w, PINNED)
                && self.key(w, t) > victim_key
            {
                self.stats.audit_violations += 1;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, CdagBuilder};

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.node(16, "a");
        let bb = b.node(16, "b");
        let c = b.node(32, "c");
        let d = b.node(32, "d");
        let e = b.node(16, "e");
        b.edge(a, c);
        b.edge(bb, c);
        b.edge(bb, d);
        b.edge(c, e);
        b.edge(d, e);
        b.build().unwrap()
    }

    /// A long chain of independent 2-input adds feeding one final reduce,
    /// forcing evictions at tight budgets.
    fn wide_then_reduce() -> Cdag {
        let mut b = CdagBuilder::new();
        let mut mids = Vec::new();
        for i in 0..8 {
            let x = b.node(8, format!("x{i}"));
            let y = b.node(8, format!("y{i}"));
            let m = b.node(8, format!("m{i}"));
            b.edge(x, m);
            b.edge(y, m);
            mids.push(m);
        }
        let z = b.node(8, "z");
        for m in mids {
            b.edge(m, z);
        }
        b.build().unwrap()
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let g = diamond();
        let minb = min_feasible_budget(&g);
        assert!(window_schedule(&g, minb - 1).is_none());
        assert!(window_schedule(&g, minb).is_some());
    }

    #[test]
    fn schedules_validate_across_budgets() {
        for g in [diamond(), wide_then_reduce()] {
            let minb = min_feasible_budget(&g);
            for budget in [minb, minb + 8, g.total_weight()] {
                let s = window_schedule(&g, budget).expect("feasible");
                let stats = validate_schedule(&g, budget, &s).expect("valid");
                assert_eq!(stats.cost, s.cost(&g));
                assert!(stats.peak_red_weight <= budget);
            }
        }
    }

    #[test]
    fn ample_budget_needs_no_evictions() {
        let g = wide_then_reduce();
        let (s, stats) =
            window_schedule_with(&g, g.total_weight(), &WindowConfig::default()).unwrap();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.computes, 9);
        validate_schedule(&g, g.total_weight(), &s).expect("valid");
    }

    #[test]
    fn belady_never_prefers_an_in_window_victim() {
        // The unit-level invariant from the issue: with audit on, every
        // eviction must pick a maximal-next-use resident, so a value needed
        // within the window is never evicted while a further-out (or dead)
        // alternative exists.
        let cfg = WindowConfig {
            window: 4,
            audit: true,
        };
        for g in [diamond(), wide_then_reduce()] {
            let minb = min_feasible_budget(&g);
            for budget in [minb, minb + 8, minb + 16] {
                let (s, stats) = window_schedule_with(&g, budget, &cfg).expect("feasible");
                assert_eq!(
                    stats.audit_violations, 0,
                    "eviction passed over a further-next-use victim"
                );
                validate_schedule(&g, budget, &s).expect("valid");
            }
        }
    }

    #[test]
    fn tiny_window_still_validates() {
        let g = wide_then_reduce();
        let minb = min_feasible_budget(&g);
        let cfg = WindowConfig {
            window: 1,
            audit: true,
        };
        let (s, stats) = window_schedule_with(&g, minb, &cfg).expect("feasible");
        assert_eq!(stats.audit_violations, 0);
        validate_schedule(&g, minb, &s).expect("valid");
    }
}
