//! Layered slab partitioning with reload-aware boundary selection.
//!
//! The topological order is cut into contiguous **slabs** whose working set
//! — slab members plus every external operand they consume — fits the
//! weighted budget.  Each slab is then emitted as four phases: load all
//! external inputs (blue by construction: sources, or values stored when an
//! earlier slab's boundary was crossed), compute the members in topological
//! order, store every value that crosses the boundary forward (plus dirty
//! sinks), and delete the whole resident set.
//!
//! Greedy growth alone would always cut at the first position that
//! overflows; that can land the boundary in the middle of a dense
//! reconvergent region and force heavy store-and-reload traffic.  Instead,
//! when growth stalls the partitioner looks back over the trailing
//! [`SlabConfig::lookback`] admitted positions and commits the cut that
//! minimizes the weight of values alive across it (the "New Tools for Peak
//! Memory Scheduling" divide-and-conquer intuition, applied to a streaming
//! single pass).  Each node is scanned at most `lookback + 2` times, so the
//! partitioner stays O(lookback · V + E).

use pebblyn_core::{min_feasible_budget, Cdag, Move, MoveStream, NodeId, Schedule, Weight};
use pebblyn_telemetry::{self as telemetry, Counter};

/// Default number of trailing cut candidates examined per boundary.
pub const DEFAULT_LOOKBACK: usize = 8;

/// Tuning knobs for [`slab_schedule_with`].
#[derive(Debug, Clone)]
pub struct SlabConfig {
    /// How many trailing admitted positions compete for each cut; `1`
    /// degenerates to plain greedy growth (always cut at the overflow).
    pub lookback: usize,
}

impl Default for SlabConfig {
    fn default() -> Self {
        Self {
            lookback: DEFAULT_LOOKBACK,
        }
    }
}

/// Counters reported alongside a schedule by [`slab_schedule_with`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Number of slabs emitted.
    pub slabs: u64,
    /// Boundaries committed between slabs (`slabs - 1`).
    pub cuts: u64,
    /// Load moves emitted.
    pub loads: u64,
    /// Store moves emitted.
    pub stores: u64,
    /// Peak resident red weight across all slabs, in bits.
    pub peak_red: Weight,
}

/// Schedule `graph` under `budget` with the default lookback.
///
/// Returns `None` exactly when Prop 2.3 says no schedule exists
/// (`budget < min_feasible_budget`).
pub fn slab_schedule(graph: &Cdag, budget: Weight) -> Option<Schedule> {
    slab_schedule_with(graph, budget, &SlabConfig::default()).map(|(s, _)| s)
}

/// Schedule `graph` under `budget` with explicit [`SlabConfig`], returning
/// the schedule together with [`SlabStats`].
pub fn slab_schedule_with(
    graph: &Cdag,
    budget: Weight,
    cfg: &SlabConfig,
) -> Option<(Schedule, SlabStats)> {
    if budget < min_feasible_budget(graph) {
        return None;
    }
    let lookback = cfg.lookback.max(1);
    let n = graph.len();

    // Compute order: non-source nodes in topological order.  Sources are
    // never slab members; they enter as external inputs of whichever slabs
    // consume them.
    let order: Vec<NodeId> = graph
        .topo_order()
        .iter()
        .copied()
        .filter(|&v| !graph.is_source(v))
        .collect();
    let c = order.len();

    // Last consumption position of each value in the compute order
    // (u32::MAX when it is never consumed, i.e. a sink).  A forward sweep
    // over the same predecessor lists pass 1 streams suffices: positions
    // only increase, so the final write per operand is its last use — no
    // reverse-adjacency pass needed.
    let mut last_use = vec![u32::MAX; n];
    for (t, &v) in order.iter().enumerate() {
        for &p in graph.preds(v) {
            last_use[p.index()] = t as u32;
        }
    }
    let consumed_after = |u: NodeId, j: usize| -> bool {
        let last = last_use[u.index()];
        last != u32::MAX && last as usize > j
    };

    // -------- Pass 1: choose slab boundaries. --------
    // Both passes touch per-node membership and a per-slab dedup stamp for
    // every operand; packing them into one 8-byte record keeps that to a
    // single scattered cache line per edge (the pass is miss-bound at a
    // million nodes).  `slab` is the slab index of member v; `stamp` marks
    // v as already counted toward one slab's external inputs — pass 1
    // stamps with the slab index, pass 2 with `slabs + index`, so the one
    // array serves both without clearing.
    #[derive(Clone, Copy)]
    struct SlabRec {
        slab: u32,
        stamp: u32,
    }
    let mut rec = vec![
        SlabRec {
            slab: u32::MAX,
            stamp: u32::MAX
        };
        n
    ];
    let mut bounds: Vec<usize> = Vec::new(); // exclusive end of each slab
    let mut start = 0usize;
    let mut slab_idx = 0u32;
    let mut stats = SlabStats::default();

    while start < c {
        let mut slab_w: Weight = 0;
        let mut in_w: Weight = 0;
        let mut i = start;
        while i < c {
            let v = order[i];
            let mut extra: Weight = 0;
            for &p in graph.preds(v) {
                let r = rec[p.index()];
                if r.slab != slab_idx && r.stamp != slab_idx {
                    extra += graph.weight(p);
                }
            }
            if slab_w + in_w + graph.weight(v) + extra > budget {
                break;
            }
            rec[v.index()].slab = slab_idx;
            slab_w += graph.weight(v);
            for &p in graph.preds(v) {
                let r = &mut rec[p.index()];
                if r.slab != slab_idx && r.stamp != slab_idx {
                    r.stamp = slab_idx;
                    in_w += graph.weight(p);
                }
            }
            i += 1;
        }
        debug_assert!(i > start, "budget >= min_feasible admits any single node");

        let end = if i == c {
            c // final slab: no boundary to pick
        } else {
            // Reload-aware cut: among the trailing `lookback` admitted
            // positions, commit the boundary with the least crossing
            // weight (members alive past it); ties prefer the later cut.
            let lo = (i - start).min(lookback); // candidates: i-lo ..= i-1
            let mut best_j = i - 1;
            let mut best_w = Weight::MAX;
            for j in (i - lo..i).rev() {
                let crossing: Weight = order[start..=j]
                    .iter()
                    .filter(|&&u| consumed_after(u, j))
                    .map(|&u| graph.weight(u))
                    .sum();
                if crossing < best_w {
                    best_w = crossing;
                    best_j = j;
                }
            }
            // Defer everything after the committed cut to the next slab.
            for &v in &order[best_j + 1..i] {
                rec[v.index()].slab = u32::MAX;
            }
            stats.cuts += 1;
            best_j + 1
        };
        bounds.push(end);
        stats.slabs += 1;
        start = end;
        slab_idx += 1;
    }

    // -------- Pass 2: emit the phases. --------
    // Straight into the struct-of-arrays stream, reserved at the provable
    // upper bound (computes + stores ≤ 2·members, loads ≤ edges, deletes =
    // loads + computes) so the columns never regrow mid-pass.
    let mut moves = MoveStream::with_capacity(3 * c + 2 * graph.edge_count());
    // Pass-2 dedup stamps live above every pass-1 stamp value.
    let stamp_base = bounds.len() as u32;
    let mut inputs: Vec<NodeId> = Vec::new();
    let mut start = 0usize;
    let mut computes = 0u64;
    for (s, &end) in bounds.iter().enumerate() {
        let s = s as u32;
        let mut resident: Weight = 0;
        // Load external inputs (deduped per slab).
        inputs.clear();
        for &v in &order[start..end] {
            for &p in graph.preds(v) {
                let r = &mut rec[p.index()];
                if r.slab != s && r.stamp != stamp_base + s {
                    r.stamp = stamp_base + s;
                    inputs.push(p);
                    moves.push(Move::Load(p));
                    resident += graph.weight(p);
                    stats.loads += 1;
                }
            }
        }
        // Compute members in topological order.
        for &v in &order[start..end] {
            moves.push(Move::Compute(v));
            resident += graph.weight(v);
            computes += 1;
        }
        debug_assert!(resident <= budget, "slab working set exceeds budget");
        stats.peak_red = stats.peak_red.max(resident);
        // Store values crossing the boundary forward, and sinks.
        for &v in &order[start..end] {
            if last_use[v.index()] == u32::MAX || last_use[v.index()] as usize >= end {
                moves.push(Move::Store(v));
                stats.stores += 1;
            }
        }
        // Flush the resident set.
        for &p in &inputs {
            moves.push(Move::Delete(p));
        }
        for &v in &order[start..end] {
            moves.push(Move::Delete(v));
        }
        start = end;
    }

    telemetry::add(Counter::StreamNodes, computes);
    telemetry::add(Counter::SlabCuts, stats.cuts);
    Some((Schedule::from_stream(moves), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{validate_schedule, CdagBuilder};

    fn chain(len: usize) -> Cdag {
        let mut b = CdagBuilder::new();
        let mut prev = b.node(8, "s");
        for i in 1..len {
            let v = b.node(8, format!("c{i}"));
            b.edge(prev, v);
            prev = v;
        }
        b.build().unwrap()
    }

    fn diamond() -> Cdag {
        let mut b = CdagBuilder::new();
        let a = b.node(16, "a");
        let bb = b.node(16, "b");
        let c = b.node(32, "c");
        let d = b.node(32, "d");
        let e = b.node(16, "e");
        b.edge(a, c);
        b.edge(bb, c);
        b.edge(bb, d);
        b.edge(c, e);
        b.edge(d, e);
        b.build().unwrap()
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let g = diamond();
        let minb = min_feasible_budget(&g);
        assert!(slab_schedule(&g, minb - 1).is_none());
        assert!(slab_schedule(&g, minb).is_some());
    }

    #[test]
    fn schedules_validate_across_budgets() {
        for g in [diamond(), chain(64)] {
            let minb = min_feasible_budget(&g);
            for budget in [minb, minb + 16, g.total_weight()] {
                let (s, stats) = slab_schedule_with(&g, budget, &SlabConfig::default()).unwrap();
                let check = validate_schedule(&g, budget, &s).expect("valid");
                assert_eq!(check.cost, s.cost(&g));
                assert!(check.peak_red_weight <= budget);
                assert_eq!(check.peak_red_weight, stats.peak_red);
            }
        }
    }

    #[test]
    fn tight_budget_cuts_a_chain_into_many_slabs() {
        let g = chain(64);
        let minb = min_feasible_budget(&g); // 16: one node + one operand
        let (_, stats) = slab_schedule_with(&g, minb, &SlabConfig::default()).unwrap();
        assert!(stats.slabs > 1, "tight budget must partition");
        assert_eq!(stats.cuts, stats.slabs - 1);
    }

    #[test]
    fn ample_budget_is_one_slab() {
        let g = diamond();
        let (s, stats) = slab_schedule_with(&g, g.total_weight(), &SlabConfig::default()).unwrap();
        assert_eq!(stats.slabs, 1);
        assert_eq!(stats.cuts, 0);
        validate_schedule(&g, g.total_weight(), &s).expect("valid");
    }

    #[test]
    fn lookback_never_hurts_boundary_weight() {
        // With lookback 1 the cut lands wherever growth stalls; wider
        // lookback may only reduce total I/O on this reconvergent shape.
        let mut b = CdagBuilder::new();
        let mut heads = Vec::new();
        for i in 0..6 {
            let x = b.node(8, format!("x{i}"));
            let m = b.node(8, format!("m{i}"));
            b.edge(x, m);
            heads.push(m);
        }
        let mut prev: Option<pebblyn_core::NodeId> = None;
        for (i, &m) in heads.iter().enumerate() {
            let r = b.node(8, format!("r{i}"));
            b.edge(m, r);
            if let Some(p) = prev {
                b.edge(p, r);
            }
            prev = Some(r);
        }
        let g = b.build().unwrap();
        let minb = min_feasible_budget(&g);
        let greedy = slab_schedule_with(&g, minb + 8, &SlabConfig { lookback: 1 })
            .unwrap()
            .0
            .cost(&g);
        let aware = slab_schedule_with(&g, minb + 8, &SlabConfig::default())
            .unwrap()
            .0
            .cost(&g);
        assert!(aware <= greedy, "lookback {aware} vs greedy {greedy}");
    }
}
