//! End-to-end CLI tests driving the real binary.

use std::process::Command;

fn pebblyn(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pebblyn"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Like [`pebblyn`] but surfaces the exact exit code for error-path tests.
fn pebblyn_code(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pebblyn"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn schedule_dwt_reports_table1_row() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "256",
        "--d",
        "8",
        "--budget",
        "10w",
    ]);
    assert!(ok);
    assert!(stdout.contains("cost:        8192 bits (lower bound 8192)"));
    assert!(stdout.contains("peak red:    160 bits"));
}

#[test]
fn schedule_conv_stream() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "conv",
        "--n",
        "64",
        "--k",
        "8",
        "--budget",
        "12w",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sliding-window streaming"));
    assert!(stdout.contains("lower bound"));
}

#[test]
fn min_memory_matches_paper() {
    let (ok, stdout, _) = pebblyn(&["min-memory", "--workload", "mvm", "--weights", "da"]);
    assert!(ok);
    assert!(stdout.contains("126 words"), "{stdout}");
    assert!(stdout.contains("2048 bits"));
}

#[test]
fn sweep_emits_csv() {
    let (ok, stdout, _) = pebblyn(&[
        "sweep",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "4",
        "--points",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.starts_with("budget_bits,cost_bits"));
    assert_eq!(stdout.lines().count(), 6);
}

#[test]
fn schedule_out_round_trips() {
    let dir = std::env::temp_dir().join(format!("pebblyn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sched.txt");
    let (ok, _, _) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(ok);
    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = pebblyn::core::io::from_text(&text).unwrap();
    assert!(parsed.len() > 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimize_flag_runs_peephole() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--optimize",
    ]);
    assert!(ok);
    assert!(stdout.contains("peephole:"));
}

#[test]
fn dot_output_is_graphviz() {
    let (ok, stdout, _) = pebblyn(&["dot", "--workload", "conv", "--n", "6", "--k", "3"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("->"));
}

#[test]
fn infeasible_budget_is_a_clean_error() {
    let (ok, _, stderr) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("minimum feasible"));
}

#[test]
fn unknown_args_show_usage() {
    let (ok, _, stderr) = pebblyn(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn trace_renders_sparkline() {
    let (ok, stdout, _) = pebblyn(&[
        "trace",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "4",
        "--budget",
        "7w",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("peak 96 bits"));
    assert!(stdout.contains('█'));
}

#[test]
fn dwt2d_belady_schedules() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt2d",
        "--n",
        "8",
        "--levels",
        "2",
        "--budget",
        "50w",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Belady-eviction greedy"));
    assert!(stdout.contains("lower bound"));
}

#[test]
fn banded_workload_streams() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "banded",
        "--n",
        "24",
        "--bandwidth",
        "3",
        "--budget",
        "40w",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("banded streaming"));
    assert!(stdout.contains("lower bound"));
}

#[test]
fn exit_codes_distinguish_usage_from_runtime_errors() {
    let usage = Command::new(env!("CARGO_BIN_EXE_pebblyn"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(usage.status.code(), Some(2));

    let runtime = Command::new(env!("CARGO_BIN_EXE_pebblyn"))
        .args([
            "schedule",
            "--workload",
            "dwt",
            "--n",
            "8",
            "--d",
            "3",
            "--budget",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(runtime.status.code(), Some(1));
}

#[test]
fn malformed_args_exit_2_with_usage() {
    // Every flavor of malformed invocation is a `CliError::Usage`: exit
    // code 2, the offending detail on stderr, and the usage text printed.
    let cases: [&[&str]; 6] = [
        &[], // no command at all
        &[
            "schedule",
            "--workload",
            "dwt",
            "--n",
            "eight",
            "--budget",
            "1",
        ], // non-numeric --n
        &[
            "schedule",
            "--workload",
            "dwt",
            "--n",
            "8",
            "--d",
            "3",
            "--budget",
            "12q",
        ], // bad budget suffix
        &["schedule", "--n", "8", "--budget", "100"], // missing --workload
        &["schedule", "--workload", "teapot", "--budget", "100"], // unknown workload
        &["synth"], // missing --bits
    ];
    for args in cases {
        let (code, stderr) = pebblyn_code(args);
        assert_eq!(code, Some(2), "{args:?} should be a usage error: {stderr}");
        assert!(
            stderr.contains("USAGE"),
            "{args:?} must print usage: {stderr}"
        );
    }
}

#[test]
fn runtime_errors_exit_1_without_usage() {
    // Infeasible budget: a well-formed invocation that fails at run time
    // must exit 1 and must NOT dump the usage text over the real message.
    let (code, stderr) = pebblyn_code(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "1",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("minimum feasible"), "{stderr}");
    assert!(
        !stderr.contains("USAGE"),
        "runtime error drowned in usage text: {stderr}"
    );

    // Unwritable --out path: an I/O failure is also a runtime error.
    let (code, stderr) = pebblyn_code(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--out",
        "/nonexistent-dir/sub/sched.txt",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn unknown_scheduler_exits_2_listing_valid_names() {
    // Satellite of the service PR: a typo'd scheduler name is an
    // *invocation* error (exit 2 + usage), not a runtime failure, and the
    // message lists every registry name so the fix is copy-pasteable.
    let (code, stderr) = pebblyn_code(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--scheduler",
        "warp-drive",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("valid names"), "{stderr}");
    for name in ["dwt-opt", "mvm-tiling", "greedy-belady", "naive"] {
        assert!(stderr.contains(name), "must list {name}: {stderr}");
    }
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn registry_names_are_accepted_directly() {
    let (ok, stdout, _) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--scheduler",
        "dwt-opt",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("optimal DP (Algorithm 1)"), "{stdout}");
}

#[test]
fn serve_answers_framed_requests_over_stdio() {
    use pebblyn::prelude::{ScheduleRequest, WeightScheme, Workload};
    use pebblyn::service::wire::{self, Frame};
    use pebblyn::service::{GraphSpec, Outcome, Request};
    use std::io::{Read, Write};
    use std::process::Stdio;

    let request = |id| Request {
        id,
        ask: ScheduleRequest::new(
            GraphSpec::Workload {
                workload: Workload::Dwt { n: 16, d: 2 },
                scheme: WeightScheme::Equal(16),
            },
            256,
            "dwt-opt",
        ),
        no_cache: false,
    };
    let mut input = Vec::new();
    wire::write_frame(&mut input, &wire::encode_request(&request(1))).unwrap();
    wire::write_frame(&mut input, &wire::encode_request(&request(2))).unwrap();
    wire::write_frame(&mut input, &wire::encode_shutdown()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_pebblyn"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    child.stdin.take().unwrap().write_all(&input).unwrap();
    let mut output = Vec::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_end(&mut output)
        .unwrap();
    assert!(child.wait().unwrap().success());

    let mut r = &output[..];
    let mut frames = Vec::new();
    while let Some(payload) = wire::read_frame(&mut r).unwrap() {
        frames.push(wire::decode_payload(&payload).unwrap());
    }
    assert_eq!(frames.len(), 3, "two answers + shutdown ack");
    let costs: Vec<_> = frames[..2]
        .iter()
        .map(|f| {
            let Frame::Response(resp) = f else {
                panic!("expected response, got {f:?}")
            };
            let Outcome::Ok { cost, .. } = &resp.outcome else {
                panic!("expected ok outcome: {resp:?}")
            };
            *cost
        })
        .collect();
    assert_eq!(costs[0], costs[1], "cache hit must not change the answer");
    assert!(matches!(frames[2], Frame::Shutdown));
}

#[test]
fn mismatched_scheduler_is_rejected() {
    let (ok, _, stderr) = pebblyn(&[
        "schedule",
        "--workload",
        "mvm",
        "--scheduler",
        "opt",
        "--budget",
        "100w",
    ]);
    assert!(!ok);
    assert!(stderr.contains("DWT-specific"), "{stderr}");
}

#[test]
fn exact_solves_small_dwt_optimally() {
    let (ok, stdout, _) = pebblyn(&[
        "exact",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("optimum:     256 bits"), "{stdout}");
    assert!(stdout.contains("expanded:"), "{stdout}");
    assert!(stdout.contains("re-expansions"), "{stdout}");
    assert!(stdout.contains("heuristic landmark-pdb"), "{stdout}");
    assert!(stdout.contains("wl orbits on"), "{stdout}");
    assert!(stdout.contains("partial expansion on"), "{stdout}");
}

#[test]
fn exact_ablation_flags_change_the_report_not_the_optimum() {
    // A smaller instance than the default-path test: the fully ablated
    // solver is the unpruned Dijkstra and blows the state cap on graphs
    // the guided search dispatches instantly.
    let base = &[
        "exact",
        "--workload",
        "dwt",
        "--n",
        "4",
        "--d",
        "2",
        "--budget",
        "112",
    ];
    let mut ablated: Vec<&str> = base.to_vec();
    ablated.extend(["--heuristic", "none", "--no-dominance", "--no-tighten"]);
    let (ok, stdout, _) = pebblyn(&ablated);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("optimum:     128 bits"), "{stdout}");
    assert!(stdout.contains("heuristic none"), "{stdout}");
    assert!(stdout.contains("dominance off"), "{stdout}");
    assert!(stdout.contains("macro moves off"), "{stdout}");
}

#[test]
fn exact_rejects_too_wide_graphs_with_exit_1_naming_the_limit() {
    // DWT(256, 8) is a 766-node CDAG — far past the 256-node Words<4>
    // ceiling.  A well-formed invocation that the solver cannot represent
    // is a *runtime* error (exit 1, no usage text), and the message must
    // name the limit so the failure is actionable.
    let (code, stderr) = pebblyn_code(&[
        "exact",
        "--workload",
        "dwt",
        "--n",
        "256",
        "--d",
        "8",
        "--budget",
        "10w",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("766 nodes"), "{stderr}");
    assert!(stderr.contains("at most 256"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn exact_no_symmetry_flag_reports_but_keeps_the_optimum() {
    let base = [
        "exact",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
    ];
    let mut off: Vec<&str> = base.to_vec();
    off.push("--no-symmetry");
    let (ok, stdout, _) = pebblyn(&off);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("symmetry off"), "{stdout}");
    // --no-symmetry also suspends the WL lever (it rides on twin symmetry).
    assert!(stdout.contains("wl orbits off"), "{stdout}");
    assert!(stdout.contains("optimum:     256 bits"), "{stdout}");
}

#[test]
fn exact_new_lever_ablations_keep_the_optimum() {
    let base = [
        "exact",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
    ];
    for (extra, banner) in [
        (
            vec!["--no-partial-expansion"],
            vec!["partial expansion off"],
        ),
        (vec!["--wl-symmetry", "off"], vec!["wl orbits off"]),
        (
            vec!["--heuristic", "forced-reload"],
            vec!["heuristic forced-reload"],
        ),
        (
            vec!["--heuristic", "landmark-pdb", "--no-partial-expansion"],
            vec!["heuristic landmark-pdb", "partial expansion off"],
        ),
    ] {
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(&extra);
        let (ok, stdout, _) = pebblyn(&argv);
        assert!(ok, "{extra:?}: {stdout}");
        assert!(
            stdout.contains("optimum:     256 bits"),
            "{extra:?}: {stdout}"
        );
        for b in banner {
            assert!(stdout.contains(b), "{extra:?}: {stdout}");
        }
    }
}

#[test]
fn exact_wl_symmetry_conflicts_are_usage_errors() {
    let base = [
        "exact",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
    ];
    // Asking for the WL lever while turning symmetry off is contradictory.
    let mut conflict: Vec<&str> = base.to_vec();
    conflict.extend(["--wl-symmetry", "on", "--no-symmetry"]);
    let (code, stderr) = pebblyn_code(&conflict);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--wl-symmetry on conflicts"), "{stderr}");
    // A bogus value is a usage error too.
    let mut bad: Vec<&str> = base.to_vec();
    bad.extend(["--wl-symmetry", "maybe"]);
    let (code, stderr) = pebblyn_code(&bad);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown --wl-symmetry"), "{stderr}");
    // Explicitly off together with --no-symmetry is redundant but coherent.
    let mut off: Vec<&str> = base.to_vec();
    off.extend(["--wl-symmetry", "off", "--no-symmetry"]);
    let (ok, stdout, _) = pebblyn(&off);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("optimum:     256 bits"), "{stdout}");
}

#[test]
fn exact_bad_flags_are_usage_errors() {
    // Matching the PR-1 convention: malformed invocations exit 2 with the
    // usage text; well-formed ones that fail at run time exit 1 without it.
    let bad: [&[&str]; 3] = [
        &[
            "exact",
            "--workload",
            "dwt",
            "--n",
            "8",
            "--d",
            "3",
            "--budget",
            "200",
            "--heuristic",
            "astar",
        ],
        &["exact", "--workload", "dwt", "--n", "8", "--d", "3"], // missing --budget
        &[
            "exact",
            "--workload",
            "dwt",
            "--n",
            "8",
            "--d",
            "3",
            "--budget",
            "200",
            "--max-states",
            "many",
        ],
    ];
    for args in bad {
        let (code, stderr) = pebblyn_code(args);
        assert_eq!(code, Some(2), "{args:?}: {stderr}");
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
    }

    // Hitting the state cap is a runtime error, not a usage error.
    let (code, stderr) = pebblyn_code(&[
        "exact",
        "--workload",
        "dwt",
        "--n",
        "8",
        "--d",
        "3",
        "--budget",
        "200",
        "--max-states",
        "1",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("state cap"), "{stderr}");
    assert!(!stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn synth_prints_macro() {
    let (ok, stdout, _) = pebblyn(&["synth", "--bits", "256"]);
    assert!(ok);
    assert!(stdout.contains("area:"));
    assert!(stdout.contains("leakage:"));
}

#[test]
fn schedule_multiprocessor_reports_makespan() {
    let (ok, stdout, stderr) = pebblyn(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "2",
        "--budget",
        "10w",
        "--procs",
        "2",
        "--scheduler",
        "partition-belady",
    ]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("2 processors x 160 bits"), "{stdout}");
    assert!(stdout.contains("makespan:"), "{stdout}");
    assert!(stdout.contains("total I/O:"), "{stdout}");
}

#[test]
fn sweep_multiprocessor_emits_makespan_column() {
    let (ok, stdout, stderr) = pebblyn(&[
        "sweep",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "2",
        "--points",
        "4",
        "--procs",
        "2",
        "--scheduler",
        "comm-list",
    ]);
    assert!(ok, "{stdout}{stderr}");
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next(),
        Some("budget_bits,cost_bits,makespan_bits,comm_bits")
    );
    assert!(lines.clone().count() >= 1, "{stdout}");
    for line in lines {
        assert_eq!(line.split(',').count(), 4, "{line}");
    }
}

#[test]
fn multiprocessor_flag_misuse_exits_2() {
    let (code, stderr) = pebblyn_code(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "2",
        "--budget",
        "10w",
        "--procs",
        "3",
        "--proc-budgets",
        "64,64",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("--proc-budgets"), "{stderr}");

    let (code, stderr) = pebblyn_code(&[
        "schedule",
        "--workload",
        "dwt",
        "--n",
        "16",
        "--d",
        "2",
        "--budget",
        "10w",
        "--procs",
        "2",
        "--scheduler",
        "dwt-opt",
    ]);
    assert_eq!(code, Some(1), "single-processor-only scheduler: {stderr}");
    assert!(stderr.contains("single-processor"), "{stderr}");
}
