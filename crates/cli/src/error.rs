//! Typed CLI errors with stable exit codes.
//!
//! Every failure the driver can hit is one [`CliError`] variant; the
//! binary maps it to a process exit code through [`CliError::exit_code`]
//! (2 for invocation errors, which also print the usage text; 1 for
//! everything else).  Keeping the mapping here — instead of scattering
//! `Result<_, String>` through the commands — makes exit behavior unit
//! testable without spawning the binary.

use pebblyn::core::ValidityError;
use pebblyn::graphs::ParamError;
use pebblyn::prelude::Weight;
use std::fmt;

/// Anything the CLI can fail with.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (unknown command, malformed flag, or `--help`).
    /// The driver prints the usage text and exits 2.
    Usage(String),
    /// The workload parameters do not name a constructible graph.
    Graph(ParamError),
    /// A generated schedule failed validation — a scheduler bug.
    Validity(ValidityError),
    /// A generated multiprocessor schedule failed validation — likewise a
    /// scheduler bug.
    MultiValidity(pebblyn::core::MultiValidityError),
    /// The scheduler cannot fit the workload within the budget.
    Infeasible {
        /// Human-readable scheduler name.
        scheduler: &'static str,
        /// The requested budget in bits.
        budget: Weight,
        /// The smallest feasible budget, when the command computed it.
        min_feasible: Option<Weight>,
    },
    /// The scheduler does not apply to the workload family.
    Unsupported(&'static str),
    /// A minimum-memory search never reached its target.
    Target(&'static str),
    /// The exact search failed: expanded-state cap hit, or the graph is
    /// wider than the widest supported state mask.
    Search(pebblyn::prelude::ExactError),
    /// A telemetry JSONL file failed schema validation.
    Telemetry(String),
    /// Writing an output file failed.
    Io {
        /// Destination path.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
}

impl CliError {
    /// The process exit code for this error: 2 for usage errors
    /// (accompanied by the usage text), 1 otherwise.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            _ => 1,
        }
    }

    /// Map a typed [`ScheduleError`] to the CLI surface: `Unsupported` and
    /// `InfeasibleBudget` stay runtime errors (exit 1) with the CLI's
    /// established messages; `ValidationFailed` surfaces as the scheduler
    /// bug it is.
    pub fn from_schedule_error(
        e: pebblyn::prelude::ScheduleError,
        scheduler: &'static str,
        budget: Weight,
    ) -> Self {
        use pebblyn::prelude::ScheduleError;
        match e {
            ScheduleError::Unsupported => {
                CliError::Unsupported("scheduler does not support this workload")
            }
            ScheduleError::InfeasibleBudget { min_feasible } => CliError::Infeasible {
                scheduler,
                budget,
                min_feasible,
            },
            ScheduleError::ValidationFailed(v) => CliError::Validity(v),
            ScheduleError::MultiValidationFailed(v) => CliError::MultiValidity(v),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Unsupported(m) | CliError::Target(m) => write!(f, "{m}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Validity(e) => write!(f, "generated schedule failed validation: {e}"),
            CliError::MultiValidity(e) => {
                write!(
                    f,
                    "generated multiprocessor schedule failed validation: {e}"
                )
            }
            CliError::Infeasible {
                scheduler,
                budget,
                min_feasible: Some(m),
            } => write!(
                f,
                "no {scheduler} schedule exists at {budget} bits (minimum feasible: {m})"
            ),
            CliError::Infeasible {
                scheduler,
                budget,
                min_feasible: None,
            } => write!(f, "no {scheduler} schedule at {budget} bits"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Search(e @ pebblyn::prelude::ExactError::StateLimit(_)) => {
                write!(f, "{e}; raise --max-states to keep searching")
            }
            CliError::Search(e) => write!(f, "{e}"),
            CliError::Telemetry(m) => write!(f, "telemetry file invalid: {m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Graph(e) => Some(e),
            CliError::Validity(e) => Some(e),
            CliError::MultiValidity(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<pebblyn::prelude::ExactError> for CliError {
    fn from(e: pebblyn::prelude::ExactError) -> Self {
        CliError::Search(e)
    }
}

impl From<pebblyn::prelude::StateLimitExceeded> for CliError {
    fn from(e: pebblyn::prelude::StateLimitExceeded) -> Self {
        CliError::Search(e.into())
    }
}

impl From<ParamError> for CliError {
    fn from(e: ParamError) -> Self {
        CliError::Graph(e)
    }
}

impl From<ValidityError> for CliError {
    fn from(e: ValidityError) -> Self {
        CliError::Validity(e)
    }
}

impl From<pebblyn::core::MultiValidityError> for CliError {
    fn from(e: pebblyn::core::MultiValidityError) -> Self {
        CliError::MultiValidity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_everything_else_1() {
        assert_eq!(CliError::Usage("missing command".into()).exit_code(), 2);
        assert_eq!(CliError::Target("never reaches").exit_code(), 1);
        assert_eq!(
            CliError::Infeasible {
                scheduler: "x",
                budget: 1,
                min_feasible: None
            }
            .exit_code(),
            1
        );
        assert_eq!(
            CliError::Io {
                path: "p".into(),
                source: std::io::Error::other("boom"),
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn infeasible_messages_match_the_original_cli() {
        let with_min = CliError::Infeasible {
            scheduler: "optimal DP (Algorithm 1)",
            budget: 16,
            min_feasible: Some(48),
        };
        assert_eq!(
            with_min.to_string(),
            "no optimal DP (Algorithm 1) schedule exists at 16 bits (minimum feasible: 48)"
        );
        let without = CliError::Infeasible {
            scheduler: "naive topological",
            budget: 16,
            min_feasible: None,
        };
        assert_eq!(
            without.to_string(),
            "no naive topological schedule at 16 bits"
        );
    }

    #[test]
    fn validation_failures_are_prefixed() {
        let g = pebblyn::graphs::testgraphs::diamond(pebblyn::prelude::WeightScheme::Equal(8));
        let bad = pebblyn::prelude::Schedule::from_moves(vec![pebblyn::prelude::Move::Compute(
            pebblyn::prelude::NodeId(3),
        )]);
        let err = pebblyn::prelude::validate_schedule(&g, 1024, &bad).unwrap_err();
        let cli: CliError = err.into();
        assert!(cli
            .to_string()
            .starts_with("generated schedule failed validation: "));
    }
}
