//! Command implementations.
//!
//! Every command builds the shared workload-erased
//! [`AnyGraph`] and dispatches scheduling through the unified
//! [`Scheduler`] trait (`pebblyn-schedulers::api`); the `sweep` and
//! `min-memory` commands are thin declarations over the
//! `pebblyn-engine` plans, sharing its process-wide memo.

use crate::args::{Command, Scheduler as SchedulerArg};
use crate::error::CliError;
use pebblyn::prelude::*;

/// The trait object a `--scheduler` flag names.
fn resolve(s: SchedulerArg) -> &'static dyn Scheduler {
    match s {
        SchedulerArg::Optimal => &api::DwtOpt,
        SchedulerArg::LayerByLayer => &api::LayerByLayer,
        SchedulerArg::Naive => &api::Naive,
        SchedulerArg::Tiling => &api::MvmTiling,
        SchedulerArg::Stream => &api::ConvStream,
        SchedulerArg::BandedStream => &api::BandedStream,
        SchedulerArg::Belady => &api::GreedyBelady,
    }
}

/// Resolve and check applicability, with the workload-specific hint.
fn ensure_supported(g: &AnyGraph, s: SchedulerArg) -> Result<&'static dyn Scheduler, CliError> {
    let sched = resolve(s);
    if sched.supports(g) {
        return Ok(sched);
    }
    Err(CliError::Unsupported(match s {
        SchedulerArg::Optimal => "the optimal DP is DWT-specific; pick the workload's scheduler",
        SchedulerArg::Tiling => "tiling is MVM-specific; pick the workload's scheduler",
        SchedulerArg::Stream => "streaming is Conv-specific; pick the workload's scheduler",
        SchedulerArg::BandedStream => {
            "banded streaming is BandedMVM-specific; pick the workload's scheduler"
        }
        _ => "scheduler does not support this workload",
    }))
}

fn scheduler_name(s: SchedulerArg) -> &'static str {
    match s {
        SchedulerArg::Optimal => "optimal DP (Algorithm 1)",
        SchedulerArg::LayerByLayer => "layer-by-layer baseline",
        SchedulerArg::Naive => "naive topological",
        SchedulerArg::Tiling => "tiling (Section 4.3)",
        SchedulerArg::Stream => "sliding-window streaming",
        SchedulerArg::BandedStream => "banded streaming",
        SchedulerArg::Belady => "Belady-eviction greedy",
    }
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Schedule {
            workload,
            scheme,
            scheduler,
            budget,
            emit,
            optimize,
            out,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            let cdag = g.cdag();
            println!("{} under {scheme}, budget {budget} bits", g.name());
            let mut schedule = match sched.schedule(&g, budget) {
                Ok(s) => s,
                Err(ScheduleError::InfeasibleBudget { min_feasible }) => {
                    return Err(CliError::Infeasible {
                        scheduler: scheduler_name(scheduler),
                        budget,
                        // Always offer the Prop. 2.3 minimum, as this
                        // command historically did.
                        min_feasible: min_feasible.or(Some(min_feasible_budget(cdag))),
                    });
                }
                Err(e) => {
                    return Err(CliError::from_schedule_error(
                        e,
                        scheduler_name(scheduler),
                        budget,
                    ))
                }
            };
            if optimize {
                let (optimized, pstats) = peephole(cdag, &schedule);
                println!("peephole:    removed {} moves", pstats.removed());
                schedule = optimized;
            }
            let stats = validate_schedule(cdag, budget, &schedule)?;
            println!("scheduler:   {}", scheduler_name(scheduler));
            println!("moves:       {}", stats.moves);
            println!(
                "cost:        {} bits (lower bound {})",
                stats.cost,
                algorithmic_lower_bound(cdag)
            );
            println!("peak red:    {} bits", stats.peak_red_weight);
            if emit {
                println!("\n{schedule}");
            }
            if let Some(path) = out {
                std::fs::write(&path, pebblyn::core::io::to_text(&schedule)).map_err(|source| {
                    CliError::Io {
                        path: path.clone(),
                        source,
                    }
                })?;
                println!("schedule written to {path}");
            }
            Ok(())
        }
        Command::MinMemory {
            workload,
            scheme,
            scheduler,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let name = g.name();
            let res = MinMemoryPlan::new("cli min-memory")
                .to_lower_bound(Series::scheduler(resolve(scheduler)))
                .workload(g)
                .run_with(Memo::global());
            let bits = res.rows[0].min_bits.ok_or(CliError::Target(
                "scheduler never reaches the algorithmic lower bound",
            ))?;
            let word = scheme.word_bits();
            println!("{name} under {scheme}, {}", scheduler_name(scheduler));
            println!("minimum fast memory: {} words = {bits} bits", bits / word);
            println!("power-of-two:        {} bits", round_pow2(bits));
            Ok(())
        }
        Command::Sweep {
            workload,
            scheme,
            scheduler,
            points,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            let res = SweepPlan::new(
                "cli sweep",
                BudgetSpec::LogLattice {
                    points,
                    word: scheme.word_bits(),
                },
            )
            .workload(g)
            .series(Series::scheduler(sched))
            .run_with(Memo::global());
            println!("budget_bits,cost_bits");
            for row in &res.rows {
                match row.cost {
                    Some(c) => println!("{},{c}", row.budget),
                    None => println!("{},inf", row.budget),
                }
            }
            Ok(())
        }
        Command::Exact {
            workload,
            scheme,
            budget,
            heuristic,
            dominance,
            tighten,
            max_states,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let cdag = g.cdag();
            if cdag.len() > 64 {
                return Err(CliError::Unsupported(
                    "the exact solver handles at most 64 nodes; shrink the workload",
                ));
            }
            let solver = ExactSolver::with_max_states(max_states)
                .with_heuristic(heuristic)
                .with_dominance(dominance)
                .with_tighten(tighten);
            println!("{} under {scheme}, budget {budget} bits", g.name());
            println!(
                "solver:      A* · heuristic {} · dominance {} · macro moves {}",
                heuristic.name(),
                if dominance { "on" } else { "off" },
                if tighten { "on" } else { "off" },
            );
            let sol = solver.solve(cdag, budget)?;
            let st = sol.stats;
            let Some(cost) = sol.cost else {
                return Err(CliError::Infeasible {
                    scheduler: "exact A*",
                    budget,
                    min_feasible: Some(min_feasible_budget(cdag)),
                });
            };
            println!(
                "optimum:     {cost} bits (lower bound {}, root bound {})",
                algorithmic_lower_bound(cdag),
                st.root_bound
            );
            println!(
                "expanded:    {} states over {} batches ({} generated)",
                st.expanded, st.batches, st.generated
            );
            println!(
                "pruned:      {} dominated · {} re-reached ({} dominance entries)",
                st.dominated, st.deduped, st.dominance_entries
            );
            println!(
                "frontier:    {} open at exit · peak {}",
                st.frontier_left, st.peak_open
            );
            Ok(())
        }
        Command::Synth { bits, word } => {
            let m = SramConfig {
                capacity_bits: bits,
                word_bits: word,
            }
            .synthesize(&Process::default());
            println!(
                "capacity:    {} bits ({} words)",
                m.capacity_bits,
                m.words()
            );
            println!(
                "array:       {} rows x {} cols (mux {})",
                m.rows, m.cols, m.mux
            );
            println!("area:        {:.0} λ²", m.area_l2);
            println!("leakage:     {:.2} mW", m.leakage_mw);
            println!("read power:  {:.2} mW", m.read_power_mw);
            println!("write power: {:.2} mW", m.write_power_mw);
            println!("read perf:   {:.1} GB/s", m.read_gbps);
            println!("write perf:  {:.1} GB/s", m.write_gbps);
            Ok(())
        }
        Command::Dot { workload, scheme } => {
            let g = AnyGraph::build(workload, scheme)?;
            print!("{}", g.cdag().to_dot());
            Ok(())
        }
        Command::Trace {
            workload,
            scheme,
            scheduler,
            budget,
        } => {
            use pebblyn::core::render_sparkline;
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            let cdag = g.cdag();
            let schedule = sched
                .schedule(&g, budget)
                .map_err(|e| CliError::from_schedule_error(e, scheduler_name(scheduler), budget))?;
            validate_schedule(cdag, budget, &schedule)?;
            let trace = occupancy_trace(cdag, &schedule);
            let s = summarize(&trace);
            println!("{} under {scheme}, {}", g.name(), scheduler_name(scheduler));
            println!(
                "occupancy over {} moves (budget {budget} bits):",
                trace.len()
            );
            println!("  {}", render_sparkline(&trace, 72));
            println!(
                "peak {} bits | mean {:.0} bits | {:.0}% of moves within 90% of peak",
                s.peak,
                s.mean,
                100.0 * s.time_at_peak
            );
            Ok(())
        }
        Command::TelemetryReport { path } => {
            let text = std::fs::read_to_string(&path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?;
            let records =
                pebblyn::telemetry::schema::validate_jsonl(&text).map_err(CliError::Telemetry)?;
            print!("{}", pebblyn::telemetry::schema::report(&records));
            Ok(())
        }
    }
}
