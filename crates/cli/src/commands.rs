//! Command implementations.

use crate::args::{Command, Scheduler, Workload};
use pebblyn::prelude::*;
use pebblyn::graphs::dwt2d::Dwt2dGraph;

/// Either workload graph, unified behind the operations the CLI needs.
enum Graph {
    Dwt(DwtGraph),
    Mvm(MvmGraph),
    Conv(ConvGraph),
    Dwt2d(Dwt2dGraph),
}

impl Graph {
    fn build(w: Workload, scheme: WeightScheme) -> Result<Self, String> {
        match w {
            Workload::Dwt { n, d } => DwtGraph::new(n, d, scheme)
                .map(Graph::Dwt)
                .map_err(|e| e.to_string()),
            Workload::Mvm { m, n } => MvmGraph::new(m, n, scheme)
                .map(Graph::Mvm)
                .map_err(|e| e.to_string()),
            Workload::Conv { n, k } => ConvGraph::new(n, k, scheme)
                .map(Graph::Conv)
                .map_err(|e| e.to_string()),
            Workload::Dwt2d { n, levels } => Dwt2dGraph::new(n, levels, scheme)
                .map(Graph::Dwt2d)
                .map_err(|e| e.to_string()),
        }
    }

    fn cdag(&self) -> &Cdag {
        match self {
            Graph::Dwt(d) => d.cdag(),
            Graph::Mvm(m) => m.cdag(),
            Graph::Conv(c) => c.cdag(),
            Graph::Dwt2d(g) => g.cdag(),
        }
    }

    fn name(&self) -> String {
        match self {
            Graph::Dwt(d) => format!("DWT({}, {})", d.n(), d.d()),
            Graph::Mvm(m) => format!("MVM({}, {})", m.m(), m.n()),
            Graph::Conv(c) => format!("Conv({}, {})", c.n(), c.k()),
            Graph::Dwt2d(g) => format!("DWT2D({0}x{0}, {1} levels)", g.n(), g.levels()),
        }
    }

    fn schedule(&self, s: Scheduler, budget: Weight) -> Result<Option<Schedule>, String> {
        match (self, s) {
            (Graph::Dwt(d), Scheduler::Optimal) => Ok(dwt_opt::schedule(d, budget)),
            (Graph::Dwt(d), Scheduler::LayerByLayer) => Ok(layer_by_layer::schedule(
                d,
                budget,
                LayerByLayerOptions::default(),
            )),
            (Graph::Mvm(m), Scheduler::Tiling) => Ok(mvm_tiling::schedule(m, budget)),
            (Graph::Mvm(m), Scheduler::LayerByLayer) => Ok(layer_by_layer::schedule(
                m,
                budget,
                LayerByLayerOptions::default(),
            )),
            (Graph::Conv(c), Scheduler::Stream) => Ok(conv_stream::schedule(c, budget)),
            (Graph::Conv(c), Scheduler::LayerByLayer) => Ok(layer_by_layer::schedule(
                c,
                budget,
                LayerByLayerOptions::default(),
            )),
            (Graph::Dwt2d(g), Scheduler::LayerByLayer) => Ok(layer_by_layer::schedule(
                g,
                budget,
                LayerByLayerOptions::default(),
            )),
            (g, Scheduler::Belady) => Ok(greedy_belady::schedule(g.cdag(), budget)),
            (g, Scheduler::Naive) => Ok(naive::schedule(g.cdag(), budget)),
            (_, Scheduler::Optimal) => {
                Err("the optimal DP is DWT-specific; pick the workload's scheduler".into())
            }
            (_, Scheduler::Tiling) => {
                Err("tiling is MVM-specific; pick the workload's scheduler".into())
            }
            (_, Scheduler::Stream) => {
                Err("streaming is Conv-specific; pick the workload's scheduler".into())
            }
        }
    }

    fn cost(&self, s: Scheduler, budget: Weight) -> Result<Option<Weight>, String> {
        match (self, s) {
            (Graph::Dwt(d), Scheduler::Optimal) => Ok(dwt_opt::min_cost(d, budget)),
            (Graph::Mvm(m), Scheduler::Tiling) => Ok(mvm_tiling::min_cost(m, budget)),
            (Graph::Conv(c), Scheduler::Stream) => {
                Ok((budget >= conv_stream::min_memory(c)).then(|| conv_stream::cost(c)))
            }
            _ => Ok(self
                .schedule(s, budget)?
                .map(|sch| sch.cost(self.cdag()))),
        }
    }

    fn monotone(&self, s: Scheduler) -> bool {
        matches!(s, Scheduler::Optimal | Scheduler::Tiling | Scheduler::Stream)
    }
}

fn scheduler_name(s: Scheduler) -> &'static str {
    match s {
        Scheduler::Optimal => "optimal DP (Algorithm 1)",
        Scheduler::LayerByLayer => "layer-by-layer baseline",
        Scheduler::Naive => "naive topological",
        Scheduler::Tiling => "tiling (Section 4.3)",
        Scheduler::Stream => "sliding-window streaming",
        Scheduler::Belady => "Belady-eviction greedy",
    }
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Schedule {
            workload,
            scheme,
            scheduler,
            budget,
            emit,
            optimize,
            out,
        } => {
            let g = Graph::build(workload, scheme)?;
            let cdag = g.cdag();
            println!("{} under {scheme}, budget {budget} bits", g.name());
            let Some(mut schedule) = g.schedule(scheduler, budget)? else {
                return Err(format!(
                    "no {} schedule exists at {budget} bits (minimum feasible: {})",
                    scheduler_name(scheduler),
                    min_feasible_budget(cdag)
                ));
            };
            if optimize {
                let (optimized, pstats) = peephole(cdag, &schedule);
                println!("peephole:    removed {} moves", pstats.removed());
                schedule = optimized;
            }
            let stats = validate_schedule(cdag, budget, &schedule)
                .map_err(|e| format!("generated schedule failed validation: {e}"))?;
            println!("scheduler:   {}", scheduler_name(scheduler));
            println!("moves:       {}", stats.moves);
            println!(
                "cost:        {} bits (lower bound {})",
                stats.cost,
                algorithmic_lower_bound(cdag)
            );
            println!("peak red:    {} bits", stats.peak_red_weight);
            if emit {
                println!("\n{schedule}");
            }
            if let Some(path) = out {
                std::fs::write(&path, pebblyn::core::io::to_text(&schedule))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("schedule written to {path}");
            }
            Ok(())
        }
        Command::MinMemory {
            workload,
            scheme,
            scheduler,
        } => {
            let g = Graph::build(workload, scheme)?;
            let cdag = g.cdag();
            let lb = algorithmic_lower_bound(cdag);
            let opts = MinMemoryOptions::for_graph(cdag).monotone(g.monotone(scheduler));
            let bits = min_memory(|b| g.cost(scheduler, b).ok().flatten(), lb, opts)
                .ok_or("scheduler never reaches the algorithmic lower bound")?;
            let word = scheme.word_bits();
            println!("{} under {scheme}, {}", g.name(), scheduler_name(scheduler));
            println!("minimum fast memory: {} words = {bits} bits", bits / word);
            println!("power-of-two:        {} bits", round_pow2(bits));
            Ok(())
        }
        Command::Sweep {
            workload,
            scheme,
            scheduler,
            points,
        } => {
            let g = Graph::build(workload, scheme)?;
            let cdag = g.cdag();
            let lo = min_feasible_budget(cdag);
            let hi = cdag.total_weight();
            println!("budget_bits,cost_bits");
            for i in 0..points.max(2) {
                let t = i as f64 / (points.max(2) - 1) as f64;
                let b = (lo as f64 * (hi as f64 / lo as f64).powf(t)) as Weight;
                let b = b / scheme.word_bits() * scheme.word_bits();
                match g.cost(scheduler, b)? {
                    Some(c) => println!("{b},{c}"),
                    None => println!("{b},inf"),
                }
            }
            Ok(())
        }
        Command::Synth { bits, word } => {
            let m = SramConfig {
                capacity_bits: bits,
                word_bits: word,
            }
            .synthesize(&Process::default());
            println!("capacity:    {} bits ({} words)", m.capacity_bits, m.words());
            println!("array:       {} rows x {} cols (mux {})", m.rows, m.cols, m.mux);
            println!("area:        {:.0} λ²", m.area_l2);
            println!("leakage:     {:.2} mW", m.leakage_mw);
            println!("read power:  {:.2} mW", m.read_power_mw);
            println!("write power: {:.2} mW", m.write_power_mw);
            println!("read perf:   {:.1} GB/s", m.read_gbps);
            println!("write perf:  {:.1} GB/s", m.write_gbps);
            Ok(())
        }
        Command::Dot { workload, scheme } => {
            let g = Graph::build(workload, scheme)?;
            print!("{}", g.cdag().to_dot());
            Ok(())
        }
        Command::Trace {
            workload,
            scheme,
            scheduler,
            budget,
        } => {
            use pebblyn::core::{occupancy_trace, render_sparkline, summarize};
            let g = Graph::build(workload, scheme)?;
            let cdag = g.cdag();
            let Some(schedule) = g.schedule(scheduler, budget)? else {
                return Err(format!(
                    "no {} schedule at {budget} bits",
                    scheduler_name(scheduler)
                ));
            };
            validate_schedule(cdag, budget, &schedule)
                .map_err(|e| format!("generated schedule failed validation: {e}"))?;
            let trace = occupancy_trace(cdag, &schedule);
            let s = summarize(&trace);
            println!("{} under {scheme}, {}", g.name(), scheduler_name(scheduler));
            println!("occupancy over {} moves (budget {budget} bits):", trace.len());
            println!("  {}", render_sparkline(&trace, 72));
            println!(
                "peak {} bits | mean {:.0} bits | {:.0}% of moves within 90% of peak",
                s.peak,
                s.mean,
                100.0 * s.time_at_peak
            );
            Ok(())
        }
    }
}
