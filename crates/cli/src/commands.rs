//! Command implementations.
//!
//! Every command builds the shared workload-erased
//! [`AnyGraph`] and routes scheduling through the typed request API
//! ([`ScheduleRequest`] → `pebblyn-schedulers::api::execute_with`) — the
//! same single entry point the engine's sweep evaluator and the
//! `pebblyn serve` daemon use.  The `sweep` and `min-memory` commands
//! are thin declarations over the `pebblyn-engine` plans, sharing its
//! process-wide memo.

use crate::args::{Command, StreamFamily};
use crate::error::CliError;
use pebblyn::prelude::*;
use pebblyn::service::{serve_stream, serve_unix};

/// The trait object a `--scheduler` registry name denotes.  The parser
/// already validated the name, so a miss here is unreachable in the
/// binary; it still degrades to the same usage error rather than a panic
/// for library callers handing in a raw [`Command`].
fn resolve(name: &str) -> Result<&'static dyn Scheduler, CliError> {
    api::by_name(name).ok_or_else(|| {
        let valid: Vec<&str> = api::registry().iter().map(|s| s.name()).collect();
        CliError::Usage(format!(
            "unknown --scheduler {name}; valid names: {}",
            valid.join(", ")
        ))
    })
}

/// Resolve and check applicability, with the workload-specific hint.
fn ensure_supported(g: &AnyGraph, name: &str) -> Result<&'static dyn Scheduler, CliError> {
    let sched = resolve(name)?;
    if sched.supports(g) {
        return Ok(sched);
    }
    Err(CliError::Unsupported(match sched.name() {
        "dwt-opt" => "the optimal DP is DWT-specific; pick the workload's scheduler",
        "mvm-tiling" => "tiling is MVM-specific; pick the workload's scheduler",
        "conv-stream" => "streaming is Conv-specific; pick the workload's scheduler",
        "banded-stream" => "banded streaming is BandedMVM-specific; pick the workload's scheduler",
        "kary" => "the k-ary DP needs an in-tree CDAG; pick the workload's scheduler",
        _ => "scheduler does not support this workload",
    }))
}

/// The human-readable name the reports print for a registry name.
fn display_name(name: &str) -> &'static str {
    match name {
        "dwt-opt" => "optimal DP (Algorithm 1)",
        "kary" => "k-ary tree DP",
        "layer-by-layer" => "layer-by-layer baseline",
        "naive" => "naive topological",
        "mvm-tiling" => "tiling (Section 4.3)",
        "conv-stream" => "sliding-window streaming",
        "banded-stream" => "banded streaming",
        "greedy-belady" => "Belady-eviction greedy",
        "topo-window" => "streaming window (Belady eviction)",
        "slab-partition" => "streaming slab partitioner",
        "partition-belady" => "level-partitioned Belady (best of q <= p)",
        "comm-list" => "communication-aware list scheduler",
        _ => "scheduler",
    }
}

/// Build one synthetic giant CDAG of roughly `nodes` nodes (see
/// `pebblyn_synth::giga`); structured families round down to their
/// nearest admissible shape, never up, so `--nodes` is an upper bound
/// on the structured part of the graph size.
fn build_stream_graph(
    family: StreamFamily,
    nodes: usize,
    seed: u64,
    fan_in: usize,
) -> pebblyn::core::Cdag {
    use pebblyn::synth::{dwt_giga, layered_random_giga, mvm_giga};
    match family {
        StreamFamily::Dwt => {
            // Full-depth pyramid: 3·inputs − 2 nodes for power-of-two inputs.
            let target = nodes.div_ceil(3).max(4);
            let inputs = if target.is_power_of_two() {
                target
            } else {
                target.next_power_of_two() / 2
            };
            dwt_giga(inputs, inputs.trailing_zeros() as usize)
        }
        StreamFamily::Mvm => {
            // cols·(rows + 1) nodes: a near-square accumulation grid.
            let cols = (nodes as f64).sqrt() as usize;
            let cols = cols.max(2);
            let rows = (nodes / cols).saturating_sub(1).max(1);
            mvm_giga(rows, cols)
        }
        StreamFamily::Layered => {
            let width = ((nodes as f64).sqrt() as usize).max(fan_in).max(2);
            let layers = (nodes / width).max(2);
            layered_random_giga(layers, width, fan_in, seed)
        }
    }
}

/// One line describing the machine for report headers, e.g.
/// `4 processors x 160 bits` or `processors of 192, 64 bits`.
fn machine_summary(machine: &MachineSpec) -> String {
    let budgets: Vec<Weight> = machine.procs().iter().map(|p| p.budget()).collect();
    if budgets.windows(2).all(|w| w[0] == w[1]) {
        format!("{} processors x {} bits", machine.num_procs(), budgets[0])
    } else {
        let list: Vec<String> = budgets.iter().map(Weight::to_string).collect();
        format!("processors of {} bits", list.join(", "))
    }
}

/// `pebblyn schedule --procs P ...`: run the multiprocessor game and
/// report total I/O, makespan and communication alongside the
/// single-processor metrics.
fn schedule_multi(
    g: &AnyGraph,
    sched: &'static dyn Scheduler,
    scheduler: &'static str,
    machine: &MachineSpec,
    emit: bool,
    out: Option<String>,
) -> Result<(), CliError> {
    if out.is_some() {
        return Err(CliError::Usage(
            "--out writes the single-processor M1..M4 text format and does not \
             apply to multiprocessor schedules"
                .into(),
        ));
    }
    if !sched.supports_machine(g, machine) {
        return Err(CliError::Unsupported(
            "this scheduler plays the single-processor game only; use \
             partition-belady or comm-list with --procs > 1",
        ));
    }
    let cdag = g.cdag();
    println!(
        "{} on {}, comm price {}",
        g.name(),
        machine_summary(machine),
        machine.comm_price()
    );
    let req = ScheduleRequest::new(g, machine.clone(), scheduler);
    let resp = api::execute_with(sched, &req).map_err(|e| match e {
        ScheduleError::InfeasibleBudget { min_feasible } => CliError::Infeasible {
            scheduler: display_name(scheduler),
            budget: machine.max_proc_budget(),
            min_feasible: min_feasible.or(Some(min_feasible_budget(cdag))),
        },
        e => CliError::from_schedule_error(e, display_name(scheduler), machine.max_proc_budget()),
    })?;
    let multi = resp
        .into_multi_schedule()
        .expect("full multiprocessor request returns moves");
    // Replay for the report's stats; the executor already validated.
    let stats = validate_multi_schedule(cdag, machine, &multi)?;
    println!("scheduler:   {}", display_name(scheduler));
    println!(
        "moves:       {} ({} communications)",
        stats.moves, stats.comm_moves
    );
    println!(
        "total I/O:   {} bits (lower bound {}, comm {} of it)",
        stats.total_cost(),
        algorithmic_lower_bound(cdag),
        stats.comm_cost
    );
    println!("makespan:    {} bit-times", stats.makespan);
    println!(
        "busy procs:  {} of {}, peak red {:?}",
        stats.procs_used(),
        machine.num_procs(),
        stats.peak_red
    );
    if emit {
        println!("\n{multi}");
    }
    Ok(())
}

/// `pebblyn sweep --procs P ...`: cost and makespan vs the per-processor
/// budget over the same log lattice the single-processor sweep uses.
fn sweep_multi(
    g: &AnyGraph,
    sched: &'static dyn Scheduler,
    scheduler: &'static str,
    points: usize,
    procs: usize,
    comm_price: Weight,
    scheme: WeightScheme,
) -> Result<(), CliError> {
    let budgets = BudgetSpec::LogLattice {
        points,
        word: scheme.word_bits(),
    }
    .budgets(g);
    println!("budget_bits,cost_bits,makespan_bits,comm_bits");
    for b in budgets {
        let machine = MachineSpec::symmetric(procs, b).with_comm_price(comm_price);
        if !sched.supports_machine(g, &machine) {
            return Err(CliError::Unsupported(
                "this scheduler plays the single-processor game only; use \
                 partition-belady or comm-list with --procs > 1",
            ));
        }
        let req = ScheduleRequest::new(g, machine, scheduler).with_cost_only(true);
        match api::execute_with(sched, &req) {
            Ok(resp) => println!(
                "{b},{},{},{}",
                resp.cost(),
                resp.makespan()
                    .expect("multiprocessor answers carry makespan"),
                resp.comm_cost()
                    .expect("multiprocessor answers carry comm cost"),
            ),
            Err(ScheduleError::InfeasibleBudget { .. }) => println!("{b},inf,inf,inf"),
            Err(e) => return Err(CliError::from_schedule_error(e, display_name(scheduler), b)),
        }
    }
    Ok(())
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Schedule {
            workload,
            scheme,
            scheduler,
            machine,
            emit,
            optimize,
            out,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            let cdag = g.cdag();
            let Some(budget) = machine.uniprocessor_budget() else {
                return schedule_multi(&g, sched, scheduler, &machine, emit, out);
            };
            println!("{} under {scheme}, budget {budget} bits", g.name());
            let req = ScheduleRequest::new(&g, budget, scheduler);
            let mut schedule = match api::execute_with(sched, &req) {
                Ok(resp) => resp.into_schedule().expect("full request returns moves"),
                Err(ScheduleError::InfeasibleBudget { min_feasible }) => {
                    return Err(CliError::Infeasible {
                        scheduler: display_name(scheduler),
                        budget,
                        // Always offer the Prop. 2.3 minimum, as this
                        // command historically did.
                        min_feasible: min_feasible.or(Some(min_feasible_budget(cdag))),
                    });
                }
                Err(e) => {
                    return Err(CliError::from_schedule_error(
                        e,
                        display_name(scheduler),
                        budget,
                    ))
                }
            };
            if optimize {
                let (optimized, pstats) = peephole(cdag, &schedule);
                println!("peephole:    removed {} moves", pstats.removed());
                schedule = optimized;
            }
            let stats = validate_schedule(cdag, budget, &schedule)?;
            println!("scheduler:   {}", display_name(scheduler));
            println!("moves:       {}", stats.moves);
            println!(
                "cost:        {} bits (lower bound {})",
                stats.cost,
                algorithmic_lower_bound(cdag)
            );
            println!("peak red:    {} bits", stats.peak_red_weight);
            if emit {
                println!("\n{schedule}");
            }
            if let Some(path) = out {
                std::fs::write(&path, pebblyn::core::io::to_text(&schedule)).map_err(|source| {
                    CliError::Io {
                        path: path.clone(),
                        source,
                    }
                })?;
                println!("schedule written to {path}");
            }
            Ok(())
        }
        Command::Stream {
            family,
            nodes,
            seed,
            fan_in,
            scheduler,
            budget,
        } => {
            use std::time::Instant;
            let t0 = Instant::now();
            let cdag = build_stream_graph(family, nodes, seed, fan_in);
            let (n, e) = (cdag.len(), cdag.edge_count());
            let built = t0.elapsed();
            let g = AnyGraph::custom(format!("{}-giga", family.name()), cdag);
            let cdag = g.cdag();
            println!(
                "{}: {n} nodes / {e} edges (built in {:.2}s), budget {budget} bits",
                g.name(),
                built.as_secs_f64()
            );
            let sched = ensure_supported(&g, scheduler)?;
            let t1 = Instant::now();
            let schedule = sched
                .schedule(&g, budget)
                .map_err(|e| CliError::from_schedule_error(e, display_name(scheduler), budget))?;
            let scheduled = t1.elapsed();
            let stats = validate_schedule(cdag, budget, &schedule)?;
            let lb = algorithmic_lower_bound(cdag);
            println!("scheduler:   {}", display_name(scheduler));
            println!(
                "cost:        {} bits (lower bound {lb}, gap {:.4}x)",
                stats.cost,
                stats.cost as f64 / lb as f64
            );
            println!(
                "peak red:    {} of {budget} bits · {} moves",
                stats.peak_red_weight, stats.moves
            );
            println!(
                "scheduled in {:.2}s ({:.0} ns/edge, single pass)",
                scheduled.as_secs_f64(),
                scheduled.as_secs_f64() * 1e9 / e as f64
            );
            Ok(())
        }
        Command::MinMemory {
            workload,
            scheme,
            scheduler,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let name = g.name();
            let res = MinMemoryPlan::new("cli min-memory")
                .to_lower_bound(Series::scheduler(resolve(scheduler)?))
                .workload(g)
                .run_with(Memo::global());
            let bits = res.rows[0].min_bits.ok_or(CliError::Target(
                "scheduler never reaches the algorithmic lower bound",
            ))?;
            let word = scheme.word_bits();
            println!("{name} under {scheme}, {}", display_name(scheduler));
            println!("minimum fast memory: {} words = {bits} bits", bits / word);
            println!("power-of-two:        {} bits", round_pow2(bits));
            Ok(())
        }
        Command::Sweep {
            workload,
            scheme,
            scheduler,
            points,
            procs,
            comm_price,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            if procs > 1 {
                return sweep_multi(&g, sched, scheduler, points, procs, comm_price, scheme);
            }
            let res = SweepPlan::new(
                "cli sweep",
                BudgetSpec::LogLattice {
                    points,
                    word: scheme.word_bits(),
                },
            )
            .workload(g)
            .series(Series::scheduler(sched))
            .run_with(Memo::global());
            println!("budget_bits,cost_bits");
            for row in &res.rows {
                match row.cost {
                    Some(c) => println!("{},{c}", row.budget),
                    None => println!("{},inf", row.budget),
                }
            }
            Ok(())
        }
        Command::Exact {
            workload,
            scheme,
            budget,
            heuristic,
            dominance,
            tighten,
            symmetry,
            wl_symmetry,
            partial_expansion,
            max_states,
        } => {
            let g = AnyGraph::build(workload, scheme)?;
            let cdag = g.cdag();
            let solver = ExactSolver::with_max_states(max_states)
                .with_heuristic(heuristic)
                .with_dominance(dominance)
                .with_tighten(tighten)
                .with_symmetry(symmetry)
                .with_wl_symmetry(wl_symmetry)
                .with_partial_expansion(partial_expansion);
            println!("{} under {scheme}, budget {budget} bits", g.name());
            println!(
                "solver:      A* · heuristic {} · dominance {} · macro moves {} · symmetry {} \
                 · wl orbits {} · partial expansion {}",
                heuristic.name(),
                if dominance { "on" } else { "off" },
                if tighten { "on" } else { "off" },
                if symmetry { "on" } else { "off" },
                if symmetry && wl_symmetry { "on" } else { "off" },
                if partial_expansion { "on" } else { "off" },
            );
            let sol = solver.solve(cdag, budget)?;
            let st = sol.stats;
            let Some(cost) = sol.cost else {
                return Err(CliError::Infeasible {
                    scheduler: "exact A*",
                    budget,
                    min_feasible: Some(min_feasible_budget(cdag)),
                });
            };
            println!(
                "optimum:     {cost} bits (lower bound {}, root bound {})",
                algorithmic_lower_bound(cdag),
                st.root_bound
            );
            println!(
                "expanded:    {} states over {} batches ({} generated, {} re-expansions)",
                st.expanded, st.batches, st.generated, st.re_expanded
            );
            println!(
                "pruned:      {} dominated · {} re-reached · {} orbit-merged \
                 ({} dominance entries)",
                st.dominated, st.deduped, st.symmetry_pruned, st.dominance_entries
            );
            println!(
                "frontier:    {} open at exit · peak {} · {} steals \
                 ({}-word state masks)",
                st.frontier_left, st.peak_open, st.frontier_steals, st.mask_words
            );
            Ok(())
        }
        Command::Synth { bits, word } => {
            let m = SramConfig {
                capacity_bits: bits,
                word_bits: word,
            }
            .synthesize(&Process::default());
            println!(
                "capacity:    {} bits ({} words)",
                m.capacity_bits,
                m.words()
            );
            println!(
                "array:       {} rows x {} cols (mux {})",
                m.rows, m.cols, m.mux
            );
            println!("area:        {:.0} λ²", m.area_l2);
            println!("leakage:     {:.2} mW", m.leakage_mw);
            println!("read power:  {:.2} mW", m.read_power_mw);
            println!("write power: {:.2} mW", m.write_power_mw);
            println!("read perf:   {:.1} GB/s", m.read_gbps);
            println!("write perf:  {:.1} GB/s", m.write_gbps);
            Ok(())
        }
        Command::Dot { workload, scheme } => {
            let g = AnyGraph::build(workload, scheme)?;
            print!("{}", g.cdag().to_dot());
            Ok(())
        }
        Command::Trace {
            workload,
            scheme,
            scheduler,
            budget,
        } => {
            use pebblyn::core::render_sparkline;
            let g = AnyGraph::build(workload, scheme)?;
            let sched = ensure_supported(&g, scheduler)?;
            let cdag = g.cdag();
            let req = ScheduleRequest::new(&g, budget, scheduler);
            let schedule = api::execute_with(sched, &req)
                .map_err(|e| CliError::from_schedule_error(e, display_name(scheduler), budget))?
                .into_schedule()
                .expect("full request returns moves");
            validate_schedule(cdag, budget, &schedule)?;
            let trace = occupancy_trace(cdag, &schedule);
            let s = summarize(&trace);
            println!("{} under {scheme}, {}", g.name(), display_name(scheduler));
            println!(
                "occupancy over {} moves (budget {budget} bits):",
                trace.len()
            );
            println!("  {}", render_sparkline(&trace, 72));
            println!(
                "peak {} bits | mean {:.0} bits | {:.0}% of moves within 90% of peak",
                s.peak,
                s.mean,
                100.0 * s.time_at_peak
            );
            Ok(())
        }
        Command::Serve {
            socket,
            queue_depth,
            workers,
            cache,
        } => {
            let service = std::sync::Arc::new(Service::new(&ServiceConfig {
                cache,
                ..ServiceConfig::default()
            }));
            let server = Server::start(
                std::sync::Arc::clone(&service),
                &ServerConfig {
                    queue_depth,
                    workers,
                },
            );
            match socket {
                Some(path) => {
                    eprintln!("pebblyn serve: listening on {path}");
                    serve_unix(&server, std::path::Path::new(&path)).map_err(|source| {
                        CliError::Io {
                            path: path.clone(),
                            source,
                        }
                    })?;
                }
                None => {
                    // Stdio transport: one framed conversation, then exit.
                    let stdin = std::io::stdin();
                    let mut stdout = std::io::stdout();
                    serve_stream(&server, stdin, &mut stdout).map_err(|source| CliError::Io {
                        path: "<stdio>".into(),
                        source,
                    })?;
                }
            }
            server.shutdown();
            if let Some(cache) = service.cache() {
                let st = cache.stats();
                eprintln!(
                    "pebblyn serve: {} hits / {} misses over {} cached entries",
                    st.hits(),
                    st.misses(),
                    st.entries()
                );
            }
            Ok(())
        }
        Command::TelemetryReport { path } => {
            let text = std::fs::read_to_string(&path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?;
            let records =
                pebblyn::telemetry::schema::validate_jsonl(&text).map_err(CliError::Telemetry)?;
            print!("{}", pebblyn::telemetry::schema::report(&records));
            Ok(())
        }
    }
}
