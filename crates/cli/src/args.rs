//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Workload parameters parse straight into the shared
//! [`Workload`] record from `pebblyn-graphs`; every parse failure is a
//! [`CliError::Usage`] (exit code 2, usage text printed).

use crate::error::CliError;
use pebblyn::prelude::*;

/// CLI usage text.
pub const USAGE: &str = "\
pebblyn — Weighted Red-Blue Pebble Game toolkit

USAGE:
  pebblyn <COMMAND> [OPTIONS]

COMMANDS:
  schedule     generate and validate a schedule for a workload
  stream       schedule a synthetic giant CDAG (up to millions of nodes)
               with the O(E) streaming schedulers
  min-memory   compute the minimum fast memory size (Definition 2.6)
  sweep        print cost vs fast-memory-size series for a workload
  exact        solve a workload optimally (bound-guided A* search)
  synth        synthesize an SRAM macro for a capacity
  trace        render a schedule's fast-memory occupancy over time
  dot          print the workload CDAG in Graphviz DOT format
  serve        run the scheduling daemon (wire protocol over stdio or
               a unix socket, canonicalizing schedule cache)
  telemetry-report <FILE>
               summarize a telemetry JSONL file written by --telemetry

WORKLOAD OPTIONS (schedule, min-memory, sweep, exact, dot):
  --workload dwt|mvm|conv|dwt2d|banded
                           (required)
  --n <N>                  DWT/Conv inputs, 2-D image side, or banded
                           dimension [default 256 / 16 / 64]
  --d <D>                  DWT levels [default max for n]
  --k <K>                  Conv filter taps [default 8]
  --levels <L>             2-D DWT levels [default 2]
  --m <M> --cols <N>       MVM rows/columns [default 96x120]
  --bandwidth <B>          banded MVM half-bandwidth [default 4]
  --weights equal|da       weight configuration [default equal]
  --word <BITS>            word size in bits [default 16]
  --scheduler <NAME>       a registry name: dwt-opt|kary|mvm-tiling|
                           conv-stream|banded-stream|layer-by-layer|
                           greedy-belady|topo-window|slab-partition|
                           naive (aliases: opt, lbl, tiling, stream,
                           banded, belady, window, slab)
                           [default: per-workload]

STREAM OPTIONS:
  --family dwt|mvm|layered synthetic giant-CDAG family [default layered]
  --nodes <N>              approximate node count [default 1000000]
  --seed <S>               layered-random seed [default 7]
  --fan-in <F>             layered-random max fan-in [default 3]
  --scheduler <NAME>       topo-window (default) or slab-partition;
                           any registry name is accepted
  --budget <BITS|Nw>       fast memory budget (required)

SERVE OPTIONS:
  --socket <PATH>          listen on a unix socket instead of stdio
  --queue-depth <N>        bounded request queue; overflow sheds [64]
  --workers <N>            worker threads [default: machine-sized]
  --no-cache               disable the canonicalizing schedule cache

EXACT OPTIONS:
  --heuristic none|remaining-work|forced-reload|landmark-pdb
                           A* guiding lower bound [default landmark-pdb]
  --no-dominance           disable dominance pruning
  --no-tighten             search the raw four-move game (no macro moves)
  --no-symmetry            disable symmetry reduction (twin + WL orbits)
  --wl-symmetry on|off     WL-orbit lever on top of twin symmetry
                           [default on; conflicts with --no-symmetry]
  --no-partial-expansion   materialize every successor (no PEA* deferral)
  --max-states <N>         expanded-state cap [default 5000000]

OTHER OPTIONS:
  --budget <BITS|Nw>       fast memory budget, bits or words (e.g. 99w)
  --procs <P>              (schedule, sweep) play the multiprocessor game
                           on P identical processors of --budget bits each
                           [default 1: the classic single-processor game]
  --proc-budgets a,b,...   (schedule) per-processor budgets, bits or words;
                           replaces --budget, length must match --procs
                           when both are given
  --comm-price <W>         red-to-red communication price multiplier
                           [default 2: priced like a store + a load]
  --points <K>             sweep points [default 20]
  --bits <BITS>            synth capacity in bits
  --emit                   print the full move sequence (schedule)
  --optimize               run the peephole passes before reporting
  --out <FILE>             write the schedule in the M1..M4 text format
  --telemetry <FILE>       (any command) record run counters and phase
                           timers to FILE as schema-versioned JSONL;
                           inspect with telemetry-report
";

/// Map a `--scheduler` value — a registry name or one of the historical
/// CLI aliases — to its canonical registry name, validated against the
/// live scheduler registry at parse time.  An unknown name is a
/// [`CliError::Usage`] (exit 2) that lists every valid registry name, so
/// the driver's error is actionable without reading the docs.
pub fn resolve_scheduler(input: &str) -> Result<&'static str, CliError> {
    let name = match input {
        "opt" | "optimal" => "dwt-opt",
        "lbl" => "layer-by-layer",
        "tiling" => "mvm-tiling",
        "stream" => "conv-stream",
        "banded" => "banded-stream",
        "belady" => "greedy-belady",
        "window" => "topo-window",
        "slab" => "slab-partition",
        other => other,
    };
    match api::by_name(name) {
        Some(s) => Ok(s.name()),
        None => {
            let valid: Vec<&str> = api::registry().iter().map(|s| s.name()).collect();
            Err(usage(format!(
                "unknown --scheduler {input}; valid names: {}",
                valid.join(", ")
            )))
        }
    }
}

/// Synthetic giant-CDAG family for `pebblyn stream` (see
/// `pebblyn_synth::giga`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFamily {
    /// Full-depth 1-D DWT pyramid (`dwt_giga`).
    Dwt,
    /// Matrix-vector partial-accumulation grid (`mvm_giga`).
    Mvm,
    /// Seeded layered-random DAG (`layered_random_giga`).
    Layered,
}

impl StreamFamily {
    /// The `--family` spelling.
    pub fn name(self) -> &'static str {
        match self {
            StreamFamily::Dwt => "dwt",
            StreamFamily::Mvm => "mvm",
            StreamFamily::Layered => "layered",
        }
    }
}

/// A parsed command.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum Command {
    /// Generate, validate and report one schedule.
    Schedule {
        workload: Workload,
        scheme: WeightScheme,
        scheduler: &'static str,
        machine: MachineSpec,
        emit: bool,
        optimize: bool,
        out: Option<String>,
    },
    /// Schedule a synthetic giant CDAG with the streaming schedulers.
    Stream {
        family: StreamFamily,
        nodes: usize,
        seed: u64,
        fan_in: usize,
        scheduler: &'static str,
        budget: Weight,
    },
    /// Compute the minimum fast memory size (Definition 2.6).
    MinMemory {
        workload: Workload,
        scheme: WeightScheme,
        scheduler: &'static str,
    },
    /// Print a cost vs budget series as CSV.
    Sweep {
        workload: Workload,
        scheme: WeightScheme,
        scheduler: &'static str,
        points: usize,
        procs: usize,
        comm_price: Weight,
    },
    /// Solve the workload optimally with the bound-guided A* search.
    Exact {
        workload: Workload,
        scheme: WeightScheme,
        budget: Weight,
        heuristic: Heuristic,
        dominance: bool,
        tighten: bool,
        symmetry: bool,
        wl_symmetry: bool,
        partial_expansion: bool,
        max_states: usize,
    },
    /// Synthesize an SRAM macro.
    Synth { bits: u64, word: u64 },
    /// Print the CDAG in Graphviz DOT format.
    Dot {
        workload: Workload,
        scheme: WeightScheme,
    },
    /// Render the occupancy trace of a schedule.
    Trace {
        workload: Workload,
        scheme: WeightScheme,
        scheduler: &'static str,
        budget: Weight,
    },
    /// Run the scheduling daemon.
    Serve {
        socket: Option<String>,
        queue_depth: usize,
        workers: usize,
        cache: bool,
    },
    /// Summarize a telemetry JSONL file.
    TelemetryReport { path: String },
}

impl Command {
    /// The subcommand name, used as the telemetry run label.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Schedule { .. } => "schedule",
            Command::Stream { .. } => "stream",
            Command::MinMemory { .. } => "min-memory",
            Command::Sweep { .. } => "sweep",
            Command::Exact { .. } => "exact",
            Command::Synth { .. } => "synth",
            Command::Dot { .. } => "dot",
            Command::Trace { .. } => "trace",
            Command::Serve { .. } => "serve",
            Command::TelemetryReport { .. } => "telemetry-report",
        }
    }
}

/// A parsed invocation: the global options plus the command.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// `--telemetry <FILE>`: record run counters to this JSONL file.
    pub telemetry: Option<String>,
    /// The subcommand.
    pub command: Command,
}

/// Parse `argv` into an [`Invocation`] (global flags + command).
pub fn parse_invocation(argv: &[String]) -> Result<Invocation, CliError> {
    let telemetry = argv
        .iter()
        .position(|a| a == "--telemetry")
        .map(|i| {
            argv.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .ok_or_else(|| usage("missing value for --telemetry"))
        })
        .transpose()?;
    Ok(Invocation {
        telemetry,
        command: parse(argv)?,
    })
}

struct Opts<'a> {
    argv: &'a [String],
}

impl<'a> Opts<'a> {
    fn get(&self, key: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.argv.iter().any(|a| a == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid {key}: {s}"))),
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parse `argv` into a [`Command`].
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let cmd = argv
        .first()
        .ok_or_else(|| usage("missing command"))?
        .as_str();
    let opts = Opts { argv: &argv[1..] };

    let word: u64 = opts.parse_num("--word", 16)?;
    if word == 0 {
        return Err(usage("--word must be positive"));
    }
    let scheme = match opts.get("--weights").unwrap_or("equal") {
        "equal" => WeightScheme::Equal(word),
        "da" | "double-accumulator" => WeightScheme::DoubleAccumulator(word),
        other => return Err(usage(format!("unknown --weights {other} (equal|da)"))),
    };

    let workload = || -> Result<Workload, CliError> {
        match opts
            .get("--workload")
            .ok_or_else(|| usage("missing --workload"))?
        {
            "dwt" => {
                let n: usize = opts.parse_num("--n", 256)?;
                let d = match opts.get("--d") {
                    Some(s) => s.parse().map_err(|_| usage(format!("invalid --d: {s}")))?,
                    None => DwtGraph::max_level(n)
                        .ok_or_else(|| usage(format!("no admissible level for n = {n}")))?,
                };
                Ok(Workload::Dwt { n, d })
            }
            "mvm" => Ok(Workload::Mvm {
                m: opts.parse_num("--m", 96)?,
                n: opts.parse_num("--cols", 120)?,
            }),
            "conv" => Ok(Workload::Conv {
                n: opts.parse_num("--n", 256)?,
                k: opts.parse_num("--k", 8)?,
            }),
            "dwt2d" => Ok(Workload::Dwt2d {
                n: opts.parse_num("--n", 16)?,
                levels: opts.parse_num("--levels", 2)?,
            }),
            "banded" => Ok(Workload::Banded {
                n: opts.parse_num("--n", 64)?,
                bandwidth: opts.parse_num("--bandwidth", 4)?,
            }),
            other => Err(usage(format!(
                "unknown --workload {other} (dwt|mvm|conv|dwt2d|banded)"
            ))),
        }
    };

    let scheduler = |w: &Workload| -> Result<&'static str, CliError> {
        let default = match w {
            Workload::Dwt { .. } => "dwt-opt",
            Workload::Mvm { .. } => "mvm-tiling",
            Workload::Conv { .. } => "conv-stream",
            Workload::Dwt2d { .. } => "greedy-belady",
            Workload::Banded { .. } => "banded-stream",
        };
        resolve_scheduler(opts.get("--scheduler").unwrap_or(default))
    };

    // Bits with an optional `w` (words) suffix, e.g. `99w` = 99 · word.
    let bits = |key: &str, s: &str| -> Result<Weight, CliError> {
        if let Some(words) = s.strip_suffix('w') {
            words
                .parse::<Weight>()
                .map(|w| w * word)
                .map_err(|_| usage(format!("invalid {key}: {s}")))
        } else {
            s.parse().map_err(|_| usage(format!("invalid {key}: {s}")))
        }
    };

    let budget = || -> Result<Weight, CliError> {
        let s = opts
            .get("--budget")
            .ok_or_else(|| usage("missing --budget"))?;
        bits("--budget", s)
    };

    // `--procs` with a zero guard; commands that cannot go multiprocessor
    // simply never call this (an unused `--procs` is ignored like any
    // other inapplicable flag).
    let procs = || -> Result<usize, CliError> {
        let p: usize = opts.parse_num("--procs", 1)?;
        if p == 0 {
            return Err(usage("--procs must be at least 1"));
        }
        Ok(p)
    };

    // The full machine: `--procs N` identical copies of `--budget`, or
    // explicit heterogeneous `--proc-budgets a,b,...`, with `--comm-price`
    // on top.  Inconsistent combinations are usage errors, not silent
    // precedence rules.
    let machine = || -> Result<MachineSpec, CliError> {
        let comm_price: Weight = opts.parse_num("--comm-price", DEFAULT_COMM_PRICE)?;
        let spec = match opts.get("--proc-budgets") {
            Some(list) => {
                let budgets = list
                    .split(',')
                    .map(|s| bits("--proc-budgets", s.trim()).map(ProcBudget::new))
                    .collect::<Result<Vec<_>, _>>()?;
                if budgets.is_empty() {
                    return Err(usage("--proc-budgets needs at least one budget"));
                }
                if let Some(p) = opts.get("--procs") {
                    let p: usize = p
                        .parse()
                        .map_err(|_| usage(format!("invalid --procs: {p}")))?;
                    if p != budgets.len() {
                        return Err(usage(format!(
                            "--procs {p} does not match the {} budgets in --proc-budgets",
                            budgets.len()
                        )));
                    }
                }
                if opts.get("--budget").is_some() {
                    return Err(usage(
                        "--budget conflicts with --proc-budgets (budgets are per-processor)",
                    ));
                }
                MachineSpec::new(budgets)
            }
            None => MachineSpec::symmetric(procs()?, budget()?),
        };
        Ok(spec.with_comm_price(comm_price))
    };

    match cmd {
        "schedule" => {
            let w = workload()?;
            Ok(Command::Schedule {
                workload: w,
                scheme,
                scheduler: scheduler(&w)?,
                machine: machine()?,
                emit: opts.flag("--emit"),
                optimize: opts.flag("--optimize"),
                out: opts.get("--out").map(String::from),
            })
        }
        "stream" => {
            let family = match opts.get("--family").unwrap_or("layered") {
                "dwt" => StreamFamily::Dwt,
                "mvm" => StreamFamily::Mvm,
                "layered" => StreamFamily::Layered,
                other => return Err(usage(format!("unknown --family {other} (dwt|mvm|layered)"))),
            };
            let nodes: usize = opts.parse_num("--nodes", 1_000_000)?;
            if nodes < 16 {
                return Err(usage("--nodes must be at least 16"));
            }
            let fan_in: usize = opts.parse_num("--fan-in", 3)?;
            if fan_in == 0 {
                return Err(usage("--fan-in must be positive"));
            }
            Ok(Command::Stream {
                family,
                nodes,
                seed: opts.parse_num("--seed", 7)?,
                fan_in,
                scheduler: resolve_scheduler(opts.get("--scheduler").unwrap_or("topo-window"))?,
                budget: budget()?,
            })
        }
        "min-memory" => {
            let w = workload()?;
            Ok(Command::MinMemory {
                workload: w,
                scheme,
                scheduler: scheduler(&w)?,
            })
        }
        "sweep" => {
            if opts.get("--proc-budgets").is_some() {
                return Err(usage(
                    "--proc-budgets applies to schedule only; sweep varies the \
                     per-processor budget itself (use --procs)",
                ));
            }
            let w = workload()?;
            Ok(Command::Sweep {
                workload: w,
                scheme,
                scheduler: scheduler(&w)?,
                points: opts.parse_num("--points", 20)?,
                procs: procs()?,
                comm_price: opts.parse_num("--comm-price", DEFAULT_COMM_PRICE)?,
            })
        }
        "exact" => {
            let w = workload()?;
            let heuristic = match opts.get("--heuristic") {
                None => Heuristic::default(),
                Some(s) => Heuristic::parse(s).ok_or_else(|| {
                    usage(format!(
                        "unknown --heuristic {s} (none|remaining-work|forced-reload|landmark-pdb)"
                    ))
                })?,
            };
            let symmetry = !opts.flag("--no-symmetry");
            let wl_symmetry = match opts.get("--wl-symmetry") {
                None => symmetry,
                Some("on") if !symmetry => {
                    return Err(usage(
                        "--wl-symmetry on conflicts with --no-symmetry (the WL lever \
                         extends twin symmetry; it cannot run without it)",
                    ))
                }
                Some("on") => true,
                Some("off") => false,
                Some(s) => return Err(usage(format!("unknown --wl-symmetry {s} (on|off)"))),
            };
            Ok(Command::Exact {
                workload: w,
                scheme,
                budget: budget()?,
                heuristic,
                dominance: !opts.flag("--no-dominance"),
                tighten: !opts.flag("--no-tighten"),
                symmetry,
                wl_symmetry,
                partial_expansion: !opts.flag("--no-partial-expansion"),
                max_states: opts.parse_num("--max-states", 5_000_000)?,
            })
        }
        "synth" => Ok(Command::Synth {
            bits: opts
                .get("--bits")
                .ok_or_else(|| usage("missing --bits"))?
                .parse()
                .map_err(|_| usage("invalid --bits"))?,
            word,
        }),
        "dot" => Ok(Command::Dot {
            workload: workload()?,
            scheme,
        }),
        "trace" => {
            let w = workload()?;
            Ok(Command::Trace {
                workload: w,
                scheme,
                scheduler: scheduler(&w)?,
                budget: budget()?,
            })
        }
        "serve" => {
            let queue_depth: usize = opts.parse_num("--queue-depth", 64)?;
            if queue_depth == 0 {
                return Err(usage("--queue-depth must be positive"));
            }
            Ok(Command::Serve {
                socket: opts.get("--socket").map(String::from),
                queue_depth,
                workers: opts.parse_num("--workers", 0)?,
                cache: !opts.flag("--no-cache"),
            })
        }
        "telemetry-report" => {
            let path = argv
                .get(1)
                .filter(|s| !s.starts_with("--"))
                .cloned()
                .ok_or_else(|| usage("telemetry-report requires a JSONL file argument"))?;
            Ok(Command::TelemetryReport { path })
        }
        "-h" | "--help" | "help" => Err(usage("help requested")),
        other => Err(usage(format!("unknown command: {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_schedule_with_word_budget() {
        let c = parse(&argv(
            "schedule --workload dwt --n 256 --d 8 --weights equal --budget 10w",
        ))
        .unwrap();
        match c {
            Command::Schedule {
                workload: Workload::Dwt { n: 256, d: 8 },
                machine,
                scheduler: "dwt-opt",
                emit: false,
                optimize: false,
                ..
            } => assert_eq!(machine, MachineSpec::uniprocessor(160)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiprocessor_flags_build_the_machine() {
        // --procs with a shared --budget: symmetric machine.
        let c = parse(&argv(
            "schedule --workload dwt --n 16 --d 2 --budget 10w --procs 4 --comm-price 3",
        ))
        .unwrap();
        match c {
            Command::Schedule { machine, .. } => {
                assert_eq!(machine, MachineSpec::symmetric(4, 160).with_comm_price(3));
            }
            other => panic!("unexpected {other:?}"),
        }

        // --proc-budgets: heterogeneous, word suffixes allowed, default
        // communication price.
        let c = parse(&argv(
            "schedule --workload dwt --n 16 --d 2 --proc-budgets 12w,64",
        ))
        .unwrap();
        match c {
            Command::Schedule { machine, .. } => {
                assert_eq!(machine.num_procs(), 2);
                assert_eq!((machine.proc_budget(0), machine.proc_budget(1)), (192, 64));
                assert_eq!(machine.comm_price(), DEFAULT_COMM_PRICE);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Sweep accepts --procs / --comm-price.
        match parse(&argv("sweep --workload dwt --n 16 --d 2 --procs 2")).unwrap() {
            Command::Sweep {
                procs: 2,
                comm_price: DEFAULT_COMM_PRICE,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inconsistent_multiprocessor_flags_are_usage_errors() {
        for bad in [
            // Zero processors.
            "schedule --workload dwt --n 16 --d 2 --budget 10w --procs 0",
            "sweep --workload dwt --n 16 --d 2 --procs 0",
            // Count disagrees with the explicit budget list.
            "schedule --workload dwt --n 16 --d 2 --procs 3 --proc-budgets 64,64",
            // Scalar and per-processor budgets both given.
            "schedule --workload dwt --n 16 --d 2 --budget 64 --proc-budgets 64,64",
            // Unparseable list entry.
            "schedule --workload dwt --n 16 --d 2 --proc-budgets 64,nope",
            // Sweep generates its own budgets; a fixed list is a mistake.
            "sweep --workload dwt --n 16 --d 2 --proc-budgets 64,64",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad}: {err}");
        }
    }

    #[test]
    fn default_d_is_max_level() {
        let c = parse(&argv("dot --workload dwt --n 96")).unwrap();
        match c {
            Command::Dot {
                workload: Workload::Dwt { n: 96, d: 5 },
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mvm_defaults() {
        let c = parse(&argv("min-memory --workload mvm --weights da")).unwrap();
        match c {
            Command::MinMemory {
                workload: Workload::Mvm { m: 96, n: 120 },
                scheduler: "mvm-tiling",
                scheme: WeightScheme::DoubleAccumulator(16),
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn banded_defaults_to_streaming() {
        let c = parse(&argv(
            "schedule --workload banded --n 32 --bandwidth 3 --budget 40w",
        ))
        .unwrap();
        match c {
            Command::Schedule {
                workload:
                    Workload::Banded {
                        n: 32,
                        bandwidth: 3,
                    },
                scheduler: "banded-stream",
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scheduler_aliases_resolve_to_registry_names() {
        for (alias, name) in [
            ("opt", "dwt-opt"),
            ("optimal", "dwt-opt"),
            ("lbl", "layer-by-layer"),
            ("tiling", "mvm-tiling"),
            ("stream", "conv-stream"),
            ("banded", "banded-stream"),
            ("belady", "greedy-belady"),
            // Registry names pass through untouched.
            ("naive", "naive"),
            ("kary", "kary"),
            ("greedy-belady", "greedy-belady"),
        ] {
            assert_eq!(resolve_scheduler(alias).unwrap(), name, "{alias}");
        }
    }

    #[test]
    fn unknown_scheduler_is_a_usage_error_listing_valid_names() {
        let err = resolve_scheduler("warp-drive").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        for name in api::registry().iter().map(|s| s.name()) {
            assert!(msg.contains(name), "{msg} must list {name}");
        }
        // End-to-end: the schedule command surfaces the same error.
        let err = parse(&argv(
            "schedule --workload dwt --n 8 --d 3 --budget 200 --scheduler warp-drive",
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("valid names"));
    }

    #[test]
    fn stream_parses_with_defaults_and_aliases() {
        match parse(&argv("stream --budget 64w")).unwrap() {
            Command::Stream {
                family: StreamFamily::Layered,
                nodes: 1_000_000,
                seed: 7,
                fan_in: 3,
                scheduler: "topo-window",
                budget: 1024,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "stream --family dwt --nodes 100000 --scheduler slab --budget 4096",
        ))
        .unwrap()
        {
            Command::Stream {
                family: StreamFamily::Dwt,
                nodes: 100_000,
                scheduler: "slab-partition",
                budget: 4096,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(resolve_scheduler("window").unwrap(), "topo-window");
        assert!(parse(&argv("stream --family fft --budget 64w")).is_err());
        assert!(parse(&argv("stream --nodes 4 --budget 64w")).is_err());
        assert!(parse(&argv("stream --fan-in 0 --budget 64w")).is_err());
        assert!(parse(&argv("stream")).is_err()); // budget is required
    }

    #[test]
    fn serve_parses_with_defaults_and_flags() {
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                socket: None,
                queue_depth: 64,
                workers: 0,
                cache: true,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv(
            "serve --socket /tmp/p.sock --queue-depth 8 --workers 2 --no-cache",
        ))
        .unwrap()
        {
            Command::Serve {
                socket: Some(s),
                queue_depth: 8,
                workers: 2,
                cache: false,
            } => assert_eq!(s, "/tmp/p.sock"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv("serve --queue-depth 0"))
                .unwrap_err()
                .exit_code(),
            2
        );
    }

    #[test]
    fn rejects_unknown_bits() {
        assert!(parse(&argv("schedule --workload dwt --budget nope")).is_err());
        assert!(parse(&argv("schedule --workload fft --budget 10w")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parse_failures_are_usage_errors() {
        for bad in [
            "frobnicate",
            "help",
            "schedule --workload dwt --budget nope",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
    }
}
