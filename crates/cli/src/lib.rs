pub fn stub() {}
