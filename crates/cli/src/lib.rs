//! Library surface of the `pebblyn` CLI — argument parsing, typed errors
//! and command implementations, exposed so integration tests can exercise
//! parsing and exit-code mapping without spawning the binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use error::CliError;
