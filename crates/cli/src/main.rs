//! `pebblyn` — command-line driver for the WRBPG toolkit.
//!
//! ```text
//! pebblyn schedule  --workload dwt --n 256 --d 8 --weights equal --budget 10w
//! pebblyn min-memory --workload mvm --m 96 --cols 120 --weights da
//! pebblyn sweep     --workload dwt --n 256 --d 8 --points 20
//! pebblyn synth     --bits 2048
//! pebblyn dot       --workload dwt --n 8 --d 3
//! ```

use pebblyn_cli::{args, commands, CliError};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = args::parse(&argv).and_then(commands::run) {
        if matches!(e, CliError::Usage(_)) {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
        } else {
            eprintln!("error: {e}");
        }
        std::process::exit(e.exit_code());
    }
}
