//! `pebblyn` — command-line driver for the WRBPG toolkit.
//!
//! ```text
//! pebblyn schedule  --workload dwt --n 256 --d 8 --weights equal --budget 10w
//! pebblyn min-memory --workload mvm --m 96 --cols 120 --weights da
//! pebblyn sweep     --workload dwt --n 256 --d 8 --points 20
//! pebblyn exact     --workload dwt --n 8 --d 3 --budget 7w --telemetry run.jsonl
//! pebblyn serve     --socket /tmp/pebblyn.sock --queue-depth 64
//! pebblyn telemetry-report run.jsonl
//! pebblyn synth     --bits 2048
//! pebblyn dot       --workload dwt --n 8 --d 3
//! ```

use pebblyn::telemetry;
use pebblyn_cli::{args, commands, CliError};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = args::parse_invocation(&argv).and_then(|inv| {
        if let Some(path) = &inv.telemetry {
            telemetry::enable();
            let sink = telemetry::JsonlSink::create(path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?;
            telemetry::install_sink(Box::new(sink));
        }
        let label = inv.command.name();
        let out = commands::run(inv.command);
        // Flush even on a runtime error: a partial run's counters are
        // exactly what post-mortems want. No-op when telemetry is off.
        telemetry::flush_run(label);
        out
    });
    if let Err(e) = result {
        if matches!(e, CliError::Usage(_)) {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
        } else {
            eprintln!("error: {e}");
        }
        std::process::exit(e.exit_code());
    }
}
