//! # pebblyn-baselines — analytic bounds from prior work
//!
//! The paper compares its MVM tiling schedules against **IOOpt**
//! (Olivry et al., PLDI'20/'21), a polyhedral tool that derives parametric
//! I/O lower and upper bounds for affine loop nests.  IOOpt itself is not
//! reproducible here (and §5.2 explains it cannot handle recursive dataflows
//! like the DWT, nor weighted/mixed-precision schedules), so this crate
//! implements the *model* of IOOpt's behaviour that the paper uses for its
//! comparison, including the paper's Double-Accumulator adaptations:
//!
//! * **Lower bound** — every matrix entry, vector entry and output touched
//!   once; for the DA configuration the output term is doubled (the paper
//!   doubles each accumulator output's weight in the bound).
//! * **Upper bound** — IOOpt's tiling with its fixed fast-memory split:
//!   roughly half the memory to outputs, half to inputs.  The vector is
//!   re-read once per output tile pass, and each of the `m` outputs is both
//!   read and written.  For DA, all non-input/output movements are
//!   double-weighted and the budget is grown by an extra accumulator
//!   allocation, matching §5.2's description.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ioopt;

pub use ioopt::IoOptMvmModel;
