//! The IOOpt MVM bound model (§5.1–5.2 of the paper).

use pebblyn_core::Weight;
use pebblyn_graphs::{MvmGraph, WeightScheme};

/// Parametric IOOpt-style lower/upper I/O bounds for `MVM(m, n)`.
///
/// All costs are in bits, budgets in bits, consistent with the rest of the
/// workspace.  See the crate docs for the modelling assumptions, which
/// follow the paper's description of how IOOpt's bounds were adapted for
/// the weighted comparison.
#[derive(Debug, Clone, Copy)]
pub struct IoOptMvmModel {
    m: usize,
    n: usize,
    scheme: WeightScheme,
}

impl IoOptMvmModel {
    /// Model for an `MVM(m, n)` workload under a weight scheme.
    pub fn new(m: usize, n: usize, scheme: WeightScheme) -> Self {
        IoOptMvmModel { m, n, scheme }
    }

    /// Model matching an existing graph's parameters.
    pub fn for_graph(mvm: &MvmGraph) -> Self {
        Self::new(mvm.m(), mvm.n(), mvm.scheme())
    }

    fn w_in(&self) -> Weight {
        self.scheme.input_weight()
    }

    fn w_acc(&self) -> Weight {
        self.scheme.compute_weight()
    }

    /// The IOOpt lower bound, adapted per §5.2: inputs touched once plus
    /// outputs once, with the output term weighted by the (possibly doubled)
    /// accumulator width.  Parametrically flat in the fast memory size for
    /// MVM, whose matrix entries have no reuse.
    pub fn lower_bound(&self, _fast_memory_bits: Weight) -> Weight {
        let (m, n) = (self.m as Weight, self.n as Weight);
        m * n * self.w_in() + n * self.w_in() + m * self.w_acc()
    }

    /// Number of accumulators IOOpt's fixed memory split can hold at the
    /// given fast memory size.
    ///
    /// IOOpt reserves just under half the memory for outputs; for the
    /// Double-Accumulator adaptation the paper grows the budget by an extra
    /// accumulator allocation, i.e. outputs get two thirds.
    pub fn accumulators_at(&self, fast_memory_bits: Weight) -> usize {
        let staged = fast_memory_bits.saturating_sub(self.w_in());
        let out_bits = match self.scheme {
            WeightScheme::DoubleAccumulator(_) => 2 * staged / 3,
            _ => staged / 2,
        };
        ((out_bits / self.w_acc()) as usize).min(self.m)
    }

    /// The smallest input-half allocation at which IOOpt's tiles are
    /// realisable: one vector word, one matrix word and one product must
    /// stream through the input side.
    fn min_input_alloc(&self) -> Weight {
        2 * self.w_in() + self.w_acc()
    }

    /// The IOOpt upper bound at a fast memory size, or `None` when the
    /// split cannot hold one accumulator plus a working input set.
    ///
    /// `matrix once + vector re-read per output pass + outputs read AND
    /// written` — the last term is the structural inefficiency §5.2 calls
    /// out (the tiling scheduler writes each output exactly once instead).
    pub fn upper_bound(&self, fast_memory_bits: Weight) -> Option<Weight> {
        let t_out = self.accumulators_at(fast_memory_bits);
        if t_out == 0 {
            return None;
        }
        let staged = fast_memory_bits.saturating_sub(self.w_in());
        let in_alloc = match self.scheme {
            WeightScheme::DoubleAccumulator(_) => staged / 3,
            _ => staged / 2,
        };
        if in_alloc < self.min_input_alloc() {
            return None;
        }
        let (m, n) = (self.m as Weight, self.n as Weight);
        // With the whole vector resident in the input half it is read once;
        // otherwise once per output-tile pass.
        let passes = if in_alloc >= n * self.w_in() {
            1
        } else {
            m.div_ceil(t_out as Weight)
        };
        Some(m * n * self.w_in() + passes * n * self.w_in() + 2 * m * self.w_acc())
    }

    /// The smallest fast memory size (bits) at which the upper bound
    /// flattens — either a single output pass (the output half holds all
    /// `m` accumulators) or a fully resident vector (the input half holds
    /// all `n` words).  These are the paper's "IOOpt UB" minimum-memory
    /// entries in Table 1 / Figure 6.
    pub fn min_memory(&self) -> Weight {
        let single_pass = self.m as Weight * self.w_acc();
        let resident_vec = (self.n as Weight * self.w_in()).max(self.min_input_alloc());
        let staged = match self.scheme {
            // DA: outputs take 2/3 of the staged budget, inputs 1/3.
            WeightScheme::DoubleAccumulator(_) => {
                (single_pass.div_ceil(2) * 3).min(resident_vec * 3)
            }
            _ => (single_pass * 2).min(resident_vec * 2),
        };
        staged + self.w_in()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::algorithmic_lower_bound;

    #[test]
    fn table_1_equal_min_memory() {
        let model = IoOptMvmModel::new(96, 120, WeightScheme::Equal(16));
        assert_eq!(model.min_memory(), 193 * 16);
    }

    #[test]
    fn table_1_double_accumulator_min_memory() {
        let model = IoOptMvmModel::new(96, 120, WeightScheme::DoubleAccumulator(16));
        assert_eq!(model.min_memory(), 289 * 16);
    }

    #[test]
    fn bounds_bracket_reality() {
        // The model's LB never exceeds its UB, and the UB decreases with
        // memory until it flattens at min_memory().
        for scheme in WeightScheme::paper_configs() {
            let model = IoOptMvmModel::new(96, 120, scheme);
            let mut prev = None;
            let mut s = 4 * 16;
            while s <= 4096 * 16 {
                if let Some(ub) = model.upper_bound(s) {
                    assert!(model.lower_bound(s) <= ub, "LB > UB at {s}");
                    if let Some(p) = prev {
                        assert!(ub <= p, "UB increased with memory at {s}");
                    }
                    prev = Some(ub);
                }
                s += 16;
            }
            let flat = model.upper_bound(model.min_memory()).unwrap();
            assert_eq!(
                flat,
                model.upper_bound(1 << 30).unwrap(),
                "UB must be flat beyond min_memory"
            );
        }
    }

    #[test]
    fn lower_bound_tracks_algorithmic_bound() {
        // Equal: IOOpt's LB equals the algorithmic bound; DA: it exceeds it
        // by the doubled output term... which is exactly the algorithmic
        // bound too (outputs weigh w_acc in the graph). Check both.
        for scheme in WeightScheme::paper_configs() {
            let mvm = MvmGraph::new(8, 5, scheme).unwrap();
            let model = IoOptMvmModel::for_graph(&mvm);
            assert_eq!(model.lower_bound(1024), algorithmic_lower_bound(mvm.cdag()));
        }
    }

    #[test]
    fn ub_exceeds_lb_by_the_output_reread() {
        let model = IoOptMvmModel::new(96, 120, WeightScheme::Equal(16));
        let s = model.min_memory();
        // At the flattening point: UB - LB = m * w_acc (outputs read again).
        assert_eq!(
            model.upper_bound(s).unwrap() - model.lower_bound(s),
            96 * 16
        );
    }

    #[test]
    fn accumulators_never_exceed_m() {
        let model = IoOptMvmModel::new(8, 5, WeightScheme::Equal(16));
        assert_eq!(model.accumulators_at(1 << 20), 8);
        assert_eq!(model.accumulators_at(0), 0);
    }
}
