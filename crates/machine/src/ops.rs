//! Arithmetic operations bound to CDAG nodes.

use pebblyn_core::{Cdag, NodeId};

/// The operation a node performs on its predecessors' values.
///
/// Operand order follows the CDAG's predecessor order.  `LinCom` covers the
/// DWT's scaled sums/differences and MVM's accumulations; `Prod` covers
/// MVM's elementwise products.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Source node: its value comes from the input environment.
    Input,
    /// Linear combination `Σ coeffs[i] · operand[i]`.
    /// `coeffs.len()` must equal the node's in-degree.
    LinCom(Vec<f64>),
    /// Product of all operands.
    Prod,
}

/// A table binding every node of a CDAG to an [`Op`].
#[derive(Clone, Debug)]
pub struct OpTable {
    ops: Vec<Op>,
}

impl OpTable {
    /// Build a table from one op per node (in node-id order).
    ///
    /// Checks arity: sources must be `Input`, `LinCom` coefficient counts
    /// must match in-degrees, `Prod` needs in-degree ≥ 1.
    pub fn new(graph: &Cdag, ops: Vec<Op>) -> Result<Self, String> {
        if ops.len() != graph.len() {
            return Err(format!(
                "op table has {} entries for {} nodes",
                ops.len(),
                graph.len()
            ));
        }
        for v in graph.nodes() {
            let op = &ops[v.index()];
            let indeg = graph.in_degree(v);
            match op {
                Op::Input => {
                    if indeg != 0 {
                        return Err(format!("non-source node {v} marked Input"));
                    }
                }
                Op::LinCom(c) => {
                    if c.len() != indeg {
                        return Err(format!(
                            "node {v}: LinCom has {} coeffs for in-degree {indeg}",
                            c.len()
                        ));
                    }
                    if indeg == 0 {
                        return Err(format!("source node {v} must be Input"));
                    }
                }
                Op::Prod => {
                    if indeg == 0 {
                        return Err(format!("source node {v} must be Input"));
                    }
                }
            }
        }
        Ok(OpTable { ops })
    }

    /// The op bound to node `v`.
    #[inline]
    pub fn op(&self, v: NodeId) -> &Op {
        &self.ops[v.index()]
    }

    /// Evaluate node `v` given its operand values (in predecessor order).
    ///
    /// Panics if called on an `Input` node — inputs have no operands.
    pub fn eval(&self, v: NodeId, operands: &[f64]) -> f64 {
        match &self.ops[v.index()] {
            Op::Input => panic!("eval called on input node {v}"),
            Op::LinCom(coeffs) => coeffs.iter().zip(operands).map(|(c, x)| c * x).sum(),
            Op::Prod => operands.iter().product(),
        }
    }
}

/// Reference (schedule-free) evaluation of the whole CDAG: every node's value
/// in topological order, given the input environment `inputs[v.index()]`
/// (entries for non-source nodes are ignored).
pub fn eval_reference(graph: &Cdag, ops: &OpTable, inputs: &[f64]) -> Vec<f64> {
    assert_eq!(inputs.len(), graph.len(), "one input slot per node");
    let mut vals = vec![0.0; graph.len()];
    for &v in graph.topo_order() {
        if graph.is_source(v) {
            vals[v.index()] = inputs[v.index()];
        } else {
            let operands: Vec<f64> = graph.preds(v).iter().map(|p| vals[p.index()]).collect();
            vals[v.index()] = ops.eval(v, &operands);
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::CdagBuilder;

    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(16, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    #[test]
    fn lincom_and_prod_evaluate() {
        let g = add_graph();
        let t = OpTable::new(&g, vec![Op::Input, Op::Input, Op::LinCom(vec![1.0, -1.0])]).unwrap();
        let vals = eval_reference(&g, &t, &[5.0, 3.0, 0.0]);
        assert_eq!(vals[2], 2.0);

        let t2 = OpTable::new(&g, vec![Op::Input, Op::Input, Op::Prod]).unwrap();
        let vals2 = eval_reference(&g, &t2, &[5.0, 3.0, 0.0]);
        assert_eq!(vals2[2], 15.0);
    }

    #[test]
    fn arity_checks() {
        let g = add_graph();
        assert!(OpTable::new(&g, vec![Op::Input, Op::Input]).is_err());
        assert!(OpTable::new(&g, vec![Op::Input, Op::Input, Op::LinCom(vec![1.0])]).is_err());
        assert!(OpTable::new(&g, vec![Op::Input, Op::Prod, Op::Prod]).is_err());
        assert!(
            OpTable::new(&g, vec![Op::Input, Op::Input, Op::Input]).is_err(),
            "non-source marked Input"
        );
    }

    #[test]
    fn reference_eval_handles_depth() {
        // x -> a -> b  with a = 2x, b = 3a.
        let mut bld = CdagBuilder::new();
        let x = bld.node(16, "x");
        let a = bld.node(16, "a");
        let b = bld.node(16, "b");
        bld.edge(x, a);
        bld.edge(a, b);
        let g = bld.build().unwrap();
        let t = OpTable::new(
            &g,
            vec![Op::Input, Op::LinCom(vec![2.0]), Op::LinCom(vec![3.0])],
        )
        .unwrap();
        let vals = eval_reference(&g, &t, &[1.5, 0.0, 0.0]);
        assert_eq!(vals, vec![1.5, 3.0, 9.0]);
    }
}
