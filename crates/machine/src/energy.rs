//! Data-movement energy model.
//!
//! The paper's motivation is energy: in implanted BCIs, the weighted
//! schedule cost is a direct proxy for transfer energy between SRAM and
//! slow non-volatile memory.  This module converts a schedule's transfer
//! profile into joules under a simple per-bit model, with defaults in the
//! range reported for 65 nm SRAM + embedded Flash systems.

use pebblyn_core::Weight;

/// Per-bit and per-op energy parameters (picojoules).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy to move one bit slow → fast (M1), pJ.
    pub load_pj_per_bit: f64,
    /// Energy to move one bit fast → slow (M2), pJ.
    pub store_pj_per_bit: f64,
    /// Energy of one compute operation (M3), pJ.
    pub compute_pj_per_op: f64,
}

impl Default for EnergyModel {
    /// Defaults representative of a 65 nm implantable system: reading
    /// embedded Flash ≈ 1 pJ/bit, writing ≈ 10 pJ/bit (writes are much more
    /// expensive in NVM), a 16/32-bit add/multiply ≈ 0.5 pJ.
    fn default() -> Self {
        EnergyModel {
            load_pj_per_bit: 1.0,
            store_pj_per_bit: 10.0,
            compute_pj_per_op: 0.5,
        }
    }
}

impl EnergyModel {
    /// Total energy in picojoules for the given transfer/compute profile.
    pub fn total_pj(&self, loaded_bits: Weight, stored_bits: Weight, computes: usize) -> f64 {
        self.load_pj_per_bit * loaded_bits as f64
            + self.store_pj_per_bit * stored_bits as f64
            + self.compute_pj_per_op * computes as f64
    }
}

/// Energy breakdown of an executed schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Bits moved slow → fast (M1 total).
    pub loaded_bits: Weight,
    /// Bits moved fast → slow (M2 total).
    pub stored_bits: Weight,
    /// Number of compute (M3) moves.
    pub computes: usize,
    /// Energy spent on loads, pJ.
    pub load_pj: f64,
    /// Energy spent on stores, pJ.
    pub store_pj: f64,
    /// Energy spent on computation, pJ.
    pub compute_pj: f64,
}

impl EnergyReport {
    /// Assemble a report from a transfer profile and a model.
    pub fn from_profile(
        model: &EnergyModel,
        loaded_bits: Weight,
        stored_bits: Weight,
        computes: usize,
    ) -> Self {
        EnergyReport {
            loaded_bits,
            stored_bits,
            computes,
            load_pj: model.load_pj_per_bit * loaded_bits as f64,
            store_pj: model.store_pj_per_bit * stored_bits as f64,
            compute_pj: model.compute_pj_per_op * computes as f64,
        }
    }

    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.load_pj + self.store_pj + self.compute_pj
    }

    /// Fraction of energy spent moving data rather than computing.
    pub fn movement_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.load_pj + self.store_pj) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_price_stores_higher() {
        let m = EnergyModel::default();
        assert!(m.store_pj_per_bit > m.load_pj_per_bit);
        assert_eq!(m.total_pj(100, 10, 4), 100.0 + 100.0 + 2.0);
    }

    #[test]
    fn report_totals_add_up() {
        let m = EnergyModel::default();
        let r = EnergyReport::from_profile(&m, 64, 32, 8);
        assert_eq!(r.total_pj(), 64.0 + 320.0 + 4.0);
        assert!(r.movement_fraction() > 0.98);
    }

    #[test]
    fn zero_profile_has_zero_fraction() {
        let r = EnergyReport::from_profile(&EnergyModel::default(), 0, 0, 0);
        assert_eq!(r.movement_fraction(), 0.0);
    }
}
