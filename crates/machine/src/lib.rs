//! # pebblyn-machine — a two-level memory machine for WRBPG schedules
//!
//! The WRBPG abstracts a system with a small fast memory (SRAM) backed by a
//! large slow memory (e.g. non-volatile Flash in implanted BCIs).  This crate
//! makes that abstraction executable: a [`Machine`] replays a schedule
//! move-by-move, maintaining actual *values* in both memories and evaluating
//! each node's arithmetic [`Op`] when it is computed (M3).
//!
//! Running a schedule on the machine proves three things at once:
//!
//! 1. the schedule respects the game rules and the weighted budget
//!    (the machine enforces both, independently of
//!    [`pebblyn_core::validate_schedule`]),
//! 2. the schedule really computes the workload — output values must match a
//!    direct reference evaluation,
//! 3. the exact data-movement energy of the schedule under a per-bit
//!    transfer-energy model ([`EnergyModel`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod exec;
pub mod multi_exec;
pub mod ops;

pub use energy::{EnergyModel, EnergyReport};
pub use exec::{ExecError, ExecReport, Machine};
pub use multi_exec::{MultiExecError, MultiExecReport, MultiMachine};
pub use ops::{eval_reference, Op, OpTable};
