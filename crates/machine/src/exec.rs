//! The executable two-level memory machine.

use crate::energy::{EnergyModel, EnergyReport};
use crate::ops::OpTable;
use pebblyn_core::{Cdag, Move, NodeId, RedSet, Schedule, Weight};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while executing a schedule on the machine.
///
/// The machine performs the same rule checks as
/// [`pebblyn_core::validate_schedule`] but phrased operationally (a value
/// must exist in a memory before it can be copied or used).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// M1 on a node whose value is not in slow memory.
    MissingInSlow(usize, NodeId),
    /// M2/M4 on a node whose value is not in fast memory.
    MissingInFast(usize, NodeId),
    /// M3 on a node with an operand missing from fast memory.
    OperandNotResident(usize, NodeId, NodeId),
    /// M3 on a source node.
    ComputeSource(usize, NodeId),
    /// Fast memory capacity (the weighted budget) exceeded.
    FastMemoryOverflow {
        /// Move index.
        step: usize,
        /// Bits in use after the move.
        used: Weight,
        /// Capacity in bits.
        capacity: Weight,
    },
    /// Schedule ended with an output missing from slow memory.
    OutputNotStored(NodeId),
    /// An output value disagrees with the reference evaluation.
    WrongOutput {
        /// The output node.
        node: NodeId,
        /// Value the machine produced.
        got: f64,
        /// Value reference evaluation produced.
        expected: f64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingInSlow(s, v) => write!(f, "step {s}: {v} not in slow memory"),
            ExecError::MissingInFast(s, v) => write!(f, "step {s}: {v} not in fast memory"),
            ExecError::OperandNotResident(s, v, p) => {
                write!(f, "step {s}: computing {v} but operand {p} not resident")
            }
            ExecError::ComputeSource(s, v) => write!(f, "step {s}: cannot compute source {v}"),
            ExecError::FastMemoryOverflow {
                step,
                used,
                capacity,
            } => write!(
                f,
                "step {step}: fast memory overflow ({used} > {capacity} bits)"
            ),
            ExecError::OutputNotStored(v) => write!(f, "output {v} never stored to slow memory"),
            ExecError::WrongOutput {
                node,
                got,
                expected,
            } => write!(f, "output {node} = {got}, expected {expected}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution summary: what the machine measured while running a schedule.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Weighted I/O cost actually incurred (must equal the schedule's
    /// declared cost).
    pub io_bits: Weight,
    /// Peak fast-memory occupancy in bits.
    pub peak_fast_bits: Weight,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Final value of every sink node, keyed by node.
    pub outputs: HashMap<NodeId, f64>,
}

/// A two-level memory machine executing WRBPG schedules with real values.
#[derive(Debug, Clone)]
pub struct Machine<'a> {
    graph: &'a Cdag,
    ops: &'a OpTable,
    capacity: Weight,
    energy_model: EnergyModel,
}

impl<'a> Machine<'a> {
    /// Create a machine with `capacity` bits of fast memory.
    pub fn new(graph: &'a Cdag, ops: &'a OpTable, capacity: Weight) -> Self {
        Machine {
            graph,
            ops,
            capacity,
            energy_model: EnergyModel::default(),
        }
    }

    /// Replace the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Execute `schedule` with the given input environment
    /// (`inputs[v.index()]` for each source `v`; other slots ignored).
    ///
    /// Verifies, operationally: game rules, weighted capacity at every step,
    /// the stopping condition, and — against a schedule-free reference
    /// evaluation — that every output holds the correct value.
    pub fn run(&self, schedule: &Schedule, inputs: &[f64]) -> Result<ExecReport, ExecError> {
        self.run_moves(schedule.iter(), inputs)
    }

    /// Streaming form of [`Machine::run`]: executes any move sequence
    /// without materializing it.
    ///
    /// Memory state is flat — one value slot per node for each memory level
    /// plus two [`RedSet`] residency bitsets — so no per-move hashing or
    /// allocation happens while replaying.
    pub fn run_moves(
        &self,
        moves: impl IntoIterator<Item = Move>,
        inputs: &[f64],
    ) -> Result<ExecReport, ExecError> {
        let g = self.graph;
        assert_eq!(inputs.len(), g.len(), "one input slot per node");

        let reference = crate::ops::eval_reference(g, self.ops, inputs);

        // One value slot per node and memory level; the bitsets decide
        // which slots are live.  Slow memory starts holding all inputs
        // (the starting condition).
        let mut slow_vals = vec![0.0f64; g.len()];
        let mut fast_vals = vec![0.0f64; g.len()];
        let mut in_slow = RedSet::new(g.len());
        let mut in_fast = RedSet::new(g.len());
        for &v in g.sources() {
            slow_vals[v.index()] = inputs[v.index()];
            in_slow.insert(v, g.weight(v));
        }
        let mut peak: Weight = 0;
        let mut loaded_bits: Weight = 0;
        let mut stored_bits: Weight = 0;
        let mut computes = 0usize;
        let mut operands: Vec<f64> = Vec::new();

        for (step, mv) in moves.into_iter().enumerate() {
            let v = mv.node();
            let w = g.weight(v);
            match mv {
                Move::Load(_) => {
                    if !in_slow.contains(v) {
                        return Err(ExecError::MissingInSlow(step, v));
                    }
                    fast_vals[v.index()] = slow_vals[v.index()];
                    in_fast.insert(v, w);
                    loaded_bits += w;
                }
                Move::Store(_) => {
                    if !in_fast.contains(v) {
                        return Err(ExecError::MissingInFast(step, v));
                    }
                    slow_vals[v.index()] = fast_vals[v.index()];
                    in_slow.insert(v, w);
                    stored_bits += w;
                }
                Move::Compute(_) => {
                    if g.is_source(v) {
                        return Err(ExecError::ComputeSource(step, v));
                    }
                    operands.clear();
                    for &p in g.preds(v) {
                        if !in_fast.contains(p) {
                            return Err(ExecError::OperandNotResident(step, v, p));
                        }
                        operands.push(fast_vals[p.index()]);
                    }
                    fast_vals[v.index()] = self.ops.eval(v, &operands);
                    in_fast.insert(v, w);
                    computes += 1;
                }
                Move::Delete(_) => {
                    if !in_fast.remove(v, w) {
                        return Err(ExecError::MissingInFast(step, v));
                    }
                }
            }
            if in_fast.weight() > self.capacity {
                return Err(ExecError::FastMemoryOverflow {
                    step,
                    used: in_fast.weight(),
                    capacity: self.capacity,
                });
            }
            peak = peak.max(in_fast.weight());
        }

        // Stopping condition + functional correctness of every output.
        let mut outputs = HashMap::new();
        for &v in self.graph.sinks() {
            if !in_slow.contains(v) {
                return Err(ExecError::OutputNotStored(v));
            }
            let got = slow_vals[v.index()];
            let expected = reference[v.index()];
            if !approx_eq(got, expected) {
                return Err(ExecError::WrongOutput {
                    node: v,
                    got,
                    expected,
                });
            }
            outputs.insert(v, got);
        }

        Ok(ExecReport {
            io_bits: loaded_bits + stored_bits,
            peak_fast_bits: peak,
            energy: EnergyReport::from_profile(
                &self.energy_model,
                loaded_bits,
                stored_bits,
                computes,
            ),
            outputs,
        })
    }
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use pebblyn_core::CdagBuilder;

    /// x, y -> s = x + y
    fn add_setup() -> (Cdag, OpTable) {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        let g = b.build().unwrap();
        let t = OpTable::new(&g, vec![Op::Input, Op::Input, Op::LinCom(vec![1.0, 1.0])]).unwrap();
        (g, t)
    }

    fn add_schedule() -> Schedule {
        Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
            Move::Delete(NodeId(2)),
        ])
    }

    #[test]
    fn executes_and_checks_output_values() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 64);
        let report = m.run(&add_schedule(), &[2.0, 3.0, 0.0]).unwrap();
        assert_eq!(report.io_bits, 64);
        assert_eq!(report.peak_fast_bits, 64);
        assert_eq!(report.outputs[&NodeId(2)], 5.0);
        assert_eq!(report.energy.loaded_bits, 32);
        assert_eq!(report.energy.stored_bits, 32);
        assert_eq!(report.energy.computes, 1);
    }

    #[test]
    fn capacity_overflow_detected() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 63);
        let err = m.run(&add_schedule(), &[2.0, 3.0, 0.0]).unwrap_err();
        assert!(matches!(err, ExecError::FastMemoryOverflow { .. }));
    }

    #[test]
    fn missing_operand_detected() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 100);
        let s = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(2))]);
        assert!(matches!(
            m.run(&s, &[1.0, 1.0, 0.0]).unwrap_err(),
            ExecError::OperandNotResident(_, NodeId(2), NodeId(1))
        ));
    }

    #[test]
    fn unstored_output_detected() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 100);
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
        ]);
        assert!(matches!(
            m.run(&s, &[1.0, 1.0, 0.0]).unwrap_err(),
            ExecError::OutputNotStored(NodeId(2))
        ));
    }

    #[test]
    fn load_requires_slow_residency() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 100);
        let s = Schedule::from_moves(vec![Move::Load(NodeId(2))]);
        assert!(matches!(
            m.run(&s, &[1.0, 1.0, 0.0]).unwrap_err(),
            ExecError::MissingInSlow(0, NodeId(2))
        ));
    }

    #[test]
    fn spill_and_reload_preserves_value() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 64);
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Store(NodeId(0)), // redundant but legal
            Move::Delete(NodeId(0)),
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
        ]);
        let report = m.run(&s, &[7.0, -2.0, 0.0]).unwrap();
        assert_eq!(report.outputs[&NodeId(2)], 5.0);
        assert_eq!(report.io_bits, 16 + 16 + 16 + 16 + 32);
    }

    #[test]
    fn double_load_does_not_leak_capacity() {
        let (g, t) = add_setup();
        let m = Machine::new(&g, &t, 64);
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
        ]);
        let report = m.run(&s, &[1.0, 1.0, 0.0]).unwrap();
        assert_eq!(report.peak_fast_bits, 64);
    }
}
