//! The executable multiprocessor machine: p fast memories, one slow level.
//!
//! [`MultiMachine`] is to [`crate::Machine`] what the multiprocessor WRBPG
//! is to the classic game: it replays a [`MultiSchedule`] with real values,
//! keeping one value array per processor's fast memory plus the shared
//! slow memory, evaluating each node's [`crate::Op`] on compute, copying
//! values processor-to-processor on communication moves, and checking
//! every output against a schedule-free reference evaluation.  It also
//! tracks the timing model (per-processor clocks, blue-availability
//! stamps) so the reported makespan is the *executed* makespan, which the
//! conformance oracle cross-checks against the validator's.

use crate::energy::{EnergyModel, EnergyReport};
use crate::ops::OpTable;
use pebblyn_core::{Cdag, MachineSpec, MultiMove, MultiSchedule, NodeId, RedSet, Weight};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while executing a multiprocessor schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiExecError {
    /// A move names a processor the machine does not have.
    UnknownProc {
        /// Move index.
        step: usize,
        /// The processor named.
        proc: usize,
        /// Number of processors.
        procs: usize,
    },
    /// M1 on a node whose value is not in slow memory.
    MissingInSlow(usize, NodeId),
    /// M2/M4/M5 on a node whose value is not in the acting processor's
    /// fast memory.
    MissingInFast(usize, usize, NodeId),
    /// M3 on a node with an operand missing from the acting processor's
    /// fast memory.
    OperandNotResident(usize, usize, NodeId, NodeId),
    /// M3 on a source node.
    ComputeSource(usize, NodeId),
    /// M5 from a processor to itself.
    CommToSelf(usize, NodeId),
    /// A processor's fast memory capacity exceeded.
    FastMemoryOverflow {
        /// Move index.
        step: usize,
        /// The overloaded processor.
        proc: usize,
        /// Bits in use after the move.
        used: Weight,
        /// The processor's capacity in bits.
        capacity: Weight,
    },
    /// Schedule ended with an output missing from slow memory.
    OutputNotStored(NodeId),
    /// An output value disagrees with the reference evaluation.
    WrongOutput {
        /// The output node.
        node: NodeId,
        /// Value the machine produced.
        got: f64,
        /// Value reference evaluation produced.
        expected: f64,
    },
}

impl fmt::Display for MultiExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiExecError::UnknownProc { step, proc, procs } => {
                write!(f, "step {step}: processor p{proc} >= machine size {procs}")
            }
            MultiExecError::MissingInSlow(s, v) => write!(f, "step {s}: {v} not in slow memory"),
            MultiExecError::MissingInFast(s, p, v) => {
                write!(f, "step {s}: {v} not in p{p}'s fast memory")
            }
            MultiExecError::OperandNotResident(s, p, v, u) => {
                write!(
                    f,
                    "step {s}: computing {v} on p{p} but operand {u} not resident"
                )
            }
            MultiExecError::ComputeSource(s, v) => write!(f, "step {s}: cannot compute source {v}"),
            MultiExecError::CommToSelf(s, v) => {
                write!(f, "step {s}: communicating {v} from a processor to itself")
            }
            MultiExecError::FastMemoryOverflow {
                step,
                proc,
                used,
                capacity,
            } => write!(
                f,
                "step {step}: p{proc} fast memory overflow ({used} > {capacity} bits)"
            ),
            MultiExecError::OutputNotStored(v) => {
                write!(f, "output {v} never stored to slow memory")
            }
            MultiExecError::WrongOutput {
                node,
                got,
                expected,
            } => write!(f, "output {node} = {got}, expected {expected}"),
        }
    }
}

impl std::error::Error for MultiExecError {}

/// Execution summary of a multiprocessor schedule.
#[derive(Debug, Clone)]
pub struct MultiExecReport {
    /// Weighted slow-memory I/O actually incurred (M1 + M2, all procs).
    pub io_bits: Weight,
    /// Priced communication traffic (`comm_price · w` per M5).
    pub comm_bits: Weight,
    /// Executed makespan under the timing model.
    pub makespan: Weight,
    /// Peak fast-memory occupancy per processor.
    pub peak_fast_bits: Vec<Weight>,
    /// Energy breakdown (communication priced as a store+load of the
    /// transferred bits).
    pub energy: EnergyReport,
    /// Final value of every sink node, keyed by node.
    pub outputs: HashMap<NodeId, f64>,
}

/// A p-processor two-level memory machine executing multiprocessor WRBPG
/// schedules with real values.
#[derive(Debug, Clone)]
pub struct MultiMachine<'a> {
    graph: &'a Cdag,
    ops: &'a OpTable,
    spec: MachineSpec,
    energy_model: EnergyModel,
}

impl<'a> MultiMachine<'a> {
    /// Create a machine from a [`MachineSpec`] (per-processor capacities
    /// plus the communication price).
    pub fn new(graph: &'a Cdag, ops: &'a OpTable, spec: MachineSpec) -> Self {
        MultiMachine {
            graph,
            ops,
            spec,
            energy_model: EnergyModel::default(),
        }
    }

    /// Replace the default energy model.
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Execute `schedule` with the given input environment
    /// (`inputs[v.index()]` for each source `v`; other slots ignored).
    ///
    /// Verifies, operationally: game rules on every processor, each
    /// processor's weighted capacity at every step, the stopping
    /// condition, and — against a schedule-free reference evaluation —
    /// that every output holds the correct value.
    pub fn run(
        &self,
        schedule: &MultiSchedule,
        inputs: &[f64],
    ) -> Result<MultiExecReport, MultiExecError> {
        let g = self.graph;
        let p = self.spec.num_procs();
        assert_eq!(inputs.len(), g.len(), "one input slot per node");

        let reference = crate::ops::eval_reference(g, self.ops, inputs);

        let mut slow_vals = vec![0.0f64; g.len()];
        let mut in_slow = RedSet::new(g.len());
        let mut fast_vals: Vec<Vec<f64>> = vec![vec![0.0f64; g.len()]; p];
        let mut in_fast: Vec<RedSet> = (0..p).map(|_| RedSet::new(g.len())).collect();
        let mut clock: Vec<Weight> = vec![0; p];
        let mut avail_slow: Vec<Weight> = vec![0; g.len()];
        for &v in g.sources() {
            slow_vals[v.index()] = inputs[v.index()];
            in_slow.insert(v, g.weight(v));
        }

        let mut peak: Vec<Weight> = vec![0; p];
        let mut loaded_bits: Weight = 0;
        let mut stored_bits: Weight = 0;
        let mut comm_bits: Weight = 0;
        let mut computes = 0usize;
        let mut operands: Vec<f64> = Vec::new();

        let check_proc = |step: usize, q: usize| -> Result<(), MultiExecError> {
            if q >= p {
                Err(MultiExecError::UnknownProc {
                    step,
                    proc: q,
                    procs: p,
                })
            } else {
                Ok(())
            }
        };

        for (step, mv) in schedule.iter().enumerate() {
            let v = mv.node();
            let w = g.weight(v);
            match mv {
                MultiMove::Load { proc, node } => {
                    check_proc(step, proc)?;
                    if !in_slow.contains(node) {
                        return Err(MultiExecError::MissingInSlow(step, node));
                    }
                    fast_vals[proc][node.index()] = slow_vals[node.index()];
                    in_fast[proc].insert(node, w);
                    loaded_bits += w;
                    clock[proc] = clock[proc].max(avail_slow[node.index()]) + w;
                }
                MultiMove::Store { proc, node } => {
                    check_proc(step, proc)?;
                    if !in_fast[proc].contains(node) {
                        return Err(MultiExecError::MissingInFast(step, proc, node));
                    }
                    slow_vals[node.index()] = fast_vals[proc][node.index()];
                    clock[proc] += w;
                    if in_slow.insert(node, w) {
                        avail_slow[node.index()] = clock[proc];
                    }
                    stored_bits += w;
                }
                MultiMove::Compute { proc, node } => {
                    check_proc(step, proc)?;
                    if g.is_source(node) {
                        return Err(MultiExecError::ComputeSource(step, node));
                    }
                    operands.clear();
                    for &u in g.preds(node) {
                        if !in_fast[proc].contains(u) {
                            return Err(MultiExecError::OperandNotResident(step, proc, node, u));
                        }
                        operands.push(fast_vals[proc][u.index()]);
                    }
                    fast_vals[proc][node.index()] = self.ops.eval(node, &operands);
                    in_fast[proc].insert(node, w);
                    clock[proc] += w;
                    computes += 1;
                }
                MultiMove::Delete { proc, node } => {
                    check_proc(step, proc)?;
                    if !in_fast[proc].remove(node, w) {
                        return Err(MultiExecError::MissingInFast(step, proc, node));
                    }
                }
                MultiMove::Comm { from, to, node } => {
                    check_proc(step, from)?;
                    check_proc(step, to)?;
                    if from == to {
                        return Err(MultiExecError::CommToSelf(step, node));
                    }
                    if !in_fast[from].contains(node) {
                        return Err(MultiExecError::MissingInFast(step, from, node));
                    }
                    fast_vals[to][node.index()] = fast_vals[from][node.index()];
                    in_fast[to].insert(node, w);
                    comm_bits += self.spec.comm_price() * w;
                    let t = clock[from].max(clock[to]) + self.spec.comm_price() * w;
                    clock[from] = t;
                    clock[to] = t;
                }
            }
            for q in 0..p {
                let used = in_fast[q].weight();
                if used > self.spec.proc_budget(q) {
                    return Err(MultiExecError::FastMemoryOverflow {
                        step,
                        proc: q,
                        used,
                        capacity: self.spec.proc_budget(q),
                    });
                }
                peak[q] = peak[q].max(used);
            }
        }

        // Stopping condition + functional correctness of every output.
        let mut outputs = HashMap::new();
        for &v in g.sinks() {
            if !in_slow.contains(v) {
                return Err(MultiExecError::OutputNotStored(v));
            }
            let got = slow_vals[v.index()];
            let expected = reference[v.index()];
            if !approx_eq(got, expected) {
                return Err(MultiExecError::WrongOutput {
                    node: v,
                    got,
                    expected,
                });
            }
            outputs.insert(v, got);
        }

        // Comm traffic enters the energy model as a store+load of the raw
        // transferred bits (comm_bits already carries the price factor).
        let comm_raw = comm_bits / self.spec.comm_price().max(1);
        Ok(MultiExecReport {
            io_bits: loaded_bits + stored_bits,
            comm_bits,
            makespan: clock.into_iter().max().unwrap_or(0),
            peak_fast_bits: peak,
            energy: EnergyReport::from_profile(
                &self.energy_model,
                loaded_bits + comm_raw,
                stored_bits + comm_raw,
                computes,
            ),
            outputs,
        })
    }
}

fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::Machine;
    use pebblyn_core::{validate_multi_schedule, CdagBuilder, Move, Schedule};

    /// x, y -> s = x + y; s -> t = 2s.
    fn chain_setup() -> (Cdag, OpTable) {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        let t = b.node(32, "t");
        b.edge(x, s);
        b.edge(y, s);
        b.edge(s, t);
        let g = b.build().unwrap();
        let tbl = OpTable::new(
            &g,
            vec![
                Op::Input,
                Op::Input,
                Op::LinCom(vec![1.0, 1.0]),
                Op::LinCom(vec![2.0]),
            ],
        )
        .unwrap();
        (g, tbl)
    }

    #[test]
    fn uniprocessor_multi_matches_classic_machine() {
        let (g, tbl) = chain_setup();
        let single = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
            Move::Compute(NodeId(3)),
            Move::Store(NodeId(3)),
        ]);
        let inputs = [2.0, 3.0, 0.0, 0.0];
        let classic = Machine::new(&g, &tbl, 96).run(&single, &inputs).unwrap();
        let spec = MachineSpec::uniprocessor(96);
        let multi = MultiSchedule::from_single(&single);
        let report = MultiMachine::new(&g, &tbl, spec.clone())
            .run(&multi, &inputs)
            .unwrap();
        assert_eq!(report.io_bits, classic.io_bits);
        assert_eq!(report.comm_bits, 0);
        assert_eq!(report.peak_fast_bits, vec![classic.peak_fast_bits]);
        assert_eq!(report.outputs[&NodeId(3)], 10.0);
        // Executed makespan agrees with the validator's model.
        let stats = validate_multi_schedule(&g, &spec, &multi).unwrap();
        assert_eq!(report.makespan, stats.makespan);
    }

    #[test]
    fn comm_transfers_the_actual_value() {
        let (g, tbl) = chain_setup();
        let spec = MachineSpec::symmetric(2, 96);
        // p0 computes s, communicates it to p1, which computes and stores t.
        let sched = MultiSchedule::from_moves(vec![
            MultiMove::Load {
                proc: 0,
                node: NodeId(0),
            },
            MultiMove::Load {
                proc: 0,
                node: NodeId(1),
            },
            MultiMove::Compute {
                proc: 0,
                node: NodeId(2),
            },
            MultiMove::Comm {
                from: 0,
                to: 1,
                node: NodeId(2),
            },
            MultiMove::Compute {
                proc: 1,
                node: NodeId(3),
            },
            MultiMove::Store {
                proc: 1,
                node: NodeId(3),
            },
        ]);
        let inputs = [2.0, 3.0, 0.0, 0.0];
        let report = MultiMachine::new(&g, &tbl, spec.clone())
            .run(&sched, &inputs)
            .unwrap();
        assert_eq!(report.outputs[&NodeId(3)], 10.0);
        assert_eq!(report.comm_bits, 2 * 32);
        assert_eq!(report.io_bits, 16 + 16 + 32);
        let stats = validate_multi_schedule(&g, &spec, &sched).unwrap();
        assert_eq!(report.makespan, stats.makespan);
        assert_eq!(stats.comm_cost, report.comm_bits);
    }

    #[test]
    fn per_processor_overflow_detected() {
        let (g, tbl) = chain_setup();
        let spec = MachineSpec::symmetric(2, 32);
        let sched = MultiSchedule::from_moves(vec![
            MultiMove::Load {
                proc: 1,
                node: NodeId(0),
            },
            MultiMove::Load {
                proc: 1,
                node: NodeId(1),
            },
            MultiMove::Compute {
                proc: 1,
                node: NodeId(2),
            },
        ]);
        let err = MultiMachine::new(&g, &tbl, spec)
            .run(&sched, &[1.0, 1.0, 0.0, 0.0])
            .unwrap_err();
        assert!(matches!(
            err,
            MultiExecError::FastMemoryOverflow { proc: 1, .. }
        ));
    }

    #[test]
    fn comm_requires_sender_residency() {
        let (g, tbl) = chain_setup();
        let spec = MachineSpec::symmetric(2, 96);
        let sched = MultiSchedule::from_moves(vec![MultiMove::Comm {
            from: 0,
            to: 1,
            node: NodeId(0),
        }]);
        let err = MultiMachine::new(&g, &tbl, spec)
            .run(&sched, &[1.0, 1.0, 0.0, 0.0])
            .unwrap_err();
        assert!(matches!(err, MultiExecError::MissingInFast(0, 0, _)));
    }
}
