//! The JSONL run-record schema, plus a dependency-free parser/validator.
//!
//! Each line written by [`crate::sink::JsonlSink`] is one JSON object:
//!
//! ```json
//! {"schema":"pebblyn-telemetry/v1","label":"exact mesh16",
//!  "counters":{"states_expanded":123,...},
//!  "gauges":{"open_list_peak":17,...},
//!  "spans_ns":{"solve":1500000}}
//! ```
//!
//! Counter and gauge maps carry every registered metric (including zeros)
//! so downstream tooling never has to guess at absent keys.  The schema
//! string is bumped on any breaking change to this shape.
//!
//! The parser here is a minimal recursive-descent JSON reader sufficient
//! for validating and pretty-printing these records; the workspace is
//! offline and deliberately serde-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Snapshot;

/// Schema identifier stamped on every JSONL line.
pub const SCHEMA: &str = "pebblyn-telemetry/v1";

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_map(pairs: &[(&'static str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, &(k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_str(k), v);
    }
    out.push('}');
    out
}

/// Serialize one run record to a single JSON line (no trailing newline).
pub fn run_to_json(label: &str, snapshot: &Snapshot) -> String {
    format!(
        "{{\"schema\":{},\"label\":{},\"counters\":{},\"gauges\":{},\"spans_ns\":{}}}",
        json_str(SCHEMA),
        json_str(label),
        json_map(&snapshot.counters),
        json_map(&snapshot.gauges),
        json_map(&snapshot.spans_ns),
    )
}

/// One parsed and schema-checked JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Run label as written by the producer.
    pub label: String,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge high-water marks.
    pub gauges: BTreeMap<String, u64>,
    /// Per-phase wall-clock totals in nanoseconds.
    pub spans_ns: BTreeMap<String, u64>,
}

/// Parse and validate a whole JSONL document (one record per non-empty
/// line).  Returns every record or the first error, prefixed with its
/// 1-based line number.
pub fn validate_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

fn validate_line(line: &str) -> Result<RunRecord, String> {
    let value = parse(line)?;
    let obj = value.as_object().ok_or("record is not a JSON object")?;
    match obj.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing string field \"schema\"".into()),
    }
    let label = obj
        .get("label")
        .and_then(Value::as_str)
        .ok_or("missing string field \"label\"")?
        .to_string();
    Ok(RunRecord {
        label,
        counters: metric_map(obj, "counters")?,
        gauges: metric_map(obj, "gauges")?,
        spans_ns: metric_map(obj, "spans_ns")?,
    })
}

fn metric_map(obj: &BTreeMap<String, Value>, field: &str) -> Result<BTreeMap<String, u64>, String> {
    let map = obj
        .get(field)
        .and_then(Value::as_object)
        .ok_or_else(|| format!("missing object field {field:?}"))?;
    let mut out = BTreeMap::new();
    for (k, v) in map {
        let n = v
            .as_u64()
            .ok_or_else(|| format!("{field}.{k} is not a non-negative integer"))?;
        out.insert(k.clone(), n);
    }
    Ok(out)
}

/// Render parsed records as an aligned human-readable report (the body of
/// the CLI's `telemetry-report` subcommand).  Zero-valued metrics are
/// omitted; spans are shown in milliseconds.
pub fn report(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "run: {}", r.label);
        let width = r
            .counters
            .keys()
            .chain(r.gauges.keys())
            .chain(r.spans_ns.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (k, &v) in r.counters.iter().chain(&r.gauges) {
            if v != 0 {
                let _ = writeln!(out, "  {k:<width$}  {v}");
            }
        }
        for (k, &ns) in &r.spans_ns {
            let _ = writeln!(out, "  {k:<width$}  {:.3} ms", ns as f64 / 1e6);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, stored as f64 (exact for u64 < 2^53, which covers
    /// every metric this crate emits in practice).
    Number(f64),
    /// String
    Str(String),
    /// Array
    Array(Vec<Value>),
    /// Object (key-sorted)
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }
}

/// Parse one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are not emitted by our writer; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            counters: vec![("states_expanded", 42), ("memo_hits", 0)],
            gauges: vec![("open_list_peak", 9)],
            spans_ns: vec![("solve", 1234)],
        }
    }

    #[test]
    fn roundtrip_run_record() {
        let line = run_to_json("exact mesh16", &snap());
        let rec = validate_line(&line).expect("valid");
        assert_eq!(rec.label, "exact mesh16");
        assert_eq!(rec.counters["states_expanded"], 42);
        assert_eq!(rec.counters["memo_hits"], 0);
        assert_eq!(rec.gauges["open_list_peak"], 9);
        assert_eq!(rec.spans_ns["solve"], 1234);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let line = run_to_json("x", &snap()).replace("/v1", "/v0");
        let err = validate_line(&line).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let good = run_to_json("x", &snap());
        let doc = format!("{good}\n{{\"schema\":\"pebblyn-telemetry/v1\"}}\n");
        let err = validate_jsonl(&doc).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":"q\"\\A","c":{"d":null,"e":true}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj["a"],
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(2.5),
                Value::Number(-3.0)
            ])
        );
        assert_eq!(obj["b"].as_str(), Some("q\"\\A"));
        assert_eq!(obj["c"].as_object().unwrap()["d"], Value::Null);
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(Value::Number(2.5).as_u64().is_none());
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
    }

    #[test]
    fn report_is_aligned_and_omits_zeros() {
        let recs = validate_jsonl(&run_to_json("r1", &snap())).unwrap();
        let text = report(&recs);
        assert!(text.contains("run: r1"));
        assert!(text.contains("states_expanded"));
        assert!(!text.contains("memo_hits"), "zero metric should be omitted");
        assert!(text.contains("ms"));
    }
}
