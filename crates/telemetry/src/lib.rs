//! Zero-overhead-when-disabled instrumentation for pebblyn.
//!
//! The crate exposes a small process-global registry of typed
//! [`Counter`]s and [`Gauge`]s plus monotonic phase timers ([`span`]).
//! Instrumented code calls [`add`]/[`gauge_max`]/[`span`] unconditionally;
//! every entry point first performs a single `Relaxed` load of a static
//! `AtomicBool` and returns immediately when telemetry is off.  That check
//! is the entire disabled-path cost, so golden outputs produced with
//! telemetry off are byte-identical to an uninstrumented build.
//!
//! When enabled (via [`enable`]), counters are `Relaxed` atomic adds,
//! gauges are `fetch_max`, and spans accumulate wall-clock nanoseconds per
//! phase name.  A run's totals are captured with [`snapshot`] and emitted
//! to pluggable [`sink::Sink`]s with [`flush_run`]:
//!
//! - [`sink::JsonlSink`] appends one schema-versioned JSON object per run
//!   (see [`schema::SCHEMA`]),
//! - [`sink::InMemorySink`] buffers events for tests,
//! - [`sink::SummarySink`] prints a human-readable table to stderr.
//!
//! The crate deliberately has no pebblyn dependencies so any layer —
//! engine, exact solver, conformance harness, CLI — can report through it
//! without dependency cycles.

pub mod schema;
pub mod sink;

pub use sink::{Event, InMemorySink, JsonlSink, Sink, SummarySink};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Typed event counters.  Each variant has a stable snake_case name used in
/// JSONL output; see [`Counter::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// States popped and expanded by the exact A* search.
    StatesExpanded,
    /// Successor states generated (pre-dedup, pre-dominance).
    StatesGenerated,
    /// Successors discarded by the dominance filter.
    DominancePruned,
    /// Successors discarded as exact duplicates of a queued/closed state.
    DedupPruned,
    /// Successors rewritten to their twin-orbit canonical representative by
    /// the exact search's symmetry reduction.
    SymmetryPruned,
    /// Parallel expansion batches executed by the exact search.
    SearchBatches,
    /// Frontier items reassigned from their hash-owner expansion shard to an
    /// underloaded one by the deterministic rebalance (virtual work
    /// stealing; independent of the physical thread count).
    FrontierSteals,
    /// Partial-expansion re-pops: deferred parents the exact search popped
    /// again at the f-value of their best unmaterialized successor.
    ReExpansions,
    /// Engine memo lookups answered from cache.
    MemoHits,
    /// Engine memo lookups that had to compute.
    MemoMisses,
    /// Moves emitted by heuristic schedulers through the registry surface.
    MovesEmitted,
    /// Conformance probes executed (scheduler × graph × budget points).
    Probes,
    /// Conformance probes certified against the exact solver.
    ProbesCertified,
    /// Conformance probes where exact certification was skipped.
    ProbesSkipped,
    /// Greedy shrink steps taken while minimizing a failing case.
    ShrinkSteps,
    /// Tasks executed by the deterministic parallel map.
    ParTasks,
    /// Invocations of the deterministic parallel map.
    ParRounds,
    /// Scheduling requests accepted by the service (hits + misses + rejects;
    /// excludes load-shed requests, which never reach the cache).
    ServiceRequests,
    /// Service requests answered from the canonical schedule cache.
    ServiceCacheHits,
    /// Service requests that fell through to an engine solve.
    ServiceCacheMisses,
    /// Service requests shed because the bounded queue was full.
    ServiceShed,
    /// Residents evicted by the streaming topological-window scheduler's
    /// Belady (furthest-next-use) policy.
    WindowEvictions,
    /// Slab boundaries committed by the streaming layered partitioner.
    SlabCuts,
    /// Nodes scheduled by the streaming schedulers (one increment per
    /// computed node, across both streaming strategies).
    StreamNodes,
    /// Red-to-red communication moves in multiprocessor schedules answered
    /// through the registry surface.
    CommMoves,
    /// Multiprocessor schedule requests answered through the registry
    /// surface (one increment per validated multi answer).
    MultiRequests,
}

/// All counters, in declaration (and output) order.
pub const COUNTERS: [Counter; 26] = [
    Counter::StatesExpanded,
    Counter::StatesGenerated,
    Counter::DominancePruned,
    Counter::DedupPruned,
    Counter::SymmetryPruned,
    Counter::SearchBatches,
    Counter::FrontierSteals,
    Counter::ReExpansions,
    Counter::MemoHits,
    Counter::MemoMisses,
    Counter::MovesEmitted,
    Counter::Probes,
    Counter::ProbesCertified,
    Counter::ProbesSkipped,
    Counter::ShrinkSteps,
    Counter::ParTasks,
    Counter::ParRounds,
    Counter::ServiceRequests,
    Counter::ServiceCacheHits,
    Counter::ServiceCacheMisses,
    Counter::ServiceShed,
    Counter::WindowEvictions,
    Counter::SlabCuts,
    Counter::StreamNodes,
    Counter::CommMoves,
    Counter::MultiRequests,
];

impl Counter {
    /// Stable snake_case name used in JSONL and summary output.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::StatesExpanded => "states_expanded",
            Counter::StatesGenerated => "states_generated",
            Counter::DominancePruned => "dominance_pruned",
            Counter::DedupPruned => "dedup_pruned",
            Counter::SymmetryPruned => "symmetry_prunes",
            Counter::SearchBatches => "search_batches",
            Counter::FrontierSteals => "frontier_steals",
            Counter::ReExpansions => "re_expansions",
            Counter::MemoHits => "memo_hits",
            Counter::MemoMisses => "memo_misses",
            Counter::MovesEmitted => "moves_emitted",
            Counter::Probes => "probes",
            Counter::ProbesCertified => "probes_certified",
            Counter::ProbesSkipped => "probes_skipped",
            Counter::ShrinkSteps => "shrink_steps",
            Counter::ParTasks => "par_tasks",
            Counter::ParRounds => "par_rounds",
            Counter::ServiceRequests => "service_requests",
            Counter::ServiceCacheHits => "service_cache_hits",
            Counter::ServiceCacheMisses => "service_cache_misses",
            Counter::ServiceShed => "service_shed",
            Counter::WindowEvictions => "window_evictions",
            Counter::SlabCuts => "slab_cuts",
            Counter::StreamNodes => "stream_nodes",
            Counter::CommMoves => "comm_moves",
            Counter::MultiRequests => "multi_requests",
        }
    }
}

/// Typed high-water-mark gauges (updated with `fetch_max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Gauge {
    /// Peak open-list size observed by the exact search.
    OpenListPeak,
    /// Peak number of dominance-table entries.
    DominanceEntriesPeak,
    /// Peak depth of any engine work queue.
    QueueDepthPeak,
    /// Peak depth of the service's bounded request queue.
    ServiceQueueDepthPeak,
    /// Slowest single request the service answered, in wall nanoseconds.
    ServiceLatencyPeakNs,
    /// Widest state mask (in 64-bit words) any exact search in this run
    /// monomorphized to: 1 = the u64 fast path, 2+ = `Words<N>`.
    MaskWords,
    /// Peak resident red weight (in bits) observed by the streaming
    /// topological-window scheduler.
    WindowPeak,
    /// Most processors any multiprocessor answer in this run actually
    /// occupied (computed at least one node on).
    MultiProcsUsed,
}

/// All gauges, in declaration (and output) order.
pub const GAUGES: [Gauge; 8] = [
    Gauge::OpenListPeak,
    Gauge::DominanceEntriesPeak,
    Gauge::QueueDepthPeak,
    Gauge::ServiceQueueDepthPeak,
    Gauge::ServiceLatencyPeakNs,
    Gauge::MaskWords,
    Gauge::WindowPeak,
    Gauge::MultiProcsUsed,
];

impl Gauge {
    /// Stable snake_case name used in JSONL and summary output.
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::OpenListPeak => "open_list_peak",
            Gauge::DominanceEntriesPeak => "dominance_entries_peak",
            Gauge::QueueDepthPeak => "queue_depth_peak",
            Gauge::ServiceQueueDepthPeak => "service_queue_depth_peak",
            Gauge::ServiceLatencyPeakNs => "service_latency_peak_ns",
            Gauge::MaskWords => "mask_words",
            Gauge::WindowPeak => "window_peak",
            Gauge::MultiProcsUsed => "multi_procs_used",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

// A `const` initializer is the idiomatic way to build a static array of
// atomics; the lint fires on any interior-mutable const regardless.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::borrow_interior_mutable_const)]
static COUNTER_CELLS: [AtomicU64; COUNTERS.len()] = [ZERO; COUNTERS.len()];
#[allow(clippy::borrow_interior_mutable_const)]
static GAUGE_CELLS: [AtomicU64; GAUGES.len()] = [ZERO; GAUGES.len()];
static SPANS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());
static SINKS: Mutex<Vec<Box<dyn Sink>>> = Mutex::new(Vec::new());

/// Turn telemetry collection on for the rest of the process.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn telemetry collection off (used by tests to restore the default).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether telemetry is collecting.  A single `Relaxed` load — this is the
/// entire cost of every instrumentation site when telemetry is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `n` to counter `c`.  No-op when disabled.
#[inline]
pub fn add(c: Counter, n: u64) {
    if enabled() {
        COUNTER_CELLS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Add 1 to counter `c`.  No-op when disabled.
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Current value of counter `c` (zero when telemetry never ran).
pub fn counter(c: Counter) -> u64 {
    COUNTER_CELLS[c as usize].load(Ordering::Relaxed)
}

/// Raise gauge `g` to at least `v`.  No-op when disabled.
#[inline]
pub fn gauge_max(g: Gauge, v: u64) {
    if enabled() {
        GAUGE_CELLS[g as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Current value of gauge `g`.
pub fn gauge(g: Gauge) -> u64 {
    GAUGE_CELLS[g as usize].load(Ordering::Relaxed)
}

/// A scoped phase timer: accumulates elapsed wall-clock nanoseconds under
/// `name` when dropped.  Obtained from [`span`]; does nothing when
/// telemetry is disabled at drop time.
#[must_use = "a span records its phase time when dropped"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        if !enabled() {
            return;
        }
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut spans = SPANS.lock().expect("telemetry span table poisoned");
        *spans.entry(self.name).or_insert(0) += ns;
    }
}

/// Start a monotonic phase timer; the returned guard accumulates wall time
/// under `name` when it goes out of scope.  When telemetry is disabled the
/// guard holds no clock and drops for free.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Point-in-time totals of every counter, gauge, and span phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, total)` for each counter, in [`COUNTERS`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, high-water mark)` for each gauge, in [`GAUGES`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(phase, total wall ns)` sorted by phase name.
    pub spans_ns: Vec<(&'static str, u64)>,
}

impl Snapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Capture the current totals of all counters, gauges, and spans.
pub fn snapshot() -> Snapshot {
    Snapshot {
        counters: COUNTERS.iter().map(|&c| (c.name(), counter(c))).collect(),
        gauges: GAUGES.iter().map(|&g| (g.name(), gauge(g))).collect(),
        spans_ns: SPANS
            .lock()
            .expect("telemetry span table poisoned")
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect(),
    }
}

/// Zero all counters, gauges, and span totals (test isolation helper).
pub fn reset() {
    for cell in &COUNTER_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &GAUGE_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    SPANS.lock().expect("telemetry span table poisoned").clear();
}

/// Register a sink to receive subsequent [`flush_run`] events.
pub fn install_sink(sink: Box<dyn Sink>) {
    SINKS
        .lock()
        .expect("telemetry sink list poisoned")
        .push(sink);
}

/// Drop all registered sinks (flushing them first).
pub fn clear_sinks() {
    let mut sinks = SINKS.lock().expect("telemetry sink list poisoned");
    for sink in sinks.iter_mut() {
        sink.flush();
    }
    sinks.clear();
}

/// Emit one `Run` event carrying the current [`snapshot`] totals, labelled
/// `label`, to every registered sink, then flush them.  No-op when
/// telemetry is disabled.
pub fn flush_run(label: &str) {
    if !enabled() {
        return;
    }
    let event = Event::Run {
        label: label.to_string(),
        snapshot: snapshot(),
    };
    let mut sinks = SINKS.lock().expect("telemetry sink list poisoned");
    for sink in sinks.iter_mut() {
        sink.record(&event);
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sink::InMemorySink;

    // All tests share process-global state, so they run under one lock and
    // restore the disabled default before returning.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        clear_sinks();
        enable();
        let out = f();
        disable();
        reset();
        clear_sinks();
        out
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        disable();
        add(Counter::StatesExpanded, 10);
        gauge_max(Gauge::OpenListPeak, 99);
        drop(span("phase"));
        assert_eq!(counter(Counter::StatesExpanded), 0);
        assert_eq!(gauge(Gauge::OpenListPeak), 0);
        assert!(snapshot().spans_ns.is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        isolated(|| {
            add(Counter::MemoHits, 3);
            incr(Counter::MemoHits);
            gauge_max(Gauge::OpenListPeak, 7);
            gauge_max(Gauge::OpenListPeak, 4);
            let snap = snapshot();
            assert_eq!(snap.counter("memo_hits"), Some(4));
            assert_eq!(snap.gauge("open_list_peak"), Some(7));
            assert_eq!(snap.counter("no_such"), None);
        });
    }

    #[test]
    fn spans_accumulate_under_one_name() {
        isolated(|| {
            for _ in 0..2 {
                let _s = span("expand");
                std::hint::black_box(());
            }
            let snap = snapshot();
            assert_eq!(snap.spans_ns.len(), 1);
            assert_eq!(snap.spans_ns[0].0, "expand");
        });
    }

    #[test]
    fn flush_run_reaches_installed_sinks() {
        isolated(|| {
            let sink = InMemorySink::new();
            let events = sink.handle();
            install_sink(Box::new(sink));
            incr(Counter::Probes);
            flush_run("unit");
            let events = events.lock().unwrap();
            assert_eq!(events.len(), 1);
            let Event::Run { label, snapshot } = &events[0];
            assert_eq!(label, "unit");
            assert_eq!(snapshot.counter("probes"), Some(1));
        });
    }

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<_> = COUNTERS.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate counter name");
        assert_eq!(COUNTERS[0].name(), "states_expanded");
        let gnames: Vec<_> = GAUGES.iter().map(|g| g.name()).collect();
        let mut gdedup = gnames.clone();
        gdedup.sort_unstable();
        gdedup.dedup();
        assert_eq!(gdedup.len(), gnames.len(), "duplicate gauge name");
    }
}
