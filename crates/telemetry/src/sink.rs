//! Pluggable telemetry sinks.
//!
//! A [`Sink`] receives [`Event`]s from [`crate::flush_run`].  Three
//! implementations cover the common cases: [`JsonlSink`] appends
//! schema-versioned JSON lines to a file, [`InMemorySink`] buffers events
//! for test assertions, and [`SummarySink`] prints a human-readable table
//! to stderr (stderr so that byte-compared stdout goldens stay clean).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::schema;
use crate::Snapshot;

/// One telemetry emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Totals for one labelled run (a CLI invocation, a bench panel, ...).
    Run {
        /// Caller-chosen run label.
        label: String,
        /// Counter/gauge/span totals at flush time.
        snapshot: Snapshot,
    },
}

/// Receiver of telemetry events.  Implementations must tolerate being
/// flushed multiple times and receiving zero events.
pub trait Sink: Send {
    /// Record one event.
    fn record(&mut self, event: &Event);
    /// Persist anything buffered (default: nothing to do).
    fn flush(&mut self) {}
}

/// Buffers events in memory behind an `Arc<Mutex<..>>` so tests can hold a
/// handle while the sink itself is installed into the global registry.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared handle onto the event buffer; clones observe all events
    /// recorded after the sink was installed.
    pub fn handle(&self) -> Arc<Mutex<Vec<Event>>> {
        Arc::clone(&self.events)
    }
}

impl Sink for InMemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .expect("in-memory sink poisoned")
            .push(event.clone());
    }
}

/// Appends one schema-versioned JSON object per event to a file.
/// The line format is defined in [`crate::schema`].
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let Event::Run { label, snapshot } = event;
        // Ignore write errors at record time; flush surfaces them loudly.
        let _ = writeln!(self.writer, "{}", schema::run_to_json(label, snapshot));
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            eprintln!("telemetry: failed to flush JSONL sink: {e}");
        }
    }
}

/// Prints a human-readable per-run summary to stderr when the run is
/// flushed.  Zero-valued counters and gauges are omitted.
#[derive(Debug, Default)]
pub struct SummarySink;

impl SummarySink {
    /// A summary sink.
    pub fn new() -> Self {
        SummarySink
    }
}

impl Sink for SummarySink {
    fn record(&mut self, event: &Event) {
        let Event::Run { label, snapshot } = event;
        eprintln!("telemetry summary [{label}]");
        for &(name, v) in &snapshot.counters {
            if v != 0 {
                eprintln!("  {name:<24} {v}");
            }
        }
        for &(name, v) in &snapshot.gauges {
            if v != 0 {
                eprintln!("  {name:<24} {v}");
            }
        }
        for &(name, ns) in &snapshot.spans_ns {
            eprintln!("  span {name:<19} {:.3} ms", ns as f64 / 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event::Run {
            label: "t".into(),
            snapshot: Snapshot {
                counters: vec![("states_expanded", 5), ("memo_hits", 0)],
                gauges: vec![("open_list_peak", 3)],
                spans_ns: vec![("solve", 1_500_000)],
            },
        }
    }

    #[test]
    fn in_memory_sink_shares_buffer() {
        let mut sink = InMemorySink::new();
        let handle = sink.handle();
        sink.record(&sample_event());
        assert_eq!(handle.lock().unwrap().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let dir = std::env::temp_dir().join("pebblyn-telemetry-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample_event());
        sink.record(&sample_event());
        sink.flush();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let runs = schema::validate_jsonl(&text).expect("lines validate");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "t");
        assert_eq!(runs[0].counters.get("states_expanded"), Some(&5));
        std::fs::remove_dir_all(&dir).ok();
    }
}
