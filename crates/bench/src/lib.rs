//! # pebblyn-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig5` | Fig. 5a–d: bits transferred vs fast memory size |
//! | `fig6` | Fig. 6a–d: minimum fast memory size vs workload size |
//! | `table1` | Table 1: minimum fast memory comparison |
//! | `fig7` | Fig. 7a–f: synthesized area / power / throughput |
//! | `fig8` | Fig. 8a–d: floorplan comparisons |
//! | `ablation` | §4.3 / §5.1 design-choice ablations |
//! | `all` | everything above, in order |
//!
//! Each binary prints the series the paper plots and writes a CSV under
//! `results/`.  This library holds the shared plumbing: table printing, CSV
//! output, budget sweeps, and a small crossbeam-based parallel map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pebblyn::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Experiment IDs accepted by `--panel` style flags.
pub const PAPER_WORKLOADS: &str = "DWT(256,8) and MVM(96,120), Equal and Double Accumulator";

/// Directory where CSVs land (`results/` next to the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("PEBBLYN_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A printable/serialisable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (used for the CSV file name, lowercased).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n## {}", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV under `results/`, returning the path.
    pub fn write_csv(&self) -> PathBuf {
        let name = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect::<String>();
        let path = results_dir().join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).expect("write header");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write row");
        }
        path
    }

    /// Print and write CSV.
    pub fn emit(&self) {
        self.print();
        let path = self.write_csv();
        println!("[csv] {}", path.display());
    }
}

/// Log-spaced budgets on the word lattice from `lo_words` to `hi_words`
/// (inclusive, deduplicated, in bits).
pub fn log_budgets(lo_words: u64, hi_words: u64, points: usize, word: u64) -> Vec<Weight> {
    assert!(lo_words >= 1 && hi_words >= lo_words && points >= 2);
    let lo = lo_words as f64;
    let hi = hi_words as f64;
    let mut out: Vec<Weight> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            let w = lo * (hi / lo).powf(t);
            (w.round() as u64).clamp(lo_words, hi_words) * word
        })
        .collect();
    out.dedup();
    out
}

/// Parallel map over items with a scoped crossbeam worker pool (the
/// sanctioned alternative to rayon for the sweep-heavy figures).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(|_| {
                let tx = tx;
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    tx.send((i, f(&items[i]))).expect("collector alive");
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    })
    .expect("worker pool")
}

/// The four Table 1 workload/scheduler comparisons, shared by several
/// binaries: (label, scheme, our min-memory bits, baseline min-memory bits).
pub fn table1_rows() -> Vec<(String, WeightScheme, Weight, Weight)> {
    let mut rows = Vec::new();
    for scheme in WeightScheme::paper_configs() {
        let dwt = DwtGraph::new(256, 8, scheme).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let ours = min_memory(
            |b| dwt_opt::min_cost(&dwt, b),
            lb,
            MinMemoryOptions::for_graph(g).monotone(true),
        )
        .expect("optimum reaches LB");
        let baseline = min_memory(
            |b| layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default()),
            lb,
            MinMemoryOptions::for_graph(g),
        )
        .expect("layer-by-layer reaches LB");
        rows.push((format!("DWT(256,8) {}", scheme.label()), scheme, ours, baseline));
    }
    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(96, 120, scheme).unwrap();
        let ours = mvm_tiling::min_memory(&mvm);
        let baseline = IoOptMvmModel::for_graph(&mvm).min_memory();
        rows.push((format!("MVM(96,120) {}", scheme.label()), scheme, ours, baseline));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_budgets_are_monotone_and_bounded() {
        let b = log_budgets(3, 1024, 20, 16);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 48);
        assert_eq!(*b.last().unwrap(), 1024 * 16);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let r = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(r, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("Test Table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv();
        let s = std::fs::read_to_string(path).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn table1_rows_match_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].2, 160); // Equal DWT optimum
        assert_eq!(rows[1].2, 288); // DA DWT optimum
        assert_eq!(rows[2].2, 99 * 16); // Equal MVM tiling
        assert_eq!(rows[3].2, 126 * 16); // DA MVM tiling
        assert_eq!(rows[2].3, 193 * 16); // Equal IOOpt UB
        assert_eq!(rows[3].3, 289 * 16); // DA IOOpt UB
    }
}
