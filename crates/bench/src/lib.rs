//! # pebblyn-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `fig5` | Fig. 5a–d: bits transferred vs fast memory size |
//! | `fig6` | Fig. 6a–d: minimum fast memory size vs workload size |
//! | `table1` | Table 1: minimum fast memory comparison |
//! | `fig7` | Fig. 7a–f: synthesized area / power / throughput |
//! | `fig8` | Fig. 8a–d: floorplan comparisons |
//! | `ablation` | §4.3 / §5.1 design-choice ablations |
//! | `all` | everything above, in order |
//!
//! Each binary prints the series the paper plots and writes a CSV under
//! `results/`.  The sweeps themselves are declarative
//! [`SweepPlan`]/[`MinMemoryPlan`]s executed by `pebblyn-engine` (parallel,
//! memoized via [`Memo::global`]); this library holds the presentation
//! plumbing — table printing, CSV output — plus the shared Table 1 rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pebblyn::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Experiment IDs accepted by `--panel` style flags.
pub const PAPER_WORKLOADS: &str = "DWT(256,8) and MVM(96,120), Equal and Double Accumulator";

/// Directory where CSVs land (`results/` next to the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("PEBBLYN_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A printable/serialisable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (used for the CSV file name, lowercased).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n## {}", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV under `results/`, returning the path.
    pub fn write_csv(&self) -> PathBuf {
        let name = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect::<String>();
        let path = results_dir().join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).expect("write header");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write row");
        }
        path
    }

    /// Print and write CSV.
    pub fn emit(&self) {
        self.print();
        let path = self.write_csv();
        println!("[csv] {}", path.display());
    }
}

/// Log-spaced budgets on the word lattice from `lo_words` to `hi_words`
/// (inclusive, deduplicated, in bits).  Delegates to the engine's grid so
/// plans and ad-hoc sweeps agree on the lattice.
pub fn log_budgets(lo_words: u64, hi_words: u64, points: usize, word: u64) -> Vec<Weight> {
    pebblyn::engine::log_budgets(lo_words, hi_words, points, word)
}

/// Format an optional cost the way the paper's tables do: `inf` when the
/// scheduler is infeasible at the budget.
pub fn fmt_bits(v: Option<Weight>) -> String {
    v.map_or_else(|| "inf".into(), |c| c.to_string())
}

/// Parallel map over items, delegating to the sweep engine's worker pool
/// (order-preserving; thread count honors `RAYON_NUM_THREADS`).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    pebblyn::engine::par::par_map(&items, f)
}

/// A 16-node reconvergent mesh: 4 sources feeding 12 interior joins, each
/// consuming its two predecessors plus a periodic long-range operand, so
/// diamonds stack and shared operands stay live across the frontier.  This
/// is the shape class the 16-node EXHAUSTIVE certification regime must
/// dispatch under the 5M-state cap; `bench_exact` races both solvers on it
/// and the telemetry tests pin the solver's counters against it.
pub fn reconvergent_mesh16() -> Cdag {
    let mut b = CdagBuilder::with_capacity(16);
    let ids: Vec<NodeId> = (0..16)
        .map(|i| b.node(1 + (i as Weight) % 2, format!("m{i}")))
        .collect();
    for j in 4..16 {
        b.edge(ids[j - 1], ids[j]);
        b.edge(ids[j - 4], ids[j]);
        if j % 3 == 0 {
            b.edge(ids[j - 3], ids[j]);
        }
    }
    b.build().expect("mesh is a connected DAG")
}

/// A 20-node symmetric reconvergent mesh: two sources feeding four
/// isomorphic 4-node arms that reconverge on a two-node sink chain.  The
/// root source feeds every arm's head; the crossing source feeds every
/// arm's head *and* tail.  This is the per-lever ablation instance for
/// the 24-node certification push, and each lever has a distinct
/// structure to bite on: the arms are WL-equivalent but *not* exact
/// twins (their pred/succ sets differ node-by-node), so only certified
/// WL-orbit generators collapse the 4!-fold arm symmetry; the crossing
/// source is consumed both before and after every mid-arm pivot and is
/// too heavy to stay resident at the minimum feasible budget (the arm
/// tail is lighter than the mid nodes, so the budget's slack at the
/// pivot moment stays below the crossing weight), so the landmark tier
/// charges its forced reload; and the reload-heavy frontier is what the
/// `OpenListPeak` gauge (and partial expansion's reduction of it) is
/// measured on.
pub fn reconvergent_mesh20() -> Cdag {
    let mut b = CdagBuilder::with_capacity(20);
    let root = b.node(2, "r");
    let crossing = b.node(4, "c");
    let arm_w: [Weight; 4] = [2, 4, 4, 1];
    let mut tails = Vec::new();
    for arm in 0..4 {
        let head = b.node(arm_w[0], format!("a{arm}_0"));
        b.edge(root, head);
        b.edge(crossing, head);
        let mut prev = head;
        for (pos, &w) in arm_w.iter().enumerate().skip(1) {
            let v = b.node(w, format!("a{arm}_{pos}"));
            b.edge(prev, v);
            prev = v;
        }
        b.edge(crossing, prev); // the crossing operand returns at the tail
        tails.push(prev);
    }
    let join = b.node(2, "s0");
    for t in tails {
        b.edge(t, join);
    }
    let sink = b.node(1, "s1");
    b.edge(join, sink);
    b.build().expect("mesh is a connected DAG")
}

/// A chain of `k` unit-weight diamonds `a→{b,c}→d`, each diamond's exit
/// feeding the next diamond's entry: `4k` nodes total.  Every diamond's
/// midpoints are a twin orbit (identical predecessor and successor sets),
/// so the graph is the canonical symmetry-reduction witness; at `k = 18`
/// (72 nodes) it is also the bench instance that crosses the old 64-node
/// `u64` state-mask wall and exercises the `Words<2>` search.  Feasible at
/// budget 3 with optimal cost 2 (load the head source, store the tail
/// sink; every interior node is compute-only).
pub fn diamond_chain(k: usize) -> Cdag {
    let mut b = CdagBuilder::with_capacity(4 * k);
    let ids: Vec<NodeId> = (0..4 * k).map(|i| b.node(1, format!("d{i}"))).collect();
    for d in 0..k {
        let (a, m1, m2, z) = (ids[4 * d], ids[4 * d + 1], ids[4 * d + 2], ids[4 * d + 3]);
        b.edge(a, m1);
        b.edge(a, m2);
        b.edge(m1, z);
        b.edge(m2, z);
        if d + 1 < k {
            b.edge(z, ids[4 * d + 4]);
        }
    }
    b.build().expect("diamond chain is a connected DAG")
}

/// Handle a `--telemetry <FILE>` flag shared by the bench binaries: when
/// present, enable telemetry and install a schema-versioned JSONL sink at
/// the path plus a human-readable summary sink on stderr.  Returns whether
/// telemetry was turned on (callers then `flush_run` at phase ends).
pub fn init_telemetry_from_args(args: &[String]) -> bool {
    let Some(path) = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
    else {
        return false;
    };
    pebblyn::telemetry::enable();
    let sink = pebblyn::telemetry::JsonlSink::create(path)
        .unwrap_or_else(|e| panic!("cannot open telemetry file {path}: {e}"));
    pebblyn::telemetry::install_sink(Box::new(sink));
    pebblyn::telemetry::install_sink(Box::new(pebblyn::telemetry::SummarySink));
    true
}

/// The four Table 1 workload/scheduler comparisons, shared by several
/// binaries: (label, scheme, our min-memory bits, baseline min-memory bits).
///
/// One [`MinMemoryPlan`] per workload family, run through the process-wide
/// memo so Figure 5's budget sweeps and this table share DP evaluations.
pub fn table1_rows() -> Vec<(String, WeightScheme, Weight, Weight)> {
    let mut rows = Vec::new();

    let mut dwt_plan = MinMemoryPlan::new("Table 1 DWT")
        .to_lower_bound(Series::scheduler(&api::DwtOpt))
        .to_lower_bound(Series::scheduler(&api::LayerByLayer));
    for scheme in WeightScheme::paper_configs() {
        let g = AnyGraph::build(Workload::Dwt { n: 256, d: 8 }, scheme).unwrap();
        dwt_plan = dwt_plan.workload(g);
    }
    let dwt = dwt_plan.run_with(Memo::global());
    for (i, scheme) in WeightScheme::paper_configs().into_iter().enumerate() {
        let ours = dwt.rows[2 * i].min_bits.expect("optimum reaches LB");
        let baseline = dwt.rows[2 * i + 1]
            .min_bits
            .expect("layer-by-layer reaches LB");
        rows.push((
            format!("DWT(256,8) {}", scheme.label()),
            scheme,
            ours,
            baseline,
        ));
    }

    let mut mvm_plan = MinMemoryPlan::new("Table 1 MVM")
        .direct("mvm-tiling", |g| match g {
            AnyGraph::Mvm(m) => Some(mvm_tiling::min_memory(m)),
            _ => None,
        })
        .direct("ioopt-ub", |g| match g {
            AnyGraph::Mvm(m) => Some(IoOptMvmModel::for_graph(m).min_memory()),
            _ => None,
        });
    for scheme in WeightScheme::paper_configs() {
        let g = AnyGraph::build(Workload::Mvm { m: 96, n: 120 }, scheme).unwrap();
        mvm_plan = mvm_plan.workload(g);
    }
    let mvm = mvm_plan.run_with(Memo::global());
    for (i, scheme) in WeightScheme::paper_configs().into_iter().enumerate() {
        let ours = mvm.rows[2 * i].min_bits.expect("tiling family minimum");
        let baseline = mvm.rows[2 * i + 1].min_bits.expect("IOOpt UB minimum");
        rows.push((
            format!("MVM(96,120) {}", scheme.label()),
            scheme,
            ours,
            baseline,
        ));
    }
    rows
}

/// Schema identifier stamped on `results/bench_streaming.json`.
pub const BENCH_STREAMING_SCHEMA: &str = "pebblyn-bench-streaming/v1";

/// The maximum admissible `ns_per_edge` drift of each scheduler's
/// worst-case envelope — at every ladder size take the slowest family's
/// time-per-edge; the envelope at a million nodes may be at most 1.5x
/// the 10k-node figure.  This is the "near-linear throughput" acceptance
/// bar: it bounds how much a user's worst-case per-edge cost can degrade
/// across a 100x size range, while per-family curves stay fully
/// published in the artifact.
pub const BENCH_STREAMING_MAX_DRIFT: f64 = 1.5;

/// Validate `results/bench_streaming.json` structurally, reusing the
/// telemetry crate's recursive-descent JSON parser (the workspace is
/// deliberately serde-free).
///
/// Checks, per point: all required keys present and well-typed, positive
/// node/edge counts, `cost_bits >= lower_bound_bits`, `bound_gap` equal to
/// their ratio (and therefore >= 1), positive `ns_per_edge`.  Across each
/// `(family, scheduler)` group: at least two sizes and a consistent
/// ladder length.  Per scheduler: the worst-case envelope (max
/// `ns_per_edge` over families at each ladder rank) at the largest size
/// within [`BENCH_STREAMING_MAX_DRIFT`] of the smallest — the
/// scaling-curve claim itself.
pub fn validate_bench_streaming(text: &str) -> Result<(), String> {
    use pebblyn::telemetry::schema::{parse, Value};
    use std::collections::BTreeMap;

    let root = parse(text)?;
    let obj = root.as_object().ok_or("top level must be an object")?;
    let field = |k: &str| obj.get(k).ok_or_else(|| format!("missing key {k:?}"));
    let schema = field("schema")?.as_str().ok_or("schema must be a string")?;
    if schema != BENCH_STREAMING_SCHEMA {
        return Err(format!(
            "schema {schema:?}, expected {BENCH_STREAMING_SCHEMA:?}"
        ));
    }
    field("description")?
        .as_str()
        .ok_or("description must be a string")?;
    field("command")?
        .as_str()
        .ok_or("command must be a string")?;
    let Value::Array(points) = field("points")? else {
        return Err("points must be an array".into());
    };
    if points.is_empty() {
        return Err("points must be non-empty".into());
    }

    // (family, scheduler) -> (nodes, ns_per_edge) samples.
    let mut curves: BTreeMap<(String, String), Vec<(u64, f64)>> = BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        let ctx = |msg: String| format!("points[{i}]: {msg}");
        let p = p
            .as_object()
            .ok_or_else(|| ctx("must be an object".into()))?;
        let get = |k: &str| p.get(k).ok_or_else(|| ctx(format!("missing key {k:?}")));
        let get_u64 = |k: &str| {
            get(k)?
                .as_u64()
                .ok_or_else(|| ctx(format!("{k} must be a non-negative integer")))
        };
        let get_f64 = |k: &str| match get(k)? {
            &Value::Number(n) => Ok(n),
            _ => Err(ctx(format!("{k} must be a number"))),
        };
        let family = get("family")?
            .as_str()
            .ok_or_else(|| ctx("family must be a string".into()))?;
        let scheduler = get("scheduler")?
            .as_str()
            .ok_or_else(|| ctx("scheduler must be a string".into()))?;
        let nodes = get_u64("nodes")?;
        let edges = get_u64("edges")?;
        if nodes == 0 || edges == 0 {
            return Err(ctx("nodes and edges must be positive".into()));
        }
        get_u64("budget_bits")?;
        get_u64("moves")?;
        get_u64("peak_rss_kb")?;
        let cost = get_u64("cost_bits")?;
        let lb = get_u64("lower_bound_bits")?;
        if lb == 0 || cost < lb {
            return Err(ctx(format!(
                "cost_bits {cost} must be >= lower_bound_bits {lb} > 0"
            )));
        }
        let gap = get_f64("bound_gap")?;
        if (gap - cost as f64 / lb as f64).abs() > 1e-3 {
            return Err(ctx(format!(
                "bound_gap {gap} is not cost_bits/lower_bound_bits"
            )));
        }
        let wall_ms = get_f64("wall_ms")?;
        let npe = get_f64("ns_per_edge")?;
        if wall_ms < 0.0 || npe <= 0.0 {
            return Err(ctx("wall_ms must be >= 0 and ns_per_edge > 0".into()));
        }
        curves
            .entry((family.to_string(), scheduler.to_string()))
            .or_default()
            .push((nodes, npe));
    }

    // Near-linearity is judged on each scheduler's worst-case envelope:
    // at every ladder rank take the slowest family's ns_per_edge.  The
    // envelope bounds the per-edge cost a user can observe at that scale;
    // requiring it to stay within the drift bar from 10k to 1M is the
    // scaling claim, robust to one family being anomalously cache-friendly
    // at the small end.
    let mut envelopes: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for ((family, scheduler), mut samples) in curves {
        if samples.len() < 2 {
            return Err(format!(
                "{family}/{scheduler}: scaling curve needs at least two sizes"
            ));
        }
        samples.sort_by_key(|&(n, _)| n);
        let env = envelopes.entry(scheduler).or_default();
        if env.is_empty() {
            env.extend(samples.iter().map(|&(_, npe)| npe));
        } else if env.len() != samples.len() {
            return Err(format!("{family}: families disagree on ladder length"));
        } else {
            for (e, &(_, npe)) in env.iter_mut().zip(&samples) {
                *e = e.max(npe);
            }
        }
    }
    for (scheduler, env) in envelopes {
        let (first, last) = (env[0], env[env.len() - 1]);
        if last > first * BENCH_STREAMING_MAX_DRIFT {
            return Err(format!(
                "{scheduler}: worst-family ns_per_edge envelope drifts \
                 {first:.1} -> {last:.1} (over the {BENCH_STREAMING_MAX_DRIFT}x \
                 near-linearity bar)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_budgets_are_monotone_and_bounded() {
        let b = log_budgets(3, 1024, 20, 16);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 48);
        assert_eq!(*b.last().unwrap(), 1024 * 16);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let r = parallel_map((0..100).collect(), |&x| x * 2);
        assert_eq!(r, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("Test Table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv();
        let s = std::fs::read_to_string(path).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn table1_rows_match_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].2, 160); // Equal DWT optimum
        assert_eq!(rows[1].2, 288); // DA DWT optimum
        assert_eq!(rows[2].2, 99 * 16); // Equal MVM tiling
        assert_eq!(rows[3].2, 126 * 16); // DA MVM tiling
        assert_eq!(rows[2].3, 193 * 16); // Equal IOOpt UB
        assert_eq!(rows[3].3, 289 * 16); // DA IOOpt UB
    }
}
