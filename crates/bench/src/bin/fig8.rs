//! Figure 8: physical floorplan comparison between the power-of-two
//! memories of the competing approaches.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig8
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::{table1_rows, Table};

fn main() {
    let process = Process::default();
    let mut t = Table::new(
        "Fig 8 floorplans",
        &[
            "workload",
            "ours_bits",
            "ours_w_l",
            "ours_h_l",
            "base_bits",
            "base_w_l",
            "base_h_l",
            "area_ratio",
        ],
    );
    for (label, _scheme, ours_bits, baseline_bits) in table1_rows() {
        let is_dwt = label.starts_with("DWT");
        let names = if is_dwt {
            ("Optimum", "Layer-by-Layer")
        } else {
            ("Tiling", "IOOpt")
        };
        let ours = SramConfig::words16(round_pow2(ours_bits)).synthesize(&process);
        let base = SramConfig::words16(round_pow2(baseline_bits)).synthesize(&process);
        let fo = Floorplan::of(&ours);
        let fb = Floorplan::of(&base);
        println!("\n=== {label}: {} vs {} ===", names.0, names.1);
        print!("{}", fo.render_comparison(&fb, names));
        t.row(vec![
            label,
            ours.capacity_bits.to_string(),
            format!("{:.0}", fo.width_l),
            format!("{:.0}", fo.height_l),
            base.capacity_bits.to_string(),
            format!("{:.0}", fb.width_l),
            format!("{:.0}", fb.height_l),
            format!("{:.1}x", fb.area_l2() / fo.area_l2()),
        ]);
    }
    t.emit();
}
