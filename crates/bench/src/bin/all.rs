//! Run every experiment in order: Table 1, Figures 5–8, ablations.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin all
//! ```

fn main() {
    let bins = ["table1", "fig5", "fig6", "fig7", "fig8", "ablation"];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = std::process::Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments complete; CSVs in results/");
}
