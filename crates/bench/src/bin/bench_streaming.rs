//! Streaming-scheduler scaling curve: `results/bench_streaming.json`.
//!
//! For each giant-CDAG family (`dwt_giga`, `mvm_giga`,
//! `layered_random_giga`) and each streaming scheduler (`topo-window`,
//! `slab-partition`), schedule graphs from ten thousand to a million
//! nodes and record wall time, time per edge, a peak-RSS proxy, and the
//! observed Proposition 2.4 bound gap.  The headline claim is
//! *near-linear throughput*: each scheduler's worst-case envelope (the
//! slowest family's time-per-edge at each ladder size) stays within
//! 1.5x of the 10k-node figure at a million nodes (asserted here at
//! generation time and re-checked structurally by
//! `validate_bench_streaming`, which the golden test runs against the
//! committed artifact).
//!
//! Wall times are single-host, cold-cache measurements (the median of
//! nine passes, each preceded by a cache-evicting scratch sweep so every
//! size is timed DRAM-resident); only the ratios are meaningful across
//! machines.  The RSS proxy is `VmHWM` from `/proc/self/status` — a
//! process-wide high-water mark, so it is non-decreasing across points
//! and 0 where the file is unavailable.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin bench_streaming
//! # CI smoke: cap the curve and record telemetry for telemetry_check
//! cargo run --release -p pebblyn-bench --bin bench_streaming -- \
//!     --max-nodes 100000 --telemetry streaming_tele.jsonl
//! ```

use pebblyn::prelude::*;
use pebblyn::synth::{dwt_giga, layered_random_giga, mvm_giga};
use pebblyn::telemetry;
use pebblyn_bench::{
    init_telemetry_from_args, results_dir, validate_bench_streaming, BENCH_STREAMING_MAX_DRIFT,
    BENCH_STREAMING_SCHEMA,
};
use std::fmt::Write as _;
use std::time::Instant;

/// The node-count ladder (approximate; structured families round down to
/// their nearest admissible shape).
const SIZES: &[usize] = &[10_000, 100_000, 1_000_000];
/// Layered-random generator seed — fixed so the curve is reproducible.
const SEED: u64 = 7;
/// Timed passes per point; the median is reported.
const PASSES: usize = 9;
/// Scratch sweep size for cache eviction between passes — comfortably
/// larger than any last-level cache.
const SWEEP_BYTES: usize = 96 * 1024 * 1024;

/// Touch every cache line of a large scratch buffer so the next timing
/// pass starts with the graph evicted from the CPU caches, whatever the
/// graph's size.
fn evict_caches(scratch: &mut Vec<u8>) {
    if scratch.len() < SWEEP_BYTES {
        scratch.resize(SWEEP_BYTES, 1);
    }
    for i in (0..SWEEP_BYTES).step_by(64) {
        scratch[i] = scratch[i].wrapping_add(1);
    }
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`, or 0.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn build(family: &str, nodes: usize) -> Cdag {
    match family {
        "dwt" => {
            let target = nodes.div_ceil(3).max(4);
            let inputs = if target.is_power_of_two() {
                target
            } else {
                target.next_power_of_two() / 2
            };
            dwt_giga(inputs, inputs.trailing_zeros() as usize)
        }
        "mvm" => {
            // Fixed matrix width, scaled row count: every size then streams
            // the same per-row working set (one 1000-column input vector)
            // and the ladder varies only the stream length, which is the
            // quantity a near-linear scaling claim is about.
            let cols = 1000.min(nodes / 2).max(2);
            mvm_giga((nodes / cols).saturating_sub(1).max(1), cols)
        }
        "layered" => {
            let width = ((nodes as f64).sqrt() as usize).max(4);
            layered_random_giga((nodes / width).max(2), width, 3, SEED)
        }
        other => unreachable!("unknown family {other}"),
    }
}

struct Point {
    family: &'static str,
    scheduler: &'static str,
    nodes: usize,
    edges: usize,
    budget: Weight,
    cost: Weight,
    lb: Weight,
    moves: usize,
    wall_ms: f64,
    ns_per_edge: f64,
    rss_kb: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_on = init_telemetry_from_args(&args);
    let max_nodes: usize = args
        .iter()
        .position(|a| a == "--max-nodes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--max-nodes must be an integer"))
        .unwrap_or(usize::MAX);

    let schedulers: Vec<&'static dyn Scheduler> = ["topo-window", "slab-partition"]
        .into_iter()
        .map(|n| api::by_name(n).expect("streaming schedulers registered"))
        .collect();

    let mut points: Vec<Point> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    for family in ["dwt", "mvm", "layered"] {
        for &nodes in SIZES.iter().filter(|&&n| n <= max_nodes) {
            let cdag = build(family, nodes);
            let (n, e) = (cdag.len(), cdag.edge_count());
            let lb = algorithmic_lower_bound(&cdag);
            // Exactly the Prop. 2.3 minimum feasible budget: the tightest
            // red-memory regime the game admits, which is the regime a
            // streaming scheduler exists for.  It also keeps the
            // budget-to-working-set pressure structurally identical at
            // every ladder size, so the ns/edge curve measures scheduler
            // throughput rather than a shifting eviction regime.
            let budget = min_feasible_budget(&cdag);
            let g = AnyGraph::custom(format!("{family}-giga"), cdag);
            for s in &schedulers {
                // Cold-cache median-of-9: a cache-sized scratch sweep evicts
                // the graph between passes, so a 10k graph (which otherwise
                // lives in L2 after its build) is measured from DRAM exactly
                // like the million-node points.  Warm-vs-cold asymmetry
                // would otherwise dominate the drift ratio and say nothing
                // about the scheduler.  The median is robust against the
                // multi-tenant noise spikes of shared hosts.
                let mut pass_ms = Vec::with_capacity(PASSES);
                let mut schedule = None;
                for _ in 0..PASSES {
                    evict_caches(&mut scratch);
                    let t = Instant::now();
                    let sched = s
                        .schedule(&g, budget)
                        .expect("budget equals the Prop. 2.3 minimum");
                    pass_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    schedule = Some(sched);
                }
                pass_ms.sort_by(f64::total_cmp);
                let median_ms = pass_ms[PASSES / 2];
                let schedule = schedule.expect("at least one pass ran");
                let stats = validate_schedule(g.cdag(), budget, &schedule)
                    .expect("streaming schedules replay cleanly");
                assert!(stats.cost >= lb, "cost below the Prop. 2.4 bound");
                points.push(Point {
                    family,
                    scheduler: s.name(),
                    nodes: n,
                    edges: e,
                    budget,
                    cost: stats.cost,
                    lb,
                    moves: stats.moves,
                    wall_ms: median_ms,
                    ns_per_edge: median_ms * 1e6 / e as f64,
                    rss_kb: peak_rss_kb(),
                });
                println!(
                    "{family:>7} x{n:>7} nodes  {:<14}  {:>9.1} ms  {:>6.0} ns/edge  gap {:.4}x",
                    s.name(),
                    median_ms,
                    median_ms * 1e6 / e as f64,
                    stats.cost as f64 / lb as f64,
                );
            }
            if telemetry_on {
                telemetry::flush_run(&format!("bench_streaming {family} {n}"));
            }
        }
    }

    // The near-linearity acceptance bar, asserted at generation time when
    // the full ladder ran (a --max-nodes smoke has nothing to compare).
    // Judged on each scheduler's worst-case envelope: at every ladder rank
    // take the slowest family's ns/edge.  The envelope bounds the per-edge
    // cost a user can observe at that scale; per-family curves stay fully
    // published, and the envelope is robust to one family being
    // anomalously cache-friendly at the small end (a 10k mvm graph is
    // sequential and L2-resident, which says nothing about scaling).
    for s in &schedulers {
        let mut envelope: Vec<f64> = Vec::new();
        for family in ["dwt", "mvm", "layered"] {
            let mut curve: Vec<&Point> = points
                .iter()
                .filter(|p| p.family == family && p.scheduler == s.name())
                .collect();
            curve.sort_by_key(|p| p.nodes);
            if envelope.is_empty() {
                envelope = curve.iter().map(|p| p.ns_per_edge).collect();
            } else {
                for (e, p) in envelope.iter_mut().zip(&curve) {
                    *e = e.max(p.ns_per_edge);
                }
            }
        }
        if envelope.len() < 2 {
            continue;
        }
        let (first, last) = (envelope[0], envelope[envelope.len() - 1]);
        assert!(
            last <= first * BENCH_STREAMING_MAX_DRIFT,
            "{}: worst-family ns/edge envelope drifted {first:.1} -> {last:.1}",
            s.name()
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"{BENCH_STREAMING_SCHEMA}\",");
    let _ = writeln!(
        json,
        "  \"description\": \"Streaming-scheduler scaling curve: topo-window and slab-partition \
         over dwt_giga/mvm_giga/layered_random_giga graphs from ~10k to ~1M nodes at the \
         Prop. 2.3 minimum feasible budget. wall_ms is the median of nine cold-cache schedule \
         passes on \
         one host, each pass preceded by a cache-evicting scratch sweep so every size is timed \
         DRAM-resident (only ratios are portable); ns_per_edge = wall_ms * 1e6 / edges, with \
         each scheduler's worst-case envelope (max ns_per_edge over families at each ladder \
         size) asserted within 1.5x of its smallest-size value; peak_rss_kb is the \
         process-wide VmHWM high-water proxy (non-decreasing across points, 0 if unavailable); \
         bound_gap = cost_bits / lower_bound_bits (Prop. 2.4).\","
    );
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p pebblyn-bench --bin bench_streaming\","
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"family\": \"{}\",", p.family);
        let _ = writeln!(json, "      \"scheduler\": \"{}\",", p.scheduler);
        let _ = writeln!(json, "      \"nodes\": {},", p.nodes);
        let _ = writeln!(json, "      \"edges\": {},", p.edges);
        let _ = writeln!(json, "      \"budget_bits\": {},", p.budget);
        let _ = writeln!(json, "      \"cost_bits\": {},", p.cost);
        let _ = writeln!(json, "      \"lower_bound_bits\": {},", p.lb);
        let _ = writeln!(
            json,
            "      \"bound_gap\": {:.6},",
            p.cost as f64 / p.lb as f64
        );
        let _ = writeln!(json, "      \"moves\": {},", p.moves);
        let _ = writeln!(json, "      \"wall_ms\": {:.3},", p.wall_ms);
        let _ = writeln!(json, "      \"ns_per_edge\": {:.3},", p.ns_per_edge);
        let _ = writeln!(json, "      \"peak_rss_kb\": {}", p.rss_kb);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    // Self-check before publishing: the artifact must satisfy its own
    // validator (the same one the golden test applies to the committed
    // copy) — except the drift bar, which needs the full ladder.
    if max_nodes >= *SIZES.last().unwrap() {
        validate_bench_streaming(&json).expect("generated artifact validates");
    }

    let path = results_dir().join("bench_streaming.json");
    std::fs::write(&path, &json).expect("write bench_streaming.json");
    println!("\nwrote {}", path.display());
}
