//! Multiprocessor scheduler sweep: `results/bench_multi.json`.
//!
//! For each workload family (DWT, MVM, layered-random) and each
//! multiprocessor scheduler (`partition-belady`, `comm-list`), play the
//! p-processor WRBPG at p ∈ {1, 2, 4, 8} with a fixed per-processor
//! budget and record the two axes the multiprocessor game trades
//! between: **makespan** (the parallel finishing time under per-processor
//! clocks) and **total I/O** (slow-memory traffic plus communication).
//! The headline structure the artifact documents: partition-belady's
//! (makespan, total-I/O) pair never worsens as processors are added (it
//! is best-of-q by construction), and at p = 1 both schedulers reproduce
//! the single-processor greedy-Belady answer exactly — zero
//! communication, makespan equal to the serial busy time.
//!
//! Wall times are single-host medians of five passes; only ratios are
//! portable.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin bench_multi
//! ```

use pebblyn::prelude::*;
use pebblyn::schedulers::multi;
use pebblyn_bench::results_dir;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::time::Instant;

/// Processor-count ladder.
const PROCS: &[usize] = &[1, 2, 4, 8];
/// Timed passes per point; the median is reported.
const PASSES: usize = 5;
/// Layered-random generator seed — fixed so the artifact is reproducible.
const SEED: u64 = 7;

fn build(family: &str) -> Cdag {
    match family {
        "dwt" => DwtGraph::new(256, 8, WeightScheme::Equal(16))
            .expect("admissible DWT shape")
            .cdag()
            .clone(),
        "mvm" => MvmGraph::new(96, 120, WeightScheme::DoubleAccumulator(16))
            .expect("admissible MVM shape")
            .cdag()
            .clone(),
        "layered" => {
            let mut rng = ChaCha8Rng::seed_from_u64(SEED);
            pebblyn::graphs::testgraphs::random_layered_dag(24, 48, 4..=16, &mut rng)
                .expect("admissible layered shape")
        }
        other => unreachable!("unknown family {other}"),
    }
}

struct Point {
    family: &'static str,
    scheduler: &'static str,
    procs: usize,
    proc_budget: Weight,
    io_cost: Weight,
    comm_cost: Weight,
    makespan: Weight,
    moves: u64,
    comm_moves: u64,
    procs_used: usize,
    wall_ms: f64,
}

fn main() {
    type MultiFn = fn(&Cdag, &MachineSpec) -> Option<(MultiSchedule, MultiStats)>;
    let schedulers: [(&str, MultiFn); 2] = [
        ("partition-belady", multi::partition_schedule_with_stats),
        ("comm-list", multi::comm_list_schedule_with_stats),
    ];

    let mut points: Vec<Point> = Vec::new();
    for family in ["dwt", "mvm", "layered"] {
        let cdag = build(family);
        let lb = algorithmic_lower_bound(&cdag);
        // Tight but feasible per-processor memory: the Prop. 2.3 minimum
        // plus one word of slack, so eviction pressure is real at every p
        // and identical across the ladder.
        let budget = min_feasible_budget(&cdag) + 16;
        for (name, run) in schedulers {
            let mut prev: Option<(Weight, Weight)> = None;
            for &p in PROCS {
                let spec = MachineSpec::symmetric(p, budget);
                let mut pass_ms = Vec::with_capacity(PASSES);
                let mut result = None;
                for _ in 0..PASSES {
                    let t = Instant::now();
                    let r = run(&cdag, &spec).expect("budget above the Prop. 2.3 minimum");
                    pass_ms.push(t.elapsed().as_secs_f64() * 1e3);
                    result = Some(r);
                }
                pass_ms.sort_by(f64::total_cmp);
                let (schedule, stats) = result.expect("at least one pass ran");
                let replay = validate_multi_schedule(&cdag, &spec, &schedule)
                    .expect("multiprocessor schedules replay cleanly");
                assert_eq!(replay.total_cost(), stats.total_cost());
                assert!(stats.io_cost >= lb, "I/O below the Prop. 2.4 bound");
                if p == 1 {
                    assert_eq!(stats.comm_moves, 0, "p=1 must not communicate");
                }
                if name == "partition-belady" {
                    // Best-of-q construction: adding processors never hurts.
                    let key = (stats.makespan, stats.total_cost());
                    if let Some(prev) = prev {
                        assert!(key <= prev, "{family}: partition-belady worsened at p={p}");
                    }
                    prev = Some(key);
                }
                println!(
                    "{family:>7}  {name:<17}  p={p}  makespan {:>8}  io {:>8}  comm {:>6}  ({:>6.2} ms)",
                    stats.makespan,
                    stats.total_cost(),
                    stats.comm_cost,
                    pass_ms[PASSES / 2],
                );
                points.push(Point {
                    family,
                    scheduler: name,
                    procs: p,
                    proc_budget: budget,
                    io_cost: stats.io_cost,
                    comm_cost: stats.comm_cost,
                    makespan: stats.makespan,
                    moves: stats.moves,
                    comm_moves: stats.comm_moves,
                    procs_used: stats.procs_used(),
                    wall_ms: pass_ms[PASSES / 2],
                });
            }
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"pebblyn/bench_multi/v1\",");
    let _ = writeln!(
        json,
        "  \"description\": \"Multiprocessor WRBPG sweep: partition-belady and comm-list on \
         DWT(256,8)/MVM(96,120)/layered-random(24x48, seed 7) machines of p in {{1,2,4,8}} \
         identical processors at a fixed per-processor budget (Prop. 2.3 minimum + one \
         16-bit word) and the default communication price 2. total_io_bits = slow-memory \
         loads + stores + communication; makespan_bits is the parallel finishing time under \
         per-processor clocks (weights double as durations); at p=1 both schedulers equal \
         single-processor greedy-Belady with zero communication, and partition-belady's \
         (makespan, total_io) is non-worsening in p by construction. wall_ms is a \
         single-host median of five passes; only ratios are portable.\","
    );
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p pebblyn-bench --bin bench_multi\","
    );
    let _ = writeln!(json, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"family\": \"{}\",", p.family);
        let _ = writeln!(json, "      \"scheduler\": \"{}\",", p.scheduler);
        let _ = writeln!(json, "      \"procs\": {},", p.procs);
        let _ = writeln!(json, "      \"proc_budget_bits\": {},", p.proc_budget);
        let _ = writeln!(
            json,
            "      \"total_io_bits\": {},",
            p.io_cost + p.comm_cost
        );
        let _ = writeln!(json, "      \"slow_io_bits\": {},", p.io_cost);
        let _ = writeln!(json, "      \"comm_bits\": {},", p.comm_cost);
        let _ = writeln!(json, "      \"makespan_bits\": {},", p.makespan);
        let _ = writeln!(json, "      \"moves\": {},", p.moves);
        let _ = writeln!(json, "      \"comm_moves\": {},", p.comm_moves);
        let _ = writeln!(json, "      \"procs_used\": {},", p.procs_used);
        let _ = writeln!(json, "      \"wall_ms\": {:.3}", p.wall_ms);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let path = results_dir().join("bench_multi.json");
    std::fs::write(&path, &json).expect("write bench_multi.json");
    println!("\nwrote {}", path.display());
}
