//! Exact-search micro-benchmark: the bound-guided A\* against the plain
//! Dijkstra baseline it replaced, plus the wide-mask / symmetry / thread
//! ablation that certifies the post-64-node solver.
//!
//! **Section 1 (legacy races).**  For each ≤ 64-node certification-suite
//! workload the binary runs both solvers at the same budget and reports
//! expanded states and wall time.  The baseline is
//! [`ExactSolver::dijkstra_baseline`] — no heuristic, no dominance pruning,
//! raw four-move successor relation, no symmetry — which is byte-identical
//! in behaviour to the pre-A\* solver, so the comparison measures exactly
//! the pruning levers.  These graphs all dispatch to the `u64` fast path
//! (`mask_words = 1` is recorded per case to prove it).
//!
//! **Section 2 (wide ablation).**  A 72-node diamond chain — past the old
//! `u64` wall, so it runs on `Words<2>` masks — is solved with symmetry
//! reduction off and on, and then at 1 and 8 worker threads, asserting the
//! thread count changes *nothing* (cost, every statistic, the steal count).
//!
//! **Section 3 (per-lever ablation).**  The 20-node reconvergent mesh is
//! solved with each of the PR-9 levers — the landmark/PDB bound tier,
//! certified WL-orbit symmetry, and partial expansion — enabled separately
//! on top of the PR-8 configuration, then all together, recording expanded
//! states, the open-list peak, and re-expansions per configuration.  A
//! micro-bench of the hoisted forced-reload evaluation against the
//! per-state reference DP rides along.
//!
//! Expanded-state counts are deterministic on any host; wall times are
//! same-host single-run measurements and only meaningful as ratios.
//! `--records <FILE>` additionally writes every run's deterministic fields
//! (no wall times) as JSON — CI re-runs the bench at several thread counts
//! and byte-diffs the records.

use pebblyn::exact::{ExactError, ExactSolver, SearchStats, Solution};
use pebblyn::prelude::*;
use pebblyn::telemetry;
use pebblyn_bench::{
    diamond_chain, init_telemetry_from_args, reconvergent_mesh16, reconvergent_mesh20, results_dir,
};
use std::time::Instant;

/// One workload/budget instance both solvers race on.
struct Case {
    name: &'static str,
    workload: &'static str,
    graph: Cdag,
    budget: Weight,
}

fn cases() -> Vec<Case> {
    let dwt = DwtGraph::new(8, 2, WeightScheme::Equal(4)).unwrap();
    let tree = pebblyn::graphs::tree::full_kary(2, 3, WeightScheme::Equal(2)).unwrap();
    let fft = pebblyn::graphs::testgraphs::fft_butterfly(2, WeightScheme::Equal(2)).unwrap();
    let mesh = reconvergent_mesh16();
    let b_dwt = min_feasible_budget(dwt.cdag());
    let b_tree = min_feasible_budget(&tree) + 2;
    let b_fft = min_feasible_budget(&fft) + 4;
    let b_mesh = min_feasible_budget(&mesh);
    vec![
        Case {
            name: "dwt8x2_minb",
            workload: "DWT(8,2) Equal(4) at min feasible budget",
            graph: dwt.cdag().clone(),
            budget: b_dwt,
        },
        Case {
            name: "kary2x3_minb+2",
            workload: "full binary tree depth 3, budget min+2",
            graph: tree,
            budget: b_tree,
        },
        Case {
            name: "fft4_minb+4",
            workload: "FFT-4 butterfly, budget min+4",
            graph: fft,
            budget: b_fft,
        },
        Case {
            name: "mesh16_minb",
            workload: "16-node reconvergent mesh at min feasible budget",
            graph: mesh,
            budget: b_mesh,
        },
    ]
}

struct Run {
    cost: Option<Weight>,
    stats: SearchStats,
    capped: bool,
    ms: f64,
}

fn run(solver: &ExactSolver, g: &Cdag, budget: Weight) -> Run {
    let t = Instant::now();
    let r: Result<Solution, ExactError> = solver.solve(g, budget);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    match r {
        Ok(sol) => Run {
            cost: sol.cost,
            stats: sol.stats,
            capped: false,
            ms,
        },
        Err(e) => Run {
            cost: None,
            stats: SearchStats {
                expanded: e.states_expanded(),
                ..SearchStats::default()
            },
            capped: true,
            ms,
        },
    }
}

/// Deterministic fields of one solve, serialized for the `--records` file.
/// Deliberately excludes wall times and anything else host-dependent:
/// CI byte-diffs these records across thread counts.
fn record(name: &str, config: &str, budget: Weight, r: &Run) -> String {
    let st = &r.stats;
    format!(
        r#"    {{
      "case": "{name}",
      "config": "{config}",
      "budget": {budget},
      "cost": {cost},
      "expanded": {expanded},
      "generated": {generated},
      "dominated": {dominated},
      "deduped": {deduped},
      "symmetry_pruned": {symmetry_pruned},
      "batches": {batches},
      "frontier_steals": {frontier_steals},
      "peak_open": {peak_open},
      "re_expansions": {re_expanded},
      "frontier_left": {frontier_left},
      "root_bound": {root_bound},
      "mask_words": {mask_words}
    }}"#,
        cost = r.cost.map_or_else(|| "null".into(), |c| c.to_string()),
        expanded = st.expanded,
        generated = st.generated,
        dominated = st.dominated,
        deduped = st.deduped,
        symmetry_pruned = st.symmetry_pruned,
        batches = st.batches,
        frontier_steals = st.frontier_steals,
        peak_open = st.peak_open,
        re_expanded = st.re_expanded,
        frontier_left = st.frontier_left,
        root_bound = st.root_bound,
        mask_words = st.mask_words,
    )
}

/// Run `f` with the worker pool pinned to `threads` via `RAYON_NUM_THREADS`
/// (the highest-priority knob), restoring the previous value after.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let r = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    r
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_on = init_telemetry_from_args(&argv);
    let records_path = argv
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let astar = ExactSolver::default();
    let baseline = ExactSolver::dijkstra_baseline();
    let mut records = String::new();
    let mut push_record = |name: &str, config: &str, budget: Weight, r: &Run| {
        if !records.is_empty() {
            records.push_str(",\n");
        }
        records.push_str(&record(name, config, budget, r));
    };

    println!("exact search micro-bench: plain Dijkstra vs bound-guided A*\n");
    println!(
        "{:<16} {:>6} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "case", "budget", "dij states", "dij ms", "A* states", "A* ms", "shrink"
    );

    let mut entries = String::new();
    for case in cases() {
        // One telemetry run per solver per case: reset between solves so
        // each flushed record carries exactly that solve's counters (the
        // JSONL's states_expanded then equals the table's column).
        if telemetry_on {
            telemetry::reset();
        }
        let before = run(&baseline, &case.graph, case.budget);
        if telemetry_on {
            telemetry::flush_run(&format!("{}/dijkstra", case.name));
            telemetry::reset();
        }
        let after = run(&astar, &case.graph, case.budget);
        if telemetry_on {
            telemetry::flush_run(&format!("{}/astar", case.name));
        }
        assert!(!after.capped, "{}: A* hit the state cap", case.name);
        assert_eq!(
            after.stats.mask_words, 1,
            "{}: a ≤64-node case must stay on the u64 fast path",
            case.name
        );
        if !before.capped {
            assert_eq!(
                before.cost, after.cost,
                "{}: solvers disagree on the optimum",
                case.name
            );
        }
        push_record(case.name, "dijkstra", case.budget, &before);
        push_record(case.name, "astar", case.budget, &after);
        let shrink = before.stats.expanded as f64 / (after.stats.expanded.max(1)) as f64;
        println!(
            "{:<16} {:>6} {:>11}{} {:>10.1} {:>12} {:>10.1} {:>7.1}x",
            case.name,
            case.budget,
            before.stats.expanded,
            if before.capped { "+" } else { " " },
            before.ms,
            after.stats.expanded,
            after.ms,
            shrink,
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            r#"    {{
      "bench": "{name}",
      "workload": "{workload}",
      "budget": {budget},
      "optimal_cost": {cost},
      "mask_words": 1,
      "before_states_expanded": {bs},
      "before_hit_state_cap": {bc},
      "before_ms": {bms:.1},
      "after_states_expanded": {as_},
      "after_ms": {ams:.1},
      "state_reduction": {shrink:.1}
    }}"#,
            name = case.name,
            workload = case.workload,
            budget = case.budget,
            cost = after.cost.map_or_else(|| "null".into(), |c| c.to_string()),
            bs = before.stats.expanded,
            bc = before.capped,
            bms = before.ms,
            as_ = after.stats.expanded,
            ams = after.ms,
            shrink = shrink,
        ));
    }

    // --- Section 2: the 72-node wide-mask ablation -----------------------
    let wide = diamond_chain(18);
    let wide_budget: Weight = 3;
    assert_eq!(wide.len(), 72, "the wide case must cross the 64-node wall");
    println!("\nwide ablation: 72-node diamond chain, budget {wide_budget} (Words<2> masks)\n");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>8}",
        "config", "states", "sym prunes", "steals", "ms"
    );

    if telemetry_on {
        telemetry::reset();
    }
    let sym_off = run(&astar.with_symmetry(false), &wide, wide_budget);
    if telemetry_on {
        telemetry::flush_run("diamond72/sym_off");
        telemetry::reset();
    }
    let sym_on = run(&astar, &wide, wide_budget);
    if telemetry_on {
        telemetry::flush_run("diamond72/sym_on");
    }
    assert!(!sym_off.capped && !sym_on.capped, "diamond72 hit state cap");
    assert_eq!(sym_on.cost, sym_off.cost, "symmetry must not change cost");
    assert_eq!(sym_on.cost, Some(2), "diamond chain optimum is 2");
    assert_eq!(sym_on.stats.mask_words, 2, "72 nodes need Words<2>");
    assert!(
        sym_on.stats.expanded < sym_off.stats.expanded,
        "orbit collapsing must shrink the search"
    );
    let t1 = with_threads(1, || run(&astar, &wide, wide_budget));
    let t8 = with_threads(8, || run(&astar, &wide, wide_budget));
    assert_eq!(t1.cost, t8.cost, "thread count changed the optimum");
    assert_eq!(
        t1.stats, t8.stats,
        "thread count changed the search trajectory"
    );
    push_record("diamond72", "sym_off", wide_budget, &sym_off);
    push_record("diamond72", "sym_on", wide_budget, &sym_on);
    push_record("diamond72", "sym_on_threads1", wide_budget, &t1);
    push_record("diamond72", "sym_on_threads8", wide_budget, &t8);
    for (label, r) in [
        ("sym_off", &sym_off),
        ("sym_on", &sym_on),
        ("sym_on @1 thread", &t1),
        ("sym_on @8 threads", &t8),
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>10} {:>8.1}",
            label, r.stats.expanded, r.stats.symmetry_pruned, r.stats.frontier_steals, r.ms
        );
    }

    let ablation = format!(
        r#"    {{
      "bench": "diamond72",
      "workload": "72-node diamond chain (18 fused diamonds), budget 3",
      "nodes": 72,
      "budget": {wide_budget},
      "optimal_cost": {cost},
      "mask_words": 2,
      "sym_off_states_expanded": {off},
      "sym_on_states_expanded": {on},
      "symmetry_pruned": {pruned},
      "frontier_steals": {steals},
      "threads1_states_expanded": {t1s},
      "threads8_states_expanded": {t8s},
      "thread_invariant": {inv}
    }}"#,
        cost = sym_on.cost.unwrap(),
        off = sym_off.stats.expanded,
        on = sym_on.stats.expanded,
        pruned = sym_on.stats.symmetry_pruned,
        steals = sym_on.stats.frontier_steals,
        t1s = t1.stats.expanded,
        t8s = t8.stats.expanded,
        inv = t1.stats == t8.stats,
    );

    // --- Section 3: per-lever ablation on the 20-node mesh ---------------
    let mesh20 = reconvergent_mesh20();
    let mesh20_budget = min_feasible_budget(&mesh20);
    // The PR-8 configuration every lever is measured against: forced-reload
    // bound, twin-only symmetry, full expansion.
    let pr8 = ExactSolver::default()
        .with_heuristic(Heuristic::ForcedReload)
        .with_wl_symmetry(false)
        .with_partial_expansion(false);
    let lever_configs: [(&str, &str, ExactSolver); 5] = [
        ("base_pr8", "mesh20/base", pr8),
        (
            "landmark_pdb",
            "mesh20/landmark_pdb",
            pr8.with_heuristic(Heuristic::LandmarkPdb),
        ),
        ("wl_orbits", "mesh20/wl_orbits", pr8.with_wl_symmetry(true)),
        (
            "partial_expansion",
            "mesh20/partial_expansion",
            pr8.with_partial_expansion(true),
        ),
        ("all_levers", "mesh20/all", ExactSolver::default()),
    ];
    println!(
        "\nper-lever ablation: 20-node reconvergent mesh, budget {mesh20_budget} \
         (each PR-9 lever alone on the PR-8 base, then all)\n"
    );
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>8}",
        "config", "states", "open peak", "re-expands", "ms"
    );
    let mut lever_entries = String::new();
    let mut lever_cost: Option<Weight> = None;
    for (name, run_label, solver) in &lever_configs {
        if telemetry_on {
            telemetry::reset();
        }
        let r = run(solver, &mesh20, mesh20_budget);
        if telemetry_on {
            telemetry::flush_run(run_label);
        }
        assert!(!r.capped, "mesh20/{name} hit the state cap");
        match lever_cost {
            None => lever_cost = r.cost,
            Some(c) => assert_eq!(r.cost, Some(c), "mesh20/{name} changed the optimum"),
        }
        push_record("mesh20", name, mesh20_budget, &r);
        println!(
            "{:<20} {:>10} {:>10} {:>12} {:>8.1}",
            name, r.stats.expanded, r.stats.peak_open, r.stats.re_expanded, r.ms
        );
        if !lever_entries.is_empty() {
            lever_entries.push_str(",\n");
        }
        lever_entries.push_str(&format!(
            r#"    {{
      "bench": "mesh20",
      "config": "{name}",
      "budget": {mesh20_budget},
      "optimal_cost": {cost},
      "states_expanded": {expanded},
      "open_list_peak": {peak},
      "re_expansions": {re},
      "symmetry_pruned": {sym},
      "ms": {ms:.1}
    }}"#,
            cost = r.cost.map_or_else(|| "null".into(), |c| c.to_string()),
            expanded = r.stats.expanded,
            peak = r.stats.peak_open,
            re = r.stats.re_expanded,
            sym = r.stats.symmetry_pruned,
            ms = r.ms,
        ));
    }

    // Hoist micro-bench: the per-state forced-reload evaluation (masked
    // fold over precomputed per-node reload potentials) against the
    // per-state reference DP it replaced, over a deterministic state sweep.
    let hoist_bounds: pebblyn::core::StateBounds = pebblyn::core::StateBounds::new(&mesh20, 1, 1);
    let node_mask: u64 = (1 << mesh20.len()) - 1;
    let sweep: Vec<(u64, u64)> = (0..20_000u64)
        .map(|i| {
            let mut x = i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            x ^= x >> 29;
            let red = x & node_mask;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 32;
            (red, x & node_mask)
        })
        .collect();
    let t = Instant::now();
    let mut hoisted_sum: Weight = 0;
    for &(red, blue) in &sweep {
        hoisted_sum += hoist_bounds.forced_reload(red, blue);
    }
    let hoisted_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mut reference_sum: Weight = 0;
    for &(red, blue) in &sweep {
        reference_sum += hoist_bounds.forced_reload_reference(red, blue);
    }
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        hoisted_sum, reference_sum,
        "hoisted forced-reload disagrees with the reference DP"
    );
    let hoist_speedup = reference_ms / hoisted_ms.max(1e-9);
    println!(
        "\nhoisted forced-reload: {hoisted_ms:.1} ms vs reference DP {reference_ms:.1} ms \
         over {} states ({hoist_speedup:.1}x)",
        sweep.len()
    );

    let json = format!(
        r#"{{
  "description": "Exact-solver search benchmark. 'benchmarks': expanded states and wall time for the plain Dijkstra baseline (no heuristic, no dominance, raw four-move successors, no symmetry — the pre-A* solver) vs the bound-guided A* (landmark-pdb bound, dominance pruning, macro moves, WL-orbit symmetry reduction, partial expansion); all four cases dispatch to the u64 fast path (mask_words 1). 'wide_ablation': a 72-node diamond chain past the old 64-node u64 wall, solved on Words<2> masks with symmetry off/on and at 1 vs 8 worker threads (thread_invariant asserts identical stats). 'per_lever_ablation': the 20-node reconvergent mesh solved with each PR-9 lever (landmark-pdb bound tier, certified WL-orbit generators, partial expansion) enabled alone on the PR-8 base (forced-reload, twin-only symmetry, full expansion), then all together — states_expanded and open_list_peak per configuration. 'hoist_microbench': the hoisted forced-reload evaluation (masked fold over precomputed reload potentials) vs the per-state reference DP over a 20k-state sweep. States-expanded counts are deterministic; wall times are single-run same-host measurements and only the ratios are meaningful across machines. before_hit_state_cap means the baseline exceeded 5M expansions and its count is a lower bound.",
  "date": "2026-08-09",
  "host": "linux x86_64, 1 CPU",
  "command": "cargo run --release -p pebblyn-bench --bin bench_exact",
  "benchmarks": [
{entries}
  ],
  "wide_ablation": [
{ablation}
  ],
  "per_lever_ablation": [
{lever_entries}
  ],
  "hoist_microbench": {{
    "states_swept": {swept},
    "hoisted_ms": {hoisted_ms:.1},
    "reference_ms": {reference_ms:.1},
    "speedup": {hoist_speedup:.1}
  }}
}}
"#,
        swept = sweep.len(),
    );
    let path = results_dir().join("bench_exact.json");
    std::fs::write(&path, json).expect("write bench_exact.json");
    println!("\n[json] {}", path.display());

    if let Some(rp) = records_path {
        let body = format!(
            "{{\n  \"description\": \"Deterministic per-solve records (no wall times); byte-identical at any thread count.\",\n  \"records\": [\n{records}\n  ]\n}}\n"
        );
        std::fs::write(&rp, body).unwrap_or_else(|e| panic!("write {rp}: {e}"));
        println!("[records] {rp}");
    }
}
