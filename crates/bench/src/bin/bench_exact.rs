//! Exact-search micro-benchmark: the bound-guided A\* against the plain
//! Dijkstra baseline it replaced.
//!
//! For each certification-suite workload the binary runs both solvers at
//! the same budget and reports expanded states and wall time, then writes
//! `results/bench_exact.json`.  The baseline is
//! [`ExactSolver::dijkstra_baseline`] — no heuristic, no dominance
//! pruning, raw four-move successor relation — which is byte-identical in
//! behaviour to the pre-A\* solver, so the comparison measures exactly the
//! three pruning levers.  Expanded-state counts are deterministic on any
//! host; wall times are same-host single-run measurements and only
//! meaningful as ratios.

use pebblyn::exact::{ExactSolver, Solution, StateLimitExceeded};
use pebblyn::prelude::*;
use pebblyn::telemetry;
use pebblyn_bench::{init_telemetry_from_args, reconvergent_mesh16, results_dir};
use std::time::Instant;

/// One workload/budget instance both solvers race on.
struct Case {
    name: &'static str,
    workload: &'static str,
    graph: Cdag,
    budget: Weight,
}

fn cases() -> Vec<Case> {
    let dwt = DwtGraph::new(8, 2, WeightScheme::Equal(4)).unwrap();
    let tree = pebblyn::graphs::tree::full_kary(2, 3, WeightScheme::Equal(2)).unwrap();
    let fft = pebblyn::graphs::testgraphs::fft_butterfly(2, WeightScheme::Equal(2)).unwrap();
    let mesh = reconvergent_mesh16();
    let b_dwt = min_feasible_budget(dwt.cdag());
    let b_tree = min_feasible_budget(&tree) + 2;
    let b_fft = min_feasible_budget(&fft) + 4;
    let b_mesh = min_feasible_budget(&mesh);
    vec![
        Case {
            name: "dwt8x2_minb",
            workload: "DWT(8,2) Equal(4) at min feasible budget",
            graph: dwt.cdag().clone(),
            budget: b_dwt,
        },
        Case {
            name: "kary2x3_minb+2",
            workload: "full binary tree depth 3, budget min+2",
            graph: tree,
            budget: b_tree,
        },
        Case {
            name: "fft4_minb+4",
            workload: "FFT-4 butterfly, budget min+4",
            graph: fft,
            budget: b_fft,
        },
        Case {
            name: "mesh16_minb",
            workload: "16-node reconvergent mesh at min feasible budget",
            graph: mesh,
            budget: b_mesh,
        },
    ]
}

struct Run {
    cost: Option<Weight>,
    states: usize,
    capped: bool,
    ms: f64,
}

fn run(solver: &ExactSolver, g: &Cdag, budget: Weight) -> Run {
    let t = Instant::now();
    let r: Result<Solution, StateLimitExceeded> = solver.solve(g, budget);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    match r {
        Ok(sol) => Run {
            cost: sol.cost,
            states: sol.stats.expanded,
            capped: false,
            ms,
        },
        Err(e) => Run {
            cost: None,
            states: e.states_expanded,
            capped: true,
            ms,
        },
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_on = init_telemetry_from_args(&argv);
    let astar = ExactSolver::default();
    let baseline = ExactSolver::dijkstra_baseline();
    println!("exact search micro-bench: plain Dijkstra vs bound-guided A*\n");
    println!(
        "{:<16} {:>6} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "case", "budget", "dij states", "dij ms", "A* states", "A* ms", "shrink"
    );

    let mut entries = String::new();
    for case in cases() {
        // One telemetry run per solver per case: reset between solves so
        // each flushed record carries exactly that solve's counters (the
        // JSONL's states_expanded then equals the table's column).
        if telemetry_on {
            telemetry::reset();
        }
        let before = run(&baseline, &case.graph, case.budget);
        if telemetry_on {
            telemetry::flush_run(&format!("{}/dijkstra", case.name));
            telemetry::reset();
        }
        let after = run(&astar, &case.graph, case.budget);
        if telemetry_on {
            telemetry::flush_run(&format!("{}/astar", case.name));
        }
        assert!(!after.capped, "{}: A* hit the state cap", case.name);
        if !before.capped {
            assert_eq!(
                before.cost, after.cost,
                "{}: solvers disagree on the optimum",
                case.name
            );
        }
        let shrink = before.states as f64 / (after.states.max(1)) as f64;
        println!(
            "{:<16} {:>6} {:>11}{} {:>10.1} {:>12} {:>10.1} {:>7.1}x",
            case.name,
            case.budget,
            before.states,
            if before.capped { "+" } else { " " },
            before.ms,
            after.states,
            after.ms,
            shrink,
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            r#"    {{
      "bench": "{name}",
      "workload": "{workload}",
      "budget": {budget},
      "optimal_cost": {cost},
      "before_states_expanded": {bs},
      "before_hit_state_cap": {bc},
      "before_ms": {bms:.1},
      "after_states_expanded": {as_},
      "after_ms": {ams:.1},
      "state_reduction": {shrink:.1}
    }}"#,
            name = case.name,
            workload = case.workload,
            budget = case.budget,
            cost = after.cost.map_or_else(|| "null".into(), |c| c.to_string()),
            bs = before.states,
            bc = before.capped,
            bms = before.ms,
            as_ = after.states,
            ams = after.ms,
            shrink = shrink,
        ));
    }

    let json = format!(
        r#"{{
  "description": "Exact-solver search benchmark: expanded states and wall time for the plain Dijkstra baseline (no heuristic, no dominance, raw four-move successors — the pre-A* solver) vs the bound-guided A* (forced-reload bound, dominance pruning, macro moves). States-expanded counts are deterministic; wall times are single-run same-host measurements and only the ratios are meaningful across machines. before_hit_state_cap means the baseline exceeded 5M expansions and its count is a lower bound.",
  "date": "2026-08-06",
  "host": "linux x86_64, 1 CPU",
  "command": "cargo run --release -p pebblyn-bench --bin bench_exact",
  "benchmarks": [
{entries}
  ]
}}
"#
    );
    let path = results_dir().join("bench_exact.json");
    std::fs::write(&path, json).expect("write bench_exact.json");
    println!("\n[json] {}", path.display());
}
