//! Table 1: minimum fast memory size comparison across workloads, weight
//! configurations and scheduling approaches.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin table1
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::{init_telemetry_from_args, table1_rows, Table};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    init_telemetry_from_args(&argv);
    let mut t = Table::new(
        "Table 1 minimum fast memory",
        &[
            "workload",
            "node_weights",
            "approach",
            "min_words",
            "word_bits",
            "min_capacity_bits",
            "pow2_capacity_bits",
        ],
    );
    for (label, scheme, ours_bits, baseline_bits) in table1_rows() {
        let (workload, weights) = label.split_once(' ').unwrap();
        let is_dwt = workload.starts_with("DWT");
        let (ours_name, base_name) = if is_dwt {
            ("Optimum*", "Layer-by-Layer")
        } else {
            ("Tiling*", "IOOpt UB")
        };
        for (approach, bits) in [(ours_name, ours_bits), (base_name, baseline_bits)] {
            t.row(vec![
                workload.to_string(),
                weights.to_string(),
                approach.to_string(),
                (bits / scheme.word_bits()).to_string(),
                scheme.word_bits().to_string(),
                bits.to_string(),
                round_pow2(bits).to_string(),
            ]);
        }
    }
    t.emit();
    println!("\n(* = this paper's approaches; words are 16-bit as in the paper)");
    pebblyn::telemetry::flush_run("table1");
}
