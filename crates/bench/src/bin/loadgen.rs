//! Trace-replay load generator for the scheduling daemon.
//!
//! ```sh
//! loadgen [--requests N] [--cases K] [--seed S] [--out FILE]
//!         [--socket PATH] [--assert-hit] [--assert-no-shed] [--shutdown]
//!         [--queue-depth N] [--workers N] [--telemetry FILE]
//! ```
//!
//! Replays a seeded, repeat-heavy request mix — identical repeats,
//! relabeled isomorphs, and cost-only probes over `K` conformance-generated
//! graphs — against the scheduling service and reports hit rate, latency
//! percentiles, and shed count to `results/service_load.json`.
//!
//! Two modes:
//!
//! * **in-process** (default): the trace runs twice through a
//!   [`Server`]-fronted [`Service`], once cache-enabled and once
//!   cache-disabled, so the report carries the cache's p50/p99 speedup on
//!   the same machine, same trace;
//! * **`--socket PATH`**: the trace drives a running `pebblyn serve`
//!   daemon over its unix socket, one frame per request.  `--assert-hit`
//!   and `--assert-no-shed` turn the report into a CI check, and
//!   `--shutdown` stops the daemon afterwards (awaiting its ack) so its
//!   telemetry file is flushed and checkable.

use pebblyn::conformance::metamorphic::{permute_nodes, random_perm};
use pebblyn::conformance::{generate, SplitRng};
use pebblyn::prelude::*;
use pebblyn::service::wire::{self, Frame};
use pebblyn_bench::{init_telemetry_from_args, results_dir};
use std::time::Instant;

struct Args {
    requests: usize,
    cases: u64,
    seed: u64,
    out: Option<String>,
    socket: Option<String>,
    assert_hit: bool,
    assert_no_shed: bool,
    shutdown: bool,
    queue_depth: usize,
    workers: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        requests: 400,
        cases: 12,
        seed: 0x10AD_6E4E,
        out: None,
        socket: None,
        assert_hit: false,
        assert_no_shed: false,
        shutdown: false,
        queue_depth: 64,
        workers: 0,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let num = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|e| format!("bad {name} {v:?}: {e}"))
        };
        match arg.as_str() {
            "--requests" => args.requests = num("--requests", value("--requests")?)? as usize,
            "--cases" => args.cases = num("--cases", value("--cases")?)?.max(1),
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            "--out" => args.out = Some(value("--out")?),
            "--socket" => args.socket = Some(value("--socket")?),
            "--assert-hit" => args.assert_hit = true,
            "--assert-no-shed" => args.assert_no_shed = true,
            "--shutdown" => args.shutdown = true,
            "--queue-depth" => {
                args.queue_depth = num("--queue-depth", value("--queue-depth")?)?.max(1) as usize
            }
            "--workers" => args.workers = num("--workers", value("--workers")?)? as usize,
            "--telemetry" => {
                value("--telemetry")?; // consumed by init_telemetry_from_args
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    Ok(args)
}

/// The deterministic request mix: per graph-cycle, identity full solves,
/// relabeled isomorphs, and cost-only probes, all against the
/// workload-agnostic `greedy-belady` so every graph in the mix is valid.
///
/// The unique graphs are mostly mid-size convolution CDAGs (a few
/// hundred nodes — large enough that a solve visibly out-costs a cache
/// probe, and path-like enough that canonical forms stay exact, so
/// relabeled isomorphs hit) with a seasoning of small
/// conformance-generated graphs (the shapes the differential oracle
/// fuzzes).  Three of four cycles resubmit a graph byte-identically —
/// the daemon pattern the identity fast path exists for — and the
/// fourth relabels it, exercising canonical transport.
fn trace(args: &Args) -> Vec<Request> {
    let graphs: Vec<Cdag> = (0..args.cases)
        .map(|i| {
            if i % 4 == 3 {
                generate(args.seed, i).graph
            } else {
                let n = 192 + 4 * i as usize;
                let k = 8 + (i as usize % 3);
                ConvGraph::new(n, k, WeightScheme::Equal(16))
                    .expect("valid conv params")
                    .cdag()
                    .clone()
            }
        })
        .collect();
    (0..args.requests)
        .map(|i| {
            let g = &graphs[i % graphs.len()];
            let cycle = i / graphs.len();
            let budget = min_feasible_budget(g) + g.total_weight() / 2;
            let (graph, cost_only) = match cycle % 4 {
                3 => {
                    let mut rng = SplitRng::for_case(args.seed ^ 0x5EED, i as u64);
                    let perm = random_perm(g.len(), &mut rng);
                    (permute_nodes(g, &perm), false)
                }
                2 => (g.clone(), true),
                _ => (g.clone(), false),
            };
            Request {
                id: i as u64,
                ask: ScheduleRequest::new(GraphSpec::Custom(graph), budget, "greedy-belady")
                    .with_cost_only(cost_only),
                no_cache: false,
            }
        })
        .collect()
}

/// Latency percentiles plus hit/shed accounting over one replay.
#[derive(Debug, Default)]
struct Pass {
    hits: u64,
    sheds: u64,
    answered: u64,
    latencies_ns: Vec<u64>,
}

impl Pass {
    fn observe(&mut self, resp: &Response, ns: u64) {
        self.latencies_ns.push(ns);
        match &resp.outcome {
            Outcome::Ok { cache_hit, .. } => {
                self.answered += 1;
                if *cache_hit {
                    self.hits += 1;
                }
            }
            Outcome::Rejected { kind, .. } => {
                if *kind == RejectKind::Overloaded {
                    self.sheds += 1;
                } else {
                    panic!("trace request rejected: {:?}", resp.outcome);
                }
            }
        }
    }

    fn percentile_us(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx] as f64 / 1e3
    }

    fn hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            self.hits as f64 / self.answered as f64
        }
    }

    fn json(&self) -> String {
        format!(
            r#"{{ "answered": {}, "hits": {}, "hit_rate": {:.4}, "shed": {}, "p50_us": {:.1}, "p99_us": {:.1} }}"#,
            self.answered,
            self.hits,
            self.hit_rate(),
            self.sheds,
            self.percentile_us(0.50),
            self.percentile_us(0.99),
        )
    }
}

/// Replay the trace through an in-process worker pool.
fn replay_in_process(reqs: &[Request], cache: bool, args: &Args) -> Pass {
    let service = std::sync::Arc::new(Service::new(&ServiceConfig {
        cache,
        ..ServiceConfig::default()
    }));
    let server = Server::start(
        std::sync::Arc::clone(&service),
        &ServerConfig {
            queue_depth: args.queue_depth,
            workers: args.workers,
        },
    );
    let mut pass = Pass::default();
    for req in reqs {
        // Clone outside the timer: marshalling a request is client work,
        // not service latency.
        let req = req.clone();
        let t = Instant::now();
        let resp = server.submit(req).recv().expect("worker answers");
        pass.observe(&resp, t.elapsed().as_nanos() as u64);
    }
    server.shutdown();
    pass
}

/// Replay the trace against a daemon's unix socket, one frame at a time.
fn replay_socket(reqs: &[Request], path: &str, shutdown: bool) -> std::io::Result<Pass> {
    use std::io::Read as _;
    let mut stream = std::os::unix::net::UnixStream::connect(path)?;
    let mut pass = Pass::default();
    for req in reqs {
        let t = Instant::now();
        wire::write_frame(&mut stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut stream)?
            .ok_or_else(|| std::io::Error::other("daemon closed mid-trace"))?;
        let frame = wire::decode_payload(&payload).map_err(std::io::Error::other)?;
        let Frame::Response(resp) = frame else {
            return Err(std::io::Error::other(format!("unexpected frame {frame:?}")));
        };
        pass.observe(&resp, t.elapsed().as_nanos() as u64);
    }
    if shutdown {
        wire::write_frame(&mut stream, &wire::encode_shutdown())?;
        // Await the ack (any remaining bytes) so the daemon has flushed
        // telemetry before we return and CI inspects its JSONL.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest)?;
    }
    Ok(pass)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_on = init_telemetry_from_args(&argv);
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let reqs = trace(&args);
    println!(
        "loadgen: {} requests over {} unique graphs (seed {:#x}){}",
        args.requests,
        args.cases,
        args.seed,
        match &args.socket {
            Some(p) => format!(", socket {p}"),
            None => ", in-process".into(),
        }
    );

    let (cached, cold) = match &args.socket {
        Some(path) => {
            let pass = replay_socket(&reqs, path, args.shutdown).unwrap_or_else(|e| {
                eprintln!("error: socket replay failed: {e}");
                std::process::exit(1);
            });
            (pass, None)
        }
        None => {
            let warm = replay_in_process(&reqs, true, &args);
            let cold = replay_in_process(&reqs, false, &args);
            (warm, Some(cold))
        }
    };

    println!(
        "cached: {:.1}% hits, p50 {:.1} us, p99 {:.1} us, {} shed",
        100.0 * cached.hit_rate(),
        cached.percentile_us(0.50),
        cached.percentile_us(0.99),
        cached.sheds,
    );
    let speedup = cold.as_ref().map(|c| {
        let s = c.percentile_us(0.50) / cached.percentile_us(0.50).max(1e-9);
        println!(
            "cold:   p50 {:.1} us, p99 {:.1} us -> cache p50 speedup {s:.1}x",
            c.percentile_us(0.50),
            c.percentile_us(0.99),
        );
        s
    });

    let json = format!(
        r#"{{
  "description": "Scheduling-daemon load report: a seeded repeat-heavy trace (identity repeats, relabeled isomorphs, cost-only probes over conformance-generated graphs) replayed through the service. In in-process mode the same trace also runs against a cache-disabled control and p50_speedup compares median latencies; wall times are same-host single-run measurements.",
  "command": "cargo run --release -p pebblyn-bench --bin loadgen",
  "requests": {requests},
  "unique_graphs": {cases},
  "seed": {seed},
  "scheduler": "greedy-belady",
  "transport": "{transport}",
  "cached": {cached},
  "cold": {cold},
  "p50_speedup": {speedup}
}}
"#,
        requests = args.requests,
        cases = args.cases,
        seed = args.seed,
        transport = if args.socket.is_some() {
            "unix-socket"
        } else {
            "in-process"
        },
        cached = cached.json(),
        cold = cold.as_ref().map_or("null".into(), Pass::json),
        speedup = speedup.map_or("null".into(), |s| format!("{s:.2}")),
    );
    let path = args
        .out
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("service_load.json"));
    std::fs::write(&path, json).expect("write service_load.json");
    println!("[json] {}", path.display());

    if telemetry_on {
        pebblyn::telemetry::flush_run("loadgen");
    }
    if args.assert_hit && cached.hits == 0 {
        eprintln!(
            "FAIL: --assert-hit: no cache hits over {} requests",
            args.requests
        );
        std::process::exit(1);
    }
    if args.assert_no_shed && cached.sheds > 0 {
        eprintln!("FAIL: --assert-no-shed: {} requests shed", cached.sheds);
        std::process::exit(1);
    }
}
