//! Figure 7: circuit-level metrics (area, leakage, read/write power,
//! read/write throughput) for the power-of-two memory capacities of
//! Table 1, via the SRAM macro model.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig7
//! ```

use pebblyn::prelude::*;
use pebblyn::synth::sram::reduction_pct;
use pebblyn_bench::{table1_rows, Table};

fn main() {
    let process = Process::default();
    let mut t = Table::new(
        "Fig 7 synthesized memories",
        &[
            "workload",
            "approach",
            "pow2_bits",
            "area_l2",
            "leakage_mw",
            "read_power_mw",
            "write_power_mw",
            "read_gbps",
            "write_gbps",
        ],
    );
    let mut reductions = Table::new(
        "Fig 7 reductions",
        &[
            "workload",
            "area_pct",
            "leakage_pct",
            "read_power_pct",
            "write_power_pct",
            "read_perf_pct",
        ],
    );

    let mut area_sum = 0.0;
    let mut leak_sum = 0.0;
    let rows = table1_rows();
    for (label, _scheme, ours_bits, baseline_bits) in &rows {
        let is_dwt = label.starts_with("DWT");
        let (ours_name, base_name) = if is_dwt {
            ("Optimum", "Layer-by-Layer")
        } else {
            ("Tiling", "IOOpt UB")
        };
        let ours = SramConfig::words16(round_pow2(*ours_bits)).synthesize(&process);
        let base = SramConfig::words16(round_pow2(*baseline_bits)).synthesize(&process);
        for (name, m) in [(ours_name, &ours), (base_name, &base)] {
            t.row(vec![
                label.clone(),
                name.to_string(),
                m.capacity_bits.to_string(),
                format!("{:.0}", m.area_l2),
                format!("{:.2}", m.leakage_mw),
                format!("{:.2}", m.read_power_mw),
                format!("{:.2}", m.write_power_mw),
                format!("{:.1}", m.read_gbps),
                format!("{:.1}", m.write_gbps),
            ]);
        }
        let area_red = reduction_pct(base.area_l2, ours.area_l2);
        let leak_red = reduction_pct(base.leakage_mw, ours.leakage_mw);
        area_sum += area_red;
        leak_sum += leak_red;
        reductions.row(vec![
            label.clone(),
            format!("{:.1}", area_red),
            format!("{:.1}", leak_red),
            format!(
                "{:.1}",
                reduction_pct(base.read_power_mw, ours.read_power_mw)
            ),
            format!(
                "{:.1}",
                reduction_pct(base.write_power_mw, ours.write_power_mw)
            ),
            format!("{:.1}", reduction_pct(base.read_gbps, ours.read_gbps)),
        ]);
    }
    t.emit();
    reductions.emit();
    println!(
        "\naverage area reduction {:.0}% (paper: 63%), average leakage reduction {:.0}% (paper: 43%)",
        area_sum / rows.len() as f64,
        leak_sum / rows.len() as f64
    );
}
