//! Figure 5: bits transferred between fast and slow memory as a function
//! of fast memory size, for all four workload/weighting panels.
//!
//! Each panel is a declarative [`SweepPlan`] run by the engine (parallel,
//! memoized); this binary only declares the plans and pivots the rows into
//! the paper's column layout.  Structured engine output (with lower-bound
//! gaps) lands next to the per-panel CSVs as `fig5_sweep.json`.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig5 [-- --panel a|b|c|d]
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::{fmt_bits, init_telemetry_from_args, results_dir, Table};

fn dwt_panel(panel: &str, scheme: WeightScheme) -> SweepResult {
    let g = AnyGraph::build(Workload::Dwt { n: 256, d: 8 }, scheme).unwrap();
    let lb = algorithmic_lower_bound(g.cdag());
    let minb = min_feasible_budget(g.cdag()) / 16;
    // Sweep to past the point where layer-by-layer flattens (~1k words).
    let plan = SweepPlan::new(
        format!("Fig 5{panel} {} DWT(256,8)", scheme.label()),
        BudgetSpec::LogWords {
            lo_words: minb,
            hi_words: 1200,
            points: 28,
            word: 16,
        },
    )
    .workload(g.clone())
    .series(Series::scheduler(&api::DwtOpt))
    .series(Series::scheduler(&api::LayerByLayer));
    let res = plan.run_with(Memo::global());

    let name = g.name();
    let opt = res.series_costs(&name, "dwt-opt");
    let lbl = res.series_costs(&name, "layer-by-layer");
    let mut t = Table::new(
        res.title.clone(),
        &[
            "fast_memory_bits",
            "algorithmic_lb_bits",
            "layer_by_layer_bits",
            "optimum_bits",
        ],
    );
    for ((b, opt), (_, lbl)) in opt.into_iter().zip(lbl) {
        t.row(vec![
            b.to_string(),
            lb.to_string(),
            fmt_bits(lbl),
            fmt_bits(opt),
        ]);
    }
    t.emit();
    res
}

fn mvm_panel(panel: &str, scheme: WeightScheme) -> SweepResult {
    let g = AnyGraph::build(Workload::Mvm { m: 96, n: 120 }, scheme).unwrap();
    let plan = SweepPlan::new(
        format!("Fig 5{panel} {} MVM(96,120)", scheme.label()),
        BudgetSpec::LogWords {
            lo_words: 4,
            hi_words: 1200,
            points: 28,
            word: 16,
        },
    )
    .workload(g.clone())
    .series(Series::ioopt_lb())
    .series(Series::ioopt_ub())
    .series(Series::scheduler(&api::MvmTiling));
    let res = plan.run_with(Memo::global());

    let name = g.name();
    let lb = res.series_costs(&name, "ioopt-lb");
    let ub = res.series_costs(&name, "ioopt-ub");
    let tiling = res.series_costs(&name, "mvm-tiling");
    let mut t = Table::new(
        res.title.clone(),
        &[
            "fast_memory_bits",
            "ioopt_lb_bits",
            "ioopt_ub_bits",
            "tiling_bits",
        ],
    );
    for (((b, lb), (_, ub)), (_, tiling)) in lb.into_iter().zip(ub).zip(tiling) {
        t.row(vec![
            b.to_string(),
            fmt_bits(lb),
            fmt_bits(ub),
            fmt_bits(tiling),
        ]);
    }
    t.emit();
    res
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    init_telemetry_from_args(&args);
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    let started = std::time::Instant::now();
    let mut results: Vec<SweepResult> = Vec::new();
    if matches!(panel, "a" | "all") {
        results.push(dwt_panel("a", WeightScheme::Equal(16)));
    }
    if matches!(panel, "b" | "all") {
        results.push(dwt_panel("b", WeightScheme::DoubleAccumulator(16)));
    }
    if matches!(panel, "c" | "all") {
        results.push(mvm_panel("c", WeightScheme::Equal(16)));
    }
    if matches!(panel, "d" | "all") {
        results.push(mvm_panel("d", WeightScheme::DoubleAccumulator(16)));
    }

    let json = format!(
        "[{}]",
        results
            .iter()
            .map(SweepResult::to_json)
            .collect::<Vec<_>>()
            .join(",")
    );
    let path = results_dir().join("fig5_sweep.json");
    std::fs::write(&path, json).expect("write sweep json");
    println!("[json] {}", path.display());

    let memo = Memo::global();
    let points: usize = results.iter().map(|r| r.rows.len()).sum();
    let point_ns: u64 = results.iter().map(SweepResult::total_wall_ns).sum();
    println!(
        "engine: {points} points in {:.2}s wall ({:.2}s point time; memo {} hits / {} misses)",
        started.elapsed().as_secs_f64(),
        point_ns as f64 / 1e9,
        memo.hits(),
        memo.misses(),
    );

    // Engine-cache effectiveness, as a separate artifact so the sweep JSON
    // above stays byte-stable across engine-internals changes.
    let (hits, misses) = (memo.hits(), memo.misses());
    let memo_json = format!(
        r#"{{
  "description": "Engine memo-table effectiveness for the Figure 5 sweeps: every (graph, scheduler, budget) evaluation goes through the process-wide Memo; hits are evaluations answered from cache. Counters cover this process run (panel selection changes them).",
  "command": "cargo run --release -p pebblyn-bench --bin fig5",
  "panel": "{panel}",
  "sweep_points": {points},
  "point_time_ns": {point_ns},
  "memo_hits": {hits},
  "memo_misses": {misses},
  "memo_hit_rate": {rate:.4}
}}
"#,
        rate = hits as f64 / (hits + misses).max(1) as f64,
    );
    let memo_path = results_dir().join("sweep_memo.json");
    std::fs::write(&memo_path, memo_json).expect("write sweep memo json");
    println!("[json] {}", memo_path.display());

    // No-op unless --telemetry installed sinks: the memo and sweep numbers
    // printed above also land in the JSONL record for machine consumption.
    pebblyn::telemetry::flush_run(&format!("fig5/{panel}"));
}
