//! Figure 5: bits transferred between fast and slow memory as a function
//! of fast memory size, for all four workload/weighting panels.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig5 [-- --panel a|b|c|d]
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::{log_budgets, parallel_map, Table};

fn dwt_panel(panel: &str, scheme: WeightScheme) {
    let dwt = DwtGraph::new(256, 8, scheme).unwrap();
    let g = dwt.cdag();
    let lb = algorithmic_lower_bound(g);
    let minb = pebblyn::core::min_feasible_budget(g) / 16;
    // Sweep to past the point where layer-by-layer flattens (~1k words).
    let budgets = log_budgets(minb, 1200, 28, 16);

    let rows = parallel_map(budgets, |&b| {
        let opt = dwt_opt::min_cost(&dwt, b);
        let lbl = layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default());
        (b, opt, lbl)
    });

    let mut t = Table::new(
        format!("Fig 5{panel} {} DWT(256,8)", scheme.label()),
        &[
            "fast_memory_bits",
            "algorithmic_lb_bits",
            "layer_by_layer_bits",
            "optimum_bits",
        ],
    );
    for (b, opt, lbl) in rows {
        t.row(vec![
            b.to_string(),
            lb.to_string(),
            lbl.map_or_else(|| "inf".into(), |c| c.to_string()),
            opt.map_or_else(|| "inf".into(), |c| c.to_string()),
        ]);
    }
    t.emit();
}

fn mvm_panel(panel: &str, scheme: WeightScheme) {
    let mvm = MvmGraph::new(96, 120, scheme).unwrap();
    let model = IoOptMvmModel::for_graph(&mvm);
    let budgets = log_budgets(4, 1200, 28, 16);

    let rows = parallel_map(budgets, |&b| {
        (
            b,
            model.lower_bound(b),
            model.upper_bound(b),
            mvm_tiling::min_cost(&mvm, b),
        )
    });

    let mut t = Table::new(
        format!("Fig 5{panel} {} MVM(96,120)", scheme.label()),
        &[
            "fast_memory_bits",
            "ioopt_lb_bits",
            "ioopt_ub_bits",
            "tiling_bits",
        ],
    );
    for (b, lb, ub, tiling) in rows {
        t.row(vec![
            b.to_string(),
            lb.to_string(),
            ub.map_or_else(|| "inf".into(), |c| c.to_string()),
            tiling.map_or_else(|| "inf".into(), |c| c.to_string()),
        ]);
    }
    t.emit();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    if matches!(panel, "a" | "all") {
        dwt_panel("a", WeightScheme::Equal(16));
    }
    if matches!(panel, "b" | "all") {
        dwt_panel("b", WeightScheme::DoubleAccumulator(16));
    }
    if matches!(panel, "c" | "all") {
        mvm_panel("c", WeightScheme::Equal(16));
    }
    if matches!(panel, "d" | "all") {
        mvm_panel("d", WeightScheme::DoubleAccumulator(16));
    }
}
