//! CI validator for telemetry JSONL artifacts.
//!
//! ```sh
//! telemetry_check <file.jsonl> [--runs N] [--nonzero COUNTER]...
//!                 [--nonzero-gauge GAUGE] [--expect COUNTER=VALUE]...
//! ```
//!
//! Parses every line against the `pebblyn-telemetry/v1` schema and applies
//! the requested assertions over the *sum* of each counter across runs
//! (gauges are high-water marks, so `--nonzero-gauge` checks the *max*
//! across runs instead).
//! Exit 0 when everything holds, 1 with a diagnostic otherwise, 2 on bad
//! invocation.

use pebblyn::telemetry::schema;
use std::process::ExitCode;

struct Checks {
    path: String,
    runs: Option<usize>,
    nonzero: Vec<String>,
    nonzero_gauge: Vec<String>,
    expect: Vec<(String, u64)>,
}

fn parse_args(argv: &[String]) -> Result<Checks, String> {
    let mut checks = Checks {
        path: String::new(),
        runs: None,
        nonzero: Vec::new(),
        nonzero_gauge: Vec::new(),
        expect: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--runs" => {
                checks.runs = Some(
                    value("--runs")?
                        .parse()
                        .map_err(|e| format!("bad --runs: {e}"))?,
                )
            }
            "--nonzero" => checks.nonzero.push(value("--nonzero")?),
            "--nonzero-gauge" => checks.nonzero_gauge.push(value("--nonzero-gauge")?),
            "--expect" => {
                let v = value("--expect")?;
                let (name, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --expect {v:?} (want COUNTER=VALUE)"))?;
                let val = val
                    .parse()
                    .map_err(|e| format!("bad --expect value {val:?}: {e}"))?;
                checks.expect.push((name.to_string(), val));
            }
            other if checks.path.is_empty() && !other.starts_with("--") => {
                checks.path = other.to_string();
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if checks.path.is_empty() {
        return Err("usage: telemetry_check <file.jsonl> [--runs N] \
                    [--nonzero COUNTER]... [--nonzero-gauge GAUGE]... \
                    [--expect COUNTER=VALUE]..."
            .into());
    }
    Ok(checks)
}

fn check(checks: &Checks) -> Result<(), String> {
    let text = std::fs::read_to_string(&checks.path)
        .map_err(|e| format!("cannot read {}: {e}", checks.path))?;
    let records = schema::validate_jsonl(&text)?;
    if records.is_empty() {
        return Err("no runs recorded".into());
    }
    if let Some(n) = checks.runs {
        if records.len() != n {
            return Err(format!("expected {n} run(s), found {}", records.len()));
        }
    }
    let total = |name: &str| -> u64 {
        records
            .iter()
            .map(|r| r.counters.get(name).copied().unwrap_or(0))
            .sum()
    };
    for name in &checks.nonzero {
        if total(name) == 0 {
            return Err(format!("counter {name} is zero across all runs"));
        }
    }
    for name in &checks.nonzero_gauge {
        let peak = records
            .iter()
            .map(|r| r.gauges.get(name).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        if peak == 0 {
            return Err(format!("gauge {name} is zero across all runs"));
        }
    }
    for (name, want) in &checks.expect {
        let got = total(name);
        if got != *want {
            return Err(format!("counter {name}: expected {want}, got {got}"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let checks = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    match check(&checks) {
        Ok(()) => {
            println!("OK: {} is schema-valid", checks.path);
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("FAIL: {}: {msg}", checks.path);
            ExitCode::FAILURE
        }
    }
}
