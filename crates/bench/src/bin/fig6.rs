//! Figure 6: minimum fast memory size (Definition 2.6) as a function of
//! the workload size parameter `n`.
//!
//! Panels a/b sweep `DWT(n, d*)` for even `n ≤ 256` with `d*` the maximum
//! admissible level; panels c/d sweep `MVM(96, n)` for `n ≤ 120`.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig6 [-- --panel a|b|c|d]
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::{parallel_map, Table};

fn dwt_panel(panel: &str, scheme: WeightScheme) {
    let ns: Vec<usize> = (2..=256).step_by(2).collect();
    let rows = parallel_map(ns, |&n| {
        let d = DwtGraph::max_level(n).expect("even n");
        let dwt = DwtGraph::new(n, d, scheme).unwrap();
        let g = dwt.cdag();
        let lb = algorithmic_lower_bound(g);
        let opt = min_memory(
            |b| dwt_opt::min_cost(&dwt, b),
            lb,
            MinMemoryOptions::for_graph(g).monotone(true),
        )
        .expect("optimum reaches LB");
        let lbl = min_memory(
            |b| layer_by_layer::cost(&dwt, b, LayerByLayerOptions::default()),
            lb,
            MinMemoryOptions::for_graph(g),
        )
        .expect("baseline reaches LB");
        (n, d, lbl, opt)
    });

    let mut t = Table::new(
        format!("Fig 6{panel} {} DWT(n,dstar)", scheme.label()),
        &["n", "d_star", "layer_by_layer_bits", "optimum_bits"],
    );
    for (n, d, lbl, opt) in rows {
        t.row(vec![
            n.to_string(),
            d.to_string(),
            lbl.to_string(),
            opt.to_string(),
        ]);
    }
    t.emit();
}

fn mvm_panel(panel: &str, scheme: WeightScheme) {
    let mut t = Table::new(
        format!("Fig 6{panel} {} MVM(96,n)", scheme.label()),
        &["n", "ioopt_ub_bits", "tiling_bits"],
    );
    for n in 1..=120usize {
        let mvm = MvmGraph::new(96, n, scheme).unwrap();
        let ioopt = IoOptMvmModel::for_graph(&mvm).min_memory();
        let tiling = mvm_tiling::min_memory(&mvm);
        t.row(vec![n.to_string(), ioopt.to_string(), tiling.to_string()]);
    }
    t.emit();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    if matches!(panel, "a" | "all") {
        dwt_panel("a", WeightScheme::Equal(16));
    }
    if matches!(panel, "b" | "all") {
        dwt_panel("b", WeightScheme::DoubleAccumulator(16));
    }
    if matches!(panel, "c" | "all") {
        mvm_panel("c", WeightScheme::Equal(16));
    }
    if matches!(panel, "d" | "all") {
        mvm_panel("d", WeightScheme::DoubleAccumulator(16));
    }
}
