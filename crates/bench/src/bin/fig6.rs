//! Figure 6: minimum fast memory size (Definition 2.6) as a function of
//! the workload size parameter `n`.
//!
//! Panels a/b sweep `DWT(n, d*)` for even `n ≤ 256` with `d*` the maximum
//! admissible level; panels c/d sweep `MVM(96, n)` for `n ≤ 120`.  Each
//! panel is a declarative [`MinMemoryPlan`] run by the engine: the DWT
//! minima come from the shared memoized bisection, the MVM minima from the
//! closed-form `Direct` entries.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin fig6 [-- --panel a|b|c|d]
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::Table;

fn dwt_panel(panel: &str, scheme: WeightScheme) {
    let ns: Vec<usize> = (2..=256).step_by(2).collect();
    let mut plan = MinMemoryPlan::new(format!("Fig 6{panel} {} DWT(n,dstar)", scheme.label()))
        .to_lower_bound(Series::scheduler(&api::DwtOpt))
        .to_lower_bound(Series::scheduler(&api::LayerByLayer));
    for &n in &ns {
        let d = DwtGraph::max_level(n).expect("even n");
        plan = plan.workload(AnyGraph::build(Workload::Dwt { n, d }, scheme).unwrap());
    }
    let res = plan.run_with(Memo::global());

    let mut t = Table::new(
        res.title.clone(),
        &["n", "d_star", "layer_by_layer_bits", "optimum_bits"],
    );
    for (i, &n) in ns.iter().enumerate() {
        let d = DwtGraph::max_level(n).expect("even n");
        let opt = res.rows[2 * i].min_bits.expect("optimum reaches LB");
        let lbl = res.rows[2 * i + 1].min_bits.expect("baseline reaches LB");
        t.row(vec![
            n.to_string(),
            d.to_string(),
            lbl.to_string(),
            opt.to_string(),
        ]);
    }
    t.emit();
}

fn mvm_panel(panel: &str, scheme: WeightScheme) {
    let mut plan = MinMemoryPlan::new(format!("Fig 6{panel} {} MVM(96,n)", scheme.label()))
        .direct("ioopt-ub", |g| match g {
            AnyGraph::Mvm(m) => Some(IoOptMvmModel::for_graph(m).min_memory()),
            _ => None,
        })
        .direct("mvm-tiling", |g| match g {
            AnyGraph::Mvm(m) => Some(mvm_tiling::min_memory(m)),
            _ => None,
        });
    for n in 1..=120usize {
        plan = plan.workload(AnyGraph::build(Workload::Mvm { m: 96, n }, scheme).unwrap());
    }
    let res = plan.run_with(Memo::global());

    let mut t = Table::new(res.title.clone(), &["n", "ioopt_ub_bits", "tiling_bits"]);
    for (i, n) in (1..=120usize).enumerate() {
        let ioopt = res.rows[2 * i].min_bits.expect("IOOpt closed form");
        let tiling = res.rows[2 * i + 1].min_bits.expect("tiling family minimum");
        t.row(vec![n.to_string(), ioopt.to_string(), tiling.to_string()]);
    }
    t.emit();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");

    if matches!(panel, "a" | "all") {
        dwt_panel("a", WeightScheme::Equal(16));
    }
    if matches!(panel, "b" | "all") {
        dwt_panel("b", WeightScheme::DoubleAccumulator(16));
    }
    if matches!(panel, "c" | "all") {
        mvm_panel("c", WeightScheme::Equal(16));
    }
    if matches!(panel, "d" | "all") {
        mvm_panel("d", WeightScheme::DoubleAccumulator(16));
    }
}
