//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. MVM tile width — spilling accumulators between column chunks
//!    (width < n) only ever adds I/O, which is why §4.3's best tiles are
//!    full-width,
//! 2. vector residency vs tile height — the §4.3 trade-off that flips
//!    between the Equal and Double-Accumulator configurations,
//! 3. boustrophedon traversal — the §5.1 baseline's alternating layer
//!    direction vs fixed ascending order,
//! 4. spill-everything vs optimal — how much of the naive topological
//!    schedule's traffic the DP eliminates.
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin ablation
//! ```

use pebblyn::prelude::*;
use pebblyn_bench::Table;

fn tile_width_ablation() {
    let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    let g = mvm.cdag();
    let mut t = Table::new(
        "Ablation tile width",
        &["tile_width", "cost_bits", "peak_bits", "overhead_pct"],
    );
    let full = TilingConfig::new(32, 0, 120);
    let full_cost = mvm_tiling::config_cost(&mvm, &full) as f64;
    for width in [1usize, 2, 5, 10, 30, 60, 120] {
        let cfg = TilingConfig {
            tile_width: width,
            ..full
        };
        let cost = mvm_tiling::config_cost(&mvm, &cfg);
        let sched = mvm_tiling::schedule_with_config(&mvm, &cfg);
        let peak = mvm_tiling::config_peak(&mvm, &cfg);
        let stats = validate_schedule(g, peak, &sched).expect("valid");
        assert_eq!(stats.cost, cost);
        t.row(vec![
            width.to_string(),
            cost.to_string(),
            peak.to_string(),
            format!("{:+.1}", 100.0 * (cost as f64 - full_cost) / full_cost),
        ]);
    }
    t.emit();
}

fn residency_ablation() {
    let mut t = Table::new(
        "Ablation residency vs height",
        &["scheme", "config", "budget_bits", "cost_bits"],
    );
    for scheme in WeightScheme::paper_configs() {
        let mvm = MvmGraph::new(96, 120, scheme).unwrap();
        // Compare the two pure strategies at each one's minimum budget.
        let tall = TilingConfig::new(96, 0, 120);
        let resident = TilingConfig::new(1, 120, 120);
        for (name, cfg) in [("tall tile (h=96)", tall), ("resident vector", resident)] {
            let budget = mvm_tiling::config_peak(&mvm, &cfg);
            let cost = mvm_tiling::config_cost(&mvm, &cfg);
            t.row(vec![
                scheme.label().to_string(),
                name.to_string(),
                budget.to_string(),
                cost.to_string(),
            ]);
        }
    }
    t.emit();
    println!("(both reach the LB; the winner is whichever needs the smaller budget — Equal: tall, DA: resident)");
}

fn boustrophedon_ablation() {
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let mut t = Table::new(
        "Ablation boustrophedon",
        &[
            "budget_bits",
            "alternating_bits",
            "fixed_bits",
            "saving_pct",
        ],
    );
    let minb = pebblyn::core::min_feasible_budget(g);
    for words in [4u64, 8, 16, 32, 64, 128, 256, 512] {
        let b = (words * 16).max(minb);
        let alt = layer_by_layer::cost(
            &dwt,
            b,
            LayerByLayerOptions {
                boustrophedon: true,
            },
        );
        let fix = layer_by_layer::cost(
            &dwt,
            b,
            LayerByLayerOptions {
                boustrophedon: false,
            },
        );
        if let (Some(a), Some(f)) = (alt, fix) {
            t.row(vec![
                b.to_string(),
                a.to_string(),
                f.to_string(),
                format!("{:.1}", 100.0 * (f as f64 - a as f64) / f as f64),
            ]);
        }
    }
    t.emit();
}

fn naive_vs_optimal() {
    let mut t = Table::new(
        "Ablation naive vs optimal",
        &["workload", "naive_bits", "optimal_bits", "ratio"],
    );
    for scheme in WeightScheme::paper_configs() {
        let dwt = DwtGraph::new(256, 8, scheme).unwrap();
        let g = dwt.cdag();
        let b = g.total_weight();
        let nv = naive::cost(g);
        let opt = dwt_opt::min_cost(&dwt, b).unwrap();
        t.row(vec![
            format!("DWT(256,8) {}", scheme.label()),
            nv.to_string(),
            opt.to_string(),
            format!("{:.2}x", nv as f64 / opt as f64),
        ]);
    }
    t.emit();
}

fn energy_asymmetry_ablation() {
    // Embedded-Flash regime: stores cost 10x loads. On trees the optimal
    // *structure* is price-invariant (see the energy certification tests);
    // the ablation quantifies how the spill term scales.
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let g = dwt.cdag();
    let costs = IoCosts { load: 1, store: 10 };
    let mut t = Table::new(
        "Ablation energy asymmetry",
        &[
            "budget_bits",
            "bits_moved",
            "energy_cost_1_10",
            "spill_bits",
        ],
    );
    for words in [4u64, 6, 8, 10, 16, 64] {
        let b = words * 16;
        if let (Some(unit), Some(scaled)) = (
            dwt_opt::min_cost(&dwt, b),
            dwt_opt::min_cost_with_costs(&dwt, b, costs),
        ) {
            let lb = algorithmic_lower_bound(g);
            t.row(vec![
                b.to_string(),
                unit.to_string(),
                scaled.to_string(),
                ((unit - lb) / 2).to_string(),
            ]);
        }
    }
    t.emit();
}

fn eviction_policy_ablation() {
    // Belady (furthest-next-use) vs FIFO eviction on an FFT butterfly —
    // the irregular-CDAG extension of Section 4.
    let g = pebblyn::graphs::testgraphs::fft_butterfly(5, WeightScheme::Equal(16)).unwrap();
    let layered = pebblyn::graphs::layered::LayeredCdag::from_cdag(g.clone());
    let lb = algorithmic_lower_bound(&g);
    let mut t = Table::new(
        "Ablation eviction policy fft32",
        &["budget_bits", "belady_bits", "fifo_bits", "lower_bound"],
    );
    let minb = pebblyn::core::min_feasible_budget(&g);
    let mut b = minb;
    while b <= g.total_weight() {
        let belady = greedy_belady::cost(&g, b);
        let fifo = layer_by_layer::cost(&layered, b, LayerByLayerOptions::default());
        if let (Some(bl), Some(ff)) = (belady, fifo) {
            t.row(vec![
                b.to_string(),
                bl.to_string(),
                ff.to_string(),
                lb.to_string(),
            ]);
        }
        b += 16 * 16;
    }
    t.emit();
}

fn streaming_strategy_ablation() {
    // Window-resident vs partial-interleaved residency for FIR filters and
    // banded MVM across both weight configurations.
    use pebblyn::graphs::banded::BandedMvmGraph;
    use pebblyn::schedulers::banded_stream;
    use pebblyn::schedulers::conv_stream::Strategy;
    let mut t = Table::new(
        "Ablation streaming residency",
        &["workload", "scheme", "window_bits", "interleaved_bits"],
    );
    for scheme in WeightScheme::paper_configs() {
        let conv = ConvGraph::new(64, 8, scheme).unwrap();
        t.row(vec![
            "Conv(64,8)".into(),
            scheme.label().into(),
            conv_stream::strategy_peak(&conv, Strategy::WindowResident).to_string(),
            conv_stream::strategy_peak(&conv, Strategy::PartialInterleaved).to_string(),
        ]);
        let band = BandedMvmGraph::new(64, 8, scheme).unwrap();
        t.row(vec![
            "Banded(64,8)".into(),
            scheme.label().into(),
            banded_stream::strategy_peak(&band, Strategy::WindowResident).to_string(),
            banded_stream::strategy_peak(&band, Strategy::PartialInterleaved).to_string(),
        ]);
    }
    t.emit();
}

fn granularity_ablation() {
    // Fine (paper) vs coarse butterfly granularity: same transform, same
    // lower bound, different minimum memory — quantifying §3.1.1's choice.
    use pebblyn::graphs::dwt_coarse::CoarseDwtGraph;
    let mut t = Table::new(
        "Ablation operation granularity",
        &["n", "fine_optimal_bits", "coarse_best_bits", "ratio"],
    );
    for n in [32usize, 64, 128, 256] {
        let d = DwtGraph::max_level(n).unwrap();
        let scheme = WeightScheme::Equal(16);
        let fine = DwtGraph::new(n, d, scheme).unwrap();
        let coarse = CoarseDwtGraph::new(n, d, scheme).unwrap();
        let lb = algorithmic_lower_bound(fine.cdag());
        let fine_min = min_memory(
            |b| dwt_opt::min_cost(&fine, b),
            lb,
            MinMemoryOptions::for_graph(fine.cdag()).monotone(true),
        )
        .unwrap();
        let coarse_min = min_memory(
            |b| greedy_belady::cost(coarse.cdag(), b),
            lb,
            MinMemoryOptions::for_graph(coarse.cdag()),
        )
        .unwrap();
        t.row(vec![
            n.to_string(),
            fine_min.to_string(),
            coarse_min.to_string(),
            format!("{:.1}x", coarse_min as f64 / fine_min as f64),
        ]);
    }
    t.emit();
}

fn main() {
    tile_width_ablation();
    residency_ablation();
    boustrophedon_ablation();
    naive_vs_optimal();
    energy_asymmetry_ablation();
    eviction_policy_ablation();
    streaming_strategy_ablation();
    granularity_ablation();
}
