//! End-to-end telemetry counter checks.
//!
//! Lives in its own integration-test binary on purpose: telemetry state is
//! process-global, so these assertions must not share a process with tests
//! that enable/reset telemetry concurrently.  The single test function
//! below is the only code in this binary that touches the registry.

use pebblyn::prelude::*;
use pebblyn::telemetry;
use pebblyn_bench::reconvergent_mesh16;

/// The pinned witness: a full binary tree of depth 2 — 7 nodes, unit-ish
/// weights — small enough that the exact solve is instant in debug builds.
fn kary7() -> Cdag {
    pebblyn::graphs::tree::full_kary(2, 2, WeightScheme::Equal(2)).expect("valid tree")
}

#[test]
fn exact_solve_and_memo_feed_the_in_memory_sink() {
    telemetry::reset();
    telemetry::clear_sinks();
    telemetry::enable();
    let sink = telemetry::InMemorySink::default();
    let events = sink.handle();
    telemetry::install_sink(Box::new(sink));

    // One exact solve on the 7-node kary witness; its stats must be
    // mirrored 1:1 into the global counters.
    let g = kary7();
    let budget = min_feasible_budget(&g) + 2;
    let sol = ExactSolver::default().solve(&g, budget).expect("in cap");
    assert!(sol.cost.is_some(), "witness must be feasible at min+2");
    assert!(sol.stats.expanded > 0);
    assert_eq!(
        telemetry::counter(telemetry::Counter::StatesExpanded),
        sol.stats.expanded as u64,
        "telemetry must count exactly the solver's expansions"
    );
    assert_eq!(
        telemetry::counter(telemetry::Counter::StatesGenerated),
        sol.stats.generated as u64
    );
    assert!(telemetry::gauge(telemetry::Gauge::OpenListPeak) > 0);

    // A second solve accumulates (counters are process totals per run).
    let mesh = reconvergent_mesh16();
    let mesh_budget = min_feasible_budget(&mesh) + 4;
    let sol2 = ExactSolver::default()
        .solve(&mesh, mesh_budget)
        .expect("mesh within cap");
    assert_eq!(
        telemetry::counter(telemetry::Counter::StatesExpanded),
        (sol.stats.expanded + sol2.stats.expanded) as u64
    );

    // Memo traffic: two lookups of the same point = one miss, one hit.
    let memo = Memo::new();
    memo.cost_or("g", "s", 1, || Some(7));
    memo.cost_or("g", "s", 1, || unreachable!("second lookup must hit"));
    assert!(telemetry::counter(telemetry::Counter::MemoHits) >= 1);
    assert!(telemetry::counter(telemetry::Counter::MemoMisses) >= 1);

    // Flush through the sink and check the recorded snapshot agrees.
    telemetry::flush_run("telemetry-test");
    let recorded = events.lock().expect("sink events");
    assert_eq!(recorded.len(), 1);
    let telemetry::Event::Run { label, snapshot } = &recorded[0];
    assert_eq!(label, "telemetry-test");
    assert_eq!(
        snapshot.counter("states_expanded"),
        Some((sol.stats.expanded + sol2.stats.expanded) as u64)
    );
    assert!(snapshot.counter("memo_hits").unwrap() >= 1);
    assert!(snapshot.gauge("open_list_peak").unwrap() > 0);
    drop(recorded);

    telemetry::disable();
    telemetry::clear_sinks();
    telemetry::reset();
}
