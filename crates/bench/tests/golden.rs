//! Golden-snapshot guards for the headline artifacts.
//!
//! The CSVs committed under `results/` are the paper's tables — quietly
//! drifting generators (a changed DP, a reordered row, a reformatted
//! float) must fail loudly, not silently rewrite history.  Each test
//! reruns the generating binary with `PEBBLYN_RESULTS` pointed at a temp
//! directory and byte-compares the fresh CSV against the committed one.
//!
//! If a change is *intentional*, regenerate and commit:
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin table1
//! cargo run --release -p pebblyn-bench --bin fig7
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// Run `bin` with results redirected into a fresh temp dir; return the dir.
fn regen_into_temp(bin: &str, tag: &str) -> PathBuf {
    regen_into_temp_with(bin, tag, &[])
}

/// As [`regen_into_temp`], passing `args` through to the generator.
fn regen_into_temp_with(bin: &str, tag: &str, args: &[&str]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pebblyn-golden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp results dir");
    let out = Command::new(bin)
        .args(args)
        .env("PEBBLYN_RESULTS", &dir)
        .output()
        .expect("generator binary runs");
    assert!(
        out.status.success(),
        "{bin} exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn committed(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
}

fn assert_matches_golden(fresh_dir: &Path, name: &str) {
    let fresh = std::fs::read(fresh_dir.join(name))
        .unwrap_or_else(|e| panic!("generator did not produce {name}: {e}"));
    let golden = std::fs::read(committed(name))
        .unwrap_or_else(|e| panic!("missing committed golden results/{name}: {e}"));
    assert!(
        fresh == golden,
        "results/{name} no longer matches its generator (byte diff).\n\
         If the change is intentional, regenerate and commit it.\n\
         --- committed ---\n{}\n--- regenerated ---\n{}",
        String::from_utf8_lossy(&golden),
        String::from_utf8_lossy(&fresh)
    );
}

#[test]
fn table1_minimum_fast_memory_is_reproducible() {
    let dir = regen_into_temp(env!("CARGO_BIN_EXE_table1"), "table1");
    assert_matches_golden(&dir, "table_1_minimum_fast_memory.csv");
    std::fs::remove_dir_all(&dir).ok();
}

/// Every fig5 artifact that is byte-stable by design (`sweep_memo.json` is
/// excluded: it carries wall-clock point timings).
const FIG5_STABLE: &[&str] = &[
    "fig5_sweep.json",
    "fig_5a_equal_dwt_256_8_.csv",
    "fig_5b_da_dwt_256_8_.csv",
    "fig_5c_equal_mvm_96_120_.csv",
    "fig_5d_da_mvm_96_120_.csv",
];

#[test]
fn fig5_sweep_json_and_csvs_are_reproducible() {
    let dir = regen_into_temp(env!("CARGO_BIN_EXE_fig5"), "fig5");
    for name in FIG5_STABLE {
        assert_matches_golden(&dir, name);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Telemetry must be observationally free: running the same generator with
/// `--telemetry` (counters on, JSONL + stderr summary sinks installed)
/// leaves every golden artifact byte-identical.  Only the side-channel
/// JSONL file differs from a telemetry-off run.
#[test]
fn fig5_outputs_are_byte_identical_with_telemetry_on() {
    let jsonl = std::env::temp_dir().join(format!("pebblyn-fig5-telemetry-{}", std::process::id()));
    let jsonl_str = jsonl.to_str().expect("utf-8 temp path");
    let dir = regen_into_temp_with(
        env!("CARGO_BIN_EXE_fig5"),
        "fig5-telemetry",
        &["--telemetry", jsonl_str],
    );
    for name in FIG5_STABLE {
        assert_matches_golden(&dir, name);
    }
    let side_channel = std::fs::read_to_string(&jsonl).expect("telemetry JSONL written");
    assert!(
        side_channel.contains("\"schema\":\"pebblyn-telemetry/v1\""),
        "telemetry record missing schema marker: {side_channel}"
    );
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// `bench_streaming.json` carries wall-clock medians, so it cannot be
/// byte-golden like the CSVs; instead the committed artifact must satisfy
/// the same structural validator the generator self-checks with: schema
/// tag, well-typed points, `cost_bits >= lower_bound_bits` with an honest
/// `bound_gap`, and each scheduler's worst-family ns/edge envelope within
/// the near-linearity drift bar.
#[test]
fn bench_streaming_artifact_satisfies_its_validator() {
    let text = std::fs::read_to_string(committed("bench_streaming.json"))
        .expect("missing committed results/bench_streaming.json");
    pebblyn_bench::validate_bench_streaming(&text)
        .expect("committed bench_streaming.json fails its structural validator");
}

#[test]
fn fig7_reduction_csvs_are_reproducible() {
    let dir = regen_into_temp(env!("CARGO_BIN_EXE_fig7"), "fig7");
    assert_matches_golden(&dir, "fig_7_reductions.csv");
    assert_matches_golden(&dir, "fig_7_synthesized_memories.csv");
    std::fs::remove_dir_all(&dir).ok();
}
