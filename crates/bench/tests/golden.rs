//! Golden-snapshot guards for the headline artifacts.
//!
//! The CSVs committed under `results/` are the paper's tables — quietly
//! drifting generators (a changed DP, a reordered row, a reformatted
//! float) must fail loudly, not silently rewrite history.  Each test
//! reruns the generating binary with `PEBBLYN_RESULTS` pointed at a temp
//! directory and byte-compares the fresh CSV against the committed one.
//!
//! If a change is *intentional*, regenerate and commit:
//!
//! ```sh
//! cargo run --release -p pebblyn-bench --bin table1
//! cargo run --release -p pebblyn-bench --bin fig7
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// Run `bin` with results redirected into a fresh temp dir; return the dir.
fn regen_into_temp(bin: &str, tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pebblyn-golden-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp results dir");
    let out = Command::new(bin)
        .env("PEBBLYN_RESULTS", &dir)
        .output()
        .expect("generator binary runs");
    assert!(
        out.status.success(),
        "{bin} exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    dir
}

fn committed(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
}

fn assert_matches_golden(fresh_dir: &Path, name: &str) {
    let fresh = std::fs::read(fresh_dir.join(name))
        .unwrap_or_else(|e| panic!("generator did not produce {name}: {e}"));
    let golden = std::fs::read(committed(name))
        .unwrap_or_else(|e| panic!("missing committed golden results/{name}: {e}"));
    assert!(
        fresh == golden,
        "results/{name} no longer matches its generator (byte diff).\n\
         If the change is intentional, regenerate and commit it.\n\
         --- committed ---\n{}\n--- regenerated ---\n{}",
        String::from_utf8_lossy(&golden),
        String::from_utf8_lossy(&fresh)
    );
}

#[test]
fn table1_minimum_fast_memory_is_reproducible() {
    let dir = regen_into_temp(env!("CARGO_BIN_EXE_table1"), "table1");
    assert_matches_golden(&dir, "table_1_minimum_fast_memory.csv");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fig7_reduction_csvs_are_reproducible() {
    let dir = regen_into_temp(env!("CARGO_BIN_EXE_fig7"), "fig7");
    assert_matches_golden(&dir, "fig_7_reductions.csv");
    assert_matches_golden(&dir, "fig_7_synthesized_memories.csv");
    std::fs::remove_dir_all(&dir).ok();
}
