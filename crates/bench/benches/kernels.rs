//! Raw kernel throughput: the arithmetic the schedules orchestrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebblyn::kernels::mvm as mvm_kernel;
use pebblyn::kernels::signal::SignalConfig;
use pebblyn::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for n in [256usize, 4096] {
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let d = DwtGraph::max_level(n).unwrap();
        group.bench_with_input(BenchmarkId::new("haar_dwt", n), &signal, |b, s| {
            b.iter(|| black_box(haar::haar_dwt(s, d)));
        });
    }

    let a = mvm_kernel::Matrix::new(
        96,
        120,
        (0..96 * 120).map(|i| (i % 23) as f64 / 23.0).collect(),
    );
    let x: Vec<f64> = (0..120).map(|i| (i as f64 * 0.03).sin()).collect();
    group.bench_function("mvm_ref_96x120", |b| {
        b.iter(|| black_box(mvm_kernel::mvm_ref(&a, &x)));
    });
    group.bench_function("fixed_dot_120", |b| {
        let row: Vec<f64> = (0..120).map(|i| (i % 7) as f64 / 7.0 - 0.5).collect();
        b.iter(|| black_box(fixed::fixed_dot(&row, &x)));
    });

    let cfg = SignalConfig {
        samples: 4096,
        ..Default::default()
    };
    group.bench_function("signal_gen_4096", |b| {
        b.iter(|| black_box(signal::generate_channel(&cfg)));
    });

    group.bench_function("graph_build_dwt256", |b| {
        b.iter(|| black_box(DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap()));
    });
    group.bench_function("graph_build_mvm96x120", |b| {
        b.iter(|| black_box(MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
