//! Scheduler performance: the empirical side of Theorem 3.5's
//! `Θ(poly(B·|V|))` and Theorem 3.8's bounded-in-degree claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebblyn::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_dwt_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("dwt_opt");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [64usize, 128, 256] {
        let d = DwtGraph::max_level(n).unwrap();
        let dwt = DwtGraph::new(n, d, WeightScheme::Equal(16)).unwrap();
        let budget = 12 * 16;
        group.bench_with_input(BenchmarkId::new("min_cost", n), &dwt, |b, dwt| {
            b.iter(|| black_box(dwt_opt::min_cost(dwt, black_box(budget))));
        });
        group.bench_with_input(BenchmarkId::new("schedule", n), &dwt, |b, dwt| {
            b.iter(|| black_box(dwt_opt::schedule(dwt, black_box(budget))));
        });
    }
    // Budget scaling at fixed size (the B in Θ(poly(B·|V|))).
    let dwt = DwtGraph::new(256, 8, WeightScheme::DoubleAccumulator(16)).unwrap();
    for budget in [288u64, 1024, 8192] {
        group.bench_with_input(
            BenchmarkId::new("min_cost_budget", budget),
            &budget,
            |b, &budget| {
                b.iter(|| black_box(dwt_opt::min_cost(&dwt, budget)));
            },
        );
    }
    group.finish();
}

fn bench_kary(c: &mut Criterion) {
    let mut group = c.benchmark_group("kary");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for k in [2usize, 3, 4] {
        let depth = match k {
            2 => 7,
            3 => 4,
            _ => 3,
        };
        let tree = pebblyn::graphs::tree::full_kary(k, depth, WeightScheme::Equal(4)).unwrap();
        let budget = (k as u64 + 3) * 8;
        group.bench_with_input(
            BenchmarkId::new("min_cost", format!("k{k}_n{}", tree.len())),
            &tree,
            |b, tree| {
                b.iter(|| black_box(kary::min_cost(tree, black_box(budget))));
            },
        );
    }
    group.finish();
}

fn bench_mvm_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvm_tiling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    group.bench_function("best_config_search", |b| {
        b.iter(|| black_box(mvm_tiling::best_config(&mvm, black_box(99 * 16))));
    });
    group.bench_function("schedule_emission", |b| {
        let cfg = mvm_tiling::best_config(&mvm, 99 * 16).unwrap();
        b.iter(|| black_box(mvm_tiling::schedule_with_config(&mvm, &cfg)));
    });
    group.finish();
}

fn bench_layer_by_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_by_layer");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    for words in [16u64, 128] {
        group.bench_with_input(BenchmarkId::new("dwt256", words), &words, |b, &w| {
            b.iter(|| {
                black_box(layer_by_layer::schedule(
                    &dwt,
                    w * 16,
                    LayerByLayerOptions::default(),
                ))
            });
        });
    }
    group.finish();
}

fn bench_min_memory_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_memory");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let lb = algorithmic_lower_bound(dwt.cdag());
    group.bench_function("dwt256_bisect", |b| {
        b.iter(|| {
            black_box(min_memory(
                |bud| dwt_opt::min_cost(&dwt, bud),
                lb,
                MinMemoryOptions::for_graph(dwt.cdag()).monotone(true),
            ))
        });
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // Streaming FIR scheduler at BCI scale.
    let conv = ConvGraph::new(1024, 32, WeightScheme::Equal(16)).unwrap();
    group.bench_function("conv_stream_1024x32", |b| {
        let budget = conv_stream::min_memory(&conv);
        b.iter(|| black_box(conv_stream::schedule(&conv, black_box(budget))));
    });

    // Banded MVM streaming.
    let band =
        pebblyn::graphs::banded::BandedMvmGraph::new(512, 16, WeightScheme::Equal(16)).unwrap();
    group.bench_function("banded_stream_512x16", |b| {
        let budget = pebblyn::schedulers::banded_stream::min_memory(&band);
        b.iter(|| {
            black_box(pebblyn::schedulers::banded_stream::schedule(
                &band,
                black_box(budget),
            ))
        });
    });

    // Belady eviction on an FFT butterfly.
    let fft = pebblyn::graphs::testgraphs::fft_butterfly(6, WeightScheme::Equal(16)).unwrap();
    group.bench_function("belady_fft64", |b| {
        let budget = pebblyn::core::min_feasible_budget(&fft) + 32 * 16;
        b.iter(|| black_box(greedy_belady::schedule(&fft, black_box(budget))));
    });

    // Parallel component packing over 96 channels.
    let tree = pebblyn::graphs::tree::full_kary(2, 4, WeightScheme::Equal(16)).unwrap();
    let parts: Vec<&pebblyn::core::Cdag> = std::iter::repeat_n(&tree, 96).collect();
    let (array, _) = pebblyn::core::Cdag::disjoint_union(&parts);
    group.bench_function("parallel_96_channels", |b| {
        b.iter(|| {
            black_box(parallel::schedule_components(&array, 8, |sub| {
                kary::schedule(sub, 8 * 16)
            }))
        });
    });

    // Peephole over a large salted schedule.
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let sched = dwt_opt::schedule(&dwt, 160).unwrap();
    group.bench_function("peephole_dwt256", |b| {
        b.iter(|| black_box(peephole(dwt.cdag(), &sched)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dwt_opt,
    bench_kary,
    bench_mvm_tiling,
    bench_layer_by_layer,
    bench_min_memory_search,
    bench_extensions
);
criterion_main!(benches);
