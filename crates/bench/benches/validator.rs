//! Validator throughput: replaying long schedules move-by-move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebblyn::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_validator(c: &mut Criterion) {
    let mut group = c.benchmark_group("validate_schedule");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // DWT optimal schedule (~8k moves at n = 256).
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let sched = dwt_opt::schedule(&dwt, 160).unwrap();
    group.throughput(criterion::Throughput::Elements(sched.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("dwt256_optimal", sched.len()),
        &sched,
        |b, s| {
            b.iter(|| black_box(validate_schedule(dwt.cdag(), 160, s)));
        },
    );

    // MVM tiling schedule (~80k moves).
    let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    let budget = mvm_tiling::min_memory(&mvm);
    let sched = mvm_tiling::schedule(&mvm, budget).unwrap();
    group.throughput(criterion::Throughput::Elements(sched.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("mvm96x120_tiling", sched.len()),
        &sched,
        |b, s| {
            b.iter(|| black_box(validate_schedule(mvm.cdag(), budget, s)));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_validator);
criterion_main!(benches);
