//! Exhaustive-solver throughput: uniform-cost search over full game states.
//!
//! The exact solver certifies the dataflow DPs, so its speed bounds how
//! large the certified instances can grow.  These workloads mirror the
//! certification suites, sized one notch above them so the search does
//! real spill exploration without blowing the state cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebblyn::exact::ExactSolver;
use pebblyn::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    let solver = ExactSolver::with_max_states(30_000_000);

    // Small DWT at the minimum feasible budget: the certification suite's
    // bread and butter (forces spill exploration).
    let dwt = DwtGraph::new(8, 2, WeightScheme::Equal(4)).unwrap();
    let minb = min_feasible_budget(dwt.cdag());
    group.bench_with_input(
        BenchmarkId::new("dwt8x2_min_cost", minb),
        &minb,
        |b, &bud| {
            b.iter(|| black_box(solver.min_cost(dwt.cdag(), bud).unwrap()));
        },
    );

    // Full binary tree of depth 3 (15 nodes), budget one step above minimum.
    let tree = pebblyn::graphs::tree::full_kary(2, 3, WeightScheme::Equal(2)).unwrap();
    let budget = min_feasible_budget(&tree) + 2;
    group.bench_with_input(
        BenchmarkId::new("kary2x3_min_cost", budget),
        &budget,
        |b, &bud| {
            b.iter(|| black_box(solver.min_cost(&tree, bud).unwrap()));
        },
    );

    // FFT butterfly (irregular reuse) with schedule reconstruction.
    let fft = pebblyn::graphs::testgraphs::fft_butterfly(2, WeightScheme::Equal(2)).unwrap();
    let budget = min_feasible_budget(&fft) + 4;
    group.bench_with_input(
        BenchmarkId::new("fft4_optimal_schedule", budget),
        &budget,
        |b, &bud| {
            b.iter(|| black_box(solver.optimal_schedule(&fft, bud).unwrap()));
        },
    );

    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
