//! Memory-machine execution throughput: schedules with real arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebblyn::kernels::mvm as mvm_kernel;
use pebblyn::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    // One DWT window at the Table 1 budget.
    let dwt = DwtGraph::new(256, 8, WeightScheme::Equal(16)).unwrap();
    let sched = dwt_opt::schedule(&dwt, 160).unwrap();
    let ops = haar::op_table(&dwt);
    let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    let env = haar::inputs_for(&dwt, &signal);
    let machine = Machine::new(dwt.cdag(), &ops, 160);
    group.throughput(criterion::Throughput::Elements(sched.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("dwt256_window", sched.len()),
        &(),
        |b, _| {
            b.iter(|| black_box(machine.run(&sched, &env).unwrap()));
        },
    );

    // One MVM decode at the Table 1 budget.
    let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
    let budget = mvm_tiling::min_memory(&mvm);
    let sched = mvm_tiling::schedule(&mvm, budget).unwrap();
    let ops = mvm_kernel::op_table(&mvm);
    let a = mvm_kernel::Matrix::new(
        96,
        120,
        (0..96 * 120).map(|i| (i % 17) as f64 / 17.0).collect(),
    );
    let x: Vec<f64> = (0..120).map(|i| (i as f64 * 0.05).cos()).collect();
    let env = mvm_kernel::inputs_for(&mvm, &a, &x);
    let machine = Machine::new(mvm.cdag(), &ops, budget);
    group.throughput(criterion::Throughput::Elements(sched.len() as u64));
    group.bench_with_input(BenchmarkId::new("mvm_decode", sched.len()), &(), |b, _| {
        b.iter(|| black_box(machine.run(&sched, &env).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
