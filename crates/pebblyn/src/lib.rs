//! # pebblyn — Weighted Red-Blue Pebble Games for resource-constrained
//! scheduling and memory design
//!
//! A complete implementation of *Dataflow-Specific Algorithms for
//! Resource-Constrained Scheduling and Memory Design* (SPAA 2025): the
//! Weighted Red-Blue Pebble Game (WRBPG), provably optimal schedulers for
//! tree-structured dataflows (DWT, k-ary trees), memory-state scheduling
//! and MVM tiling, baselines, an executable two-level memory machine, and a
//! calibrated SRAM synthesis model that turns minimum memory sizes into
//! area/power/throughput numbers.
//!
//! ## Quick tour
//!
//! ```
//! use pebblyn::prelude::*;
//!
//! // A Haar DWT over 16 samples, 2 levels, 16-bit samples everywhere.
//! let dwt = DwtGraph::new(16, 2, WeightScheme::Equal(16)).unwrap();
//!
//! // The best any schedule can do: every input read + every output
//! // written exactly once.
//! let lb = algorithmic_lower_bound(dwt.cdag());
//!
//! // An optimal schedule under a 7-word (112-bit) fast memory.
//! let schedule = dwt_opt::schedule(&dwt, 112).unwrap();
//! let stats = validate_schedule(dwt.cdag(), 112, &schedule).unwrap();
//! assert_eq!(stats.cost, dwt_opt::min_cost(&dwt, 112).unwrap());
//! assert!(stats.cost >= lb);
//! ```
//!
//! The workspace crates are re-exported under their short names:
//!
//! * [`core`] — the game model (graphs, moves, schedules, validation,
//!   bounds),
//! * [`graphs`] — DWT / MVM / k-ary tree constructions,
//! * [`schedulers`] — the paper's algorithms plus baselines,
//! * [`exact`] — exhaustive optimal search for certification,
//! * [`streaming`] — O(E) single-pass schedulers for the million-node
//!   regime (topological-window Belady eviction, layered slab
//!   partitioning), certified by the bound-gap conformance tier,
//! * [`conformance`] — the differential fuzzing harness that certifies
//!   every scheduler against [`exact`] on randomized CDAGs,
//! * [`baselines`] — IOOpt-style analytic bounds,
//! * [`engine`] — the parallel sweep engine (`workloads × budgets ×
//!   schedulers` plans with memoized evaluation),
//! * [`machine`] — executable two-level memory machine with energy
//!   accounting,
//! * [`kernels`] — Haar/MVM arithmetic, synthetic neural signals, BCI
//!   features, fixed point,
//! * [`synth`] — the SRAM macro model behind the circuit-level results,
//! * [`telemetry`] — zero-overhead-when-disabled counters, phase timers
//!   and sinks shared by the solver, engine, and CLI,
//! * [`service`] — the scheduling daemon: wire protocol, canonicalizing
//!   schedule cache, and the bounded-queue worker pool behind
//!   `pebblyn serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pebblyn_baselines as baselines;
pub use pebblyn_conformance as conformance;
pub use pebblyn_core as core;
pub use pebblyn_engine as engine;
pub use pebblyn_exact as exact;
pub use pebblyn_graphs as graphs;
pub use pebblyn_kernels as kernels;
pub use pebblyn_machine as machine;
pub use pebblyn_schedulers as schedulers;
pub use pebblyn_service as service;
pub use pebblyn_streaming as streaming;
pub use pebblyn_synth as synth;
pub use pebblyn_telemetry as telemetry;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use pebblyn_baselines::IoOptMvmModel;
    pub use pebblyn_core::{
        algorithmic_lower_bound, min_feasible_budget, peephole, schedule_exists, validate_moves,
        validate_schedule, Cdag, CdagBuilder, Label, Move, MoveStream, NodeId, PebbleState,
        PeepholeStats, RedSet, Schedule, ScheduleRequest, ScheduleResponse, ScheduleStats, Weight,
    };
    pub use pebblyn_core::{occupancy_summary, occupancy_trace, summarize, OccupancySummary};
    pub use pebblyn_core::{
        validate_multi_schedule, MachineSpec, MultiMove, MultiSchedule, MultiStats,
        MultiValidityError, ProcBudget, DEFAULT_COMM_PRICE,
    };
    pub use pebblyn_engine::{
        BudgetSpec, Memo, MinMemoryPlan, MinMemoryResult, Series, SweepPlan, SweepResult,
    };
    pub use pebblyn_exact::{
        exact_min_cost, exact_optimal_schedule, ExactError, ExactSolver, Heuristic, SearchStats,
        Solution, StateLimitExceeded, MAX_NODES,
    };
    pub use pebblyn_graphs::{
        banded, conv, dwt, dwt2d, dwt_coarse, mvm, tree, AnyGraph, BandedMvmGraph, CoarseDwtGraph,
        ConvGraph, Dwt2dGraph, DwtGraph, Layered, MvmGraph, WeightScheme, Workload,
    };
    pub use pebblyn_kernels::{features, fixed, haar, haar2d, mvm as mvm_kernel, signal};
    pub use pebblyn_machine::{EnergyModel, Machine, Op, OpTable};
    pub use pebblyn_schedulers::dwt_opt::IoCosts;
    pub use pebblyn_schedulers::layer_by_layer::LayerByLayerOptions;
    pub use pebblyn_schedulers::memstate::MemoryStates;
    pub use pebblyn_schedulers::mvm_tiling::TilingConfig;
    pub use pebblyn_schedulers::parallel::ParallelPlan;
    pub use pebblyn_schedulers::{
        api, banded_stream, conv_stream, dwt_opt, greedy_belady, kary, layer_by_layer, memstate,
        min_memory, multi, mvm_tiling, naive, parallel, registry, MinMemoryOptions, ScheduleError,
        Scheduler,
    };
    pub use pebblyn_service::{
        GraphSpec, Outcome, RejectKind, Request, Response, Server, ServerConfig, Service,
        ServiceConfig,
    };
    pub use pebblyn_synth::{round_pow2, Floorplan, NvmParams, Process, SramConfig, SramMacro};
}
