//! The SRAM macro model proper.

/// Round a capacity in bits up to the next power of two — the paper's
/// "Power-of-Two Capacity" column in Table 1.
pub fn round_pow2(bits: u64) -> u64 {
    bits.max(1).next_power_of_two()
}

/// Process / compiler calibration constants (TSMC 65 nm flavour, matched to
/// the magnitudes of the paper's AMC results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Bitcell area, λ² per bit.
    pub cell_area_l2: f64,
    /// Row periphery (wordline driver / decoder slice), λ² per row.
    pub row_area_l2: f64,
    /// Column periphery (sense amp, write driver, mux slice), λ² per column.
    pub col_area_l2: f64,
    /// Fixed control overhead, λ².
    pub fixed_area_l2: f64,
    /// Leakage, mW per bit.
    pub leak_mw_per_bit: f64,
    /// Leakage, mW per peripheral row/column slice.
    pub leak_mw_per_slice: f64,
    /// Fixed leakage, mW.
    pub leak_mw_fixed: f64,
    /// Dynamic read power per switched line (row or column), mW.
    pub read_mw_per_line: f64,
    /// Fixed read I/O power, mW.
    pub read_mw_fixed: f64,
    /// Write power multiplier over read (full bitline swings).
    pub write_factor: f64,
    /// Access time intercept, ps.
    pub t0_ps: f64,
    /// Access time slope, ps per (row + column).
    pub t_slope_ps: f64,
}

impl Default for Process {
    fn default() -> Self {
        Process {
            cell_area_l2: 2.0,
            row_area_l2: 24.0,
            col_area_l2: 24.0,
            fixed_area_l2: 3000.0,
            leak_mw_per_bit: 0.00122,
            leak_mw_per_slice: 0.008,
            leak_mw_fixed: 1.5,
            read_mw_per_line: 0.14,
            read_mw_fixed: 4.0,
            write_factor: 1.12,
            t0_ps: 40.8,
            t_slope_ps: 0.0266,
        }
    }
}

/// A memory to synthesise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Capacity in bits (rounded internally to a power of two).
    pub capacity_bits: u64,
    /// Word size in bits (the access granularity).
    pub word_bits: u64,
}

impl SramConfig {
    /// Standard 16-bit-word configuration used throughout the paper.
    pub fn words16(capacity_bits: u64) -> Self {
        SramConfig {
            capacity_bits,
            word_bits: 16,
        }
    }
}

/// Synthesis result.
#[derive(Debug, Clone, PartialEq)]
pub struct SramMacro {
    /// Power-of-two capacity actually implemented, bits.
    pub capacity_bits: u64,
    /// Word size, bits.
    pub word_bits: u64,
    /// Array rows.
    pub rows: u64,
    /// Array columns (word bits × column mux).
    pub cols: u64,
    /// Column multiplexing factor.
    pub mux: u64,
    /// Total macro area, λ².
    pub area_l2: f64,
    /// Leakage (static) power, mW.
    pub leakage_mw: f64,
    /// Read power at full utilisation, mW.
    pub read_power_mw: f64,
    /// Write power at full utilisation, mW.
    pub write_power_mw: f64,
    /// Access time, ps.
    pub access_ps: f64,
    /// Peak read throughput, GB/s.
    pub read_gbps: f64,
    /// Peak write throughput, GB/s.
    pub write_gbps: f64,
}

impl SramConfig {
    /// Choose the array organisation: columns are `word_bits × mux` with the
    /// power-of-two mux that makes the mat closest to square (short lines ⇒
    /// fast and low-power).
    pub fn organize(&self) -> (u64, u64, u64) {
        let bits = round_pow2(self.capacity_bits.max(self.word_bits));
        let mut best = (u64::MAX, 0, 0, 0); // (imbalance, rows, cols, mux)
        let mut mux = 1u64;
        while self.word_bits * mux <= bits {
            let cols = self.word_bits * mux;
            let rows = bits / cols;
            if rows >= 1 {
                let imbalance = rows.abs_diff(cols);
                if imbalance < best.0 {
                    best = (imbalance, rows, cols, mux);
                }
            }
            mux *= 2;
        }
        (best.1, best.2, best.3)
    }

    /// Run the macro model.
    pub fn synthesize(&self, p: &Process) -> SramMacro {
        let bits = round_pow2(self.capacity_bits.max(self.word_bits));
        let (rows, cols, mux) = self.organize();
        let area_l2 = bits as f64 * p.cell_area_l2
            + rows as f64 * p.row_area_l2
            + cols as f64 * p.col_area_l2
            + p.fixed_area_l2;
        let leakage_mw = bits as f64 * p.leak_mw_per_bit
            + (rows + cols) as f64 * p.leak_mw_per_slice
            + p.leak_mw_fixed;
        let lines = (rows + cols) as f64;
        let read_power_mw = lines * p.read_mw_per_line + p.read_mw_fixed;
        let write_power_mw = read_power_mw * p.write_factor;
        let access_ps = p.t0_ps + p.t_slope_ps * lines;
        let bytes_per_access = self.word_bits as f64 / 8.0;
        let gbps = bytes_per_access / access_ps; // bytes / ps == GB/s * 1e3... see below
                                                 // bytes per picosecond = 10^12 bytes/s = 10^3 GB/s.
        let read_gbps = gbps * 1000.0;
        let write_gbps = read_gbps / p.write_factor;
        SramMacro {
            capacity_bits: bits,
            word_bits: self.word_bits,
            rows,
            cols,
            mux,
            area_l2,
            leakage_mw,
            read_power_mw,
            write_power_mw,
            access_ps,
            read_gbps,
            write_gbps,
        }
    }
}

impl SramMacro {
    /// Capacity in `word_bits`-sized words.
    pub fn words(&self) -> u64 {
        self.capacity_bits / self.word_bits
    }

    /// Energy of one read access in picojoules (power × access time).
    pub fn read_energy_pj(&self) -> f64 {
        // mW × ps = 10⁻³ J/s × 10⁻¹² s = 10⁻¹⁵ J = 10⁻³ pJ.
        self.read_power_mw * self.access_ps * 1e-3
    }

    /// Energy of one write access in picojoules.
    pub fn write_energy_pj(&self) -> f64 {
        self.write_power_mw * self.access_ps * 1e-3
    }

    /// Per-bit transfer energies between this SRAM and a slow memory:
    /// `(load_pj_per_bit, store_pj_per_bit)` where a load (M1) reads the
    /// slow memory and writes the SRAM, and a store (M2) the reverse.
    ///
    /// Feed these into [`pebblyn-machine`'s `EnergyModel`] to price a
    /// schedule with the synthesized macro's own numbers.
    pub fn transfer_energy_per_bit(&self, nvm: &NvmParams) -> (f64, f64) {
        let bits = self.word_bits as f64;
        let load = nvm.read_pj_per_bit + self.write_energy_pj() / bits;
        let store = self.read_energy_pj() / bits + nvm.write_pj_per_bit;
        (load, store)
    }
}

/// Slow (non-volatile) memory energy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmParams {
    /// Read energy, pJ per bit.
    pub read_pj_per_bit: f64,
    /// Write energy, pJ per bit (typically ~10x the read energy).
    pub write_pj_per_bit: f64,
}

impl Default for NvmParams {
    /// Embedded-Flash flavour: ~1 pJ/bit reads, ~10 pJ/bit writes.
    fn default() -> Self {
        NvmParams {
            read_pj_per_bit: 1.0,
            write_pj_per_bit: 10.0,
        }
    }
}

/// Percentage reduction going from `from` to `to` (positive = smaller).
pub fn reduction_pct(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        100.0 * (from - to) / from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(bits: u64) -> SramMacro {
        SramConfig::words16(bits).synthesize(&Process::default())
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(round_pow2(160), 256);
        assert_eq!(round_pow2(256), 256);
        assert_eq!(round_pow2(257), 512);
        assert_eq!(round_pow2(1), 1);
        assert_eq!(round_pow2(0), 1);
    }

    #[test]
    fn organisation_is_near_square_and_exact() {
        for bits in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
            let m = synth(bits);
            assert_eq!(m.rows * m.cols, bits, "capacity preserved");
            assert_eq!(m.cols, 16 * m.mux);
            // Near-square: aspect ratio within 2x.
            let aspect = m.rows.max(m.cols) / m.rows.min(m.cols);
            assert!(aspect <= 2, "{bits}: {}x{}", m.rows, m.cols);
        }
    }

    #[test]
    fn metrics_are_monotone_in_capacity() {
        let sizes = [256u64, 512, 1024, 2048, 4096, 8192, 16384];
        let macros: Vec<_> = sizes.iter().map(|&b| synth(b)).collect();
        for w in macros.windows(2) {
            assert!(w[1].area_l2 > w[0].area_l2);
            assert!(w[1].leakage_mw > w[0].leakage_mw);
            assert!(w[1].read_power_mw >= w[0].read_power_mw);
            assert!(w[1].access_ps >= w[0].access_ps);
            assert!(w[1].read_gbps <= w[0].read_gbps);
        }
    }

    #[test]
    fn calibration_magnitudes_match_figure_7() {
        // Largest memory in the paper's comparison: 16384 bits.
        let big = synth(16384);
        assert!(
            (30_000.0..50_000.0).contains(&big.area_l2),
            "{}",
            big.area_l2
        );
        assert!((18.0..30.0).contains(&big.leakage_mw), "{}", big.leakage_mw);
        assert!(
            (30.0..48.0).contains(&big.read_power_mw),
            "{}",
            big.read_power_mw
        );
        // Throughput nearly flat: within ~20% across the whole range.
        let small = synth(256);
        assert!(small.read_gbps / big.read_gbps < 1.25);
        assert!((35.0..60.0).contains(&big.read_gbps), "{}", big.read_gbps);
    }

    #[test]
    fn area_reductions_match_paper_shape() {
        // DWT Equal: 256 vs 8192 bits — paper reports 85.7% area reduction.
        let r = reduction_pct(synth(8192).area_l2, synth(256).area_l2);
        assert!((70.0..95.0).contains(&r), "DWT Equal area reduction {r}");
        // DWT DA: 512 vs 16384 — paper 89.5%.
        let r = reduction_pct(synth(16384).area_l2, synth(512).area_l2);
        assert!((75.0..95.0).contains(&r), "DWT DA area reduction {r}");
        // MVM Equal: 2048 vs 4096 — paper 24.3%.
        let r = reduction_pct(synth(4096).area_l2, synth(2048).area_l2);
        assert!((15.0..45.0).contains(&r), "MVM Equal area reduction {r}");
        // MVM DA: 2048 vs 8192 — paper 52.6%.
        let r = reduction_pct(synth(8192).area_l2, synth(2048).area_l2);
        assert!((40.0..70.0).contains(&r), "MVM DA area reduction {r}");
    }

    #[test]
    fn write_costs_more_than_read() {
        let m = synth(2048);
        assert!(m.write_power_mw > m.read_power_mw);
        assert!(m.write_gbps < m.read_gbps);
    }

    #[test]
    fn words_accessor() {
        assert_eq!(synth(2048).words(), 128);
    }

    #[test]
    fn transfer_energy_bridges_to_schedule_pricing() {
        let m = synth(2048);
        let (load, store) = m.transfer_energy_per_bit(&NvmParams::default());
        // NVM write asymmetry dominates: stores cost several times loads.
        assert!(store > 2.0 * load, "load {load}, store {store}");
        // SRAM access adds a sub-pJ/bit contribution on top of the NVM.
        assert!(load > 1.0 && load < 2.0, "{load}");
        assert!(m.read_energy_pj() > 0.0 && m.write_energy_pj() > m.read_energy_pj());
    }

    #[test]
    fn tiny_capacity_clamps_to_word() {
        let m = SramConfig::words16(8).synthesize(&Process::default());
        assert_eq!(m.capacity_bits, 16);
        assert_eq!(m.rows, 1);
    }
}
