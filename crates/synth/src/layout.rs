//! Floorplan geometry and ASCII rendering — the Figure 8 comparison.

use crate::sram::SramMacro;

/// Physical floorplan of a synthesised macro.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Macro width in λ (bitcell columns plus column periphery).
    pub width_l: f64,
    /// Macro height in λ (derived so `width × height` equals the macro
    /// area).
    pub height_l: f64,
    /// The macro this floorplan belongs to.
    pub capacity_bits: u64,
}

impl Floorplan {
    /// Derive a floorplan from a synthesised macro: width follows the
    /// column pitch, height absorbs the rest of the area.
    pub fn of(m: &SramMacro) -> Self {
        const CELL_PITCH_L: f64 = 1.6;
        const EDGE_L: f64 = 30.0;
        let width_l = m.cols as f64 * CELL_PITCH_L + EDGE_L;
        let height_l = m.area_l2 / width_l;
        Floorplan {
            width_l,
            height_l,
            capacity_bits: m.capacity_bits,
        }
    }

    /// Area in λ² (consistent with the macro's reported area).
    pub fn area_l2(&self) -> f64 {
        self.width_l * self.height_l
    }

    /// Render this floorplan next to another as ASCII boxes whose drawn
    /// areas are proportional to silicon area — a terminal stand-in for the
    /// paper's Figure 8 layout plots.
    pub fn render_comparison(&self, other: &Floorplan, labels: (&str, &str)) -> String {
        let scale = 14.0 / other.width_l.max(self.width_l);
        let draw = |fp: &Floorplan| -> (usize, usize) {
            let w = (fp.width_l * scale).round().max(2.0) as usize;
            let h = (fp.height_l * scale / 2.2).round().max(1.0) as usize;
            (w, h)
        };
        let (w1, h1) = draw(self);
        let (w2, h2) = draw(other);
        let mut out = String::new();
        let box_lines = |w: usize, h: usize| -> Vec<String> {
            let mut lines = vec![format!("+{}+", "-".repeat(w))];
            for _ in 0..h {
                lines.push(format!("|{}|", " ".repeat(w)));
            }
            lines.push(format!("+{}+", "-".repeat(w)));
            lines
        };
        let b1 = box_lines(w1, h1);
        let b2 = box_lines(w2, h2);
        let rows = b1.len().max(b2.len());
        let pad1 = w1 + 2;
        for i in 0..rows {
            let l = b1.get(i).map(String::as_str).unwrap_or("");
            let r = b2.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!("{l:<pad1$}   {r}\n"));
        }
        let left = format!("{} ({} b)", labels.0, self.capacity_bits);
        let right = format!("{} ({} b)", labels.1, other.capacity_bits);
        out.push_str(&format!("{left:<pad1$}   {right}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::{Process, SramConfig};

    fn plan(bits: u64) -> Floorplan {
        Floorplan::of(&SramConfig::words16(bits).synthesize(&Process::default()))
    }

    #[test]
    fn area_is_consistent_with_macro() {
        let m = SramConfig::words16(2048).synthesize(&Process::default());
        let fp = Floorplan::of(&m);
        assert!((fp.area_l2() - m.area_l2).abs() < 1e-6);
    }

    #[test]
    fn bigger_memory_bigger_floorplan() {
        let small = plan(256);
        let large = plan(8192);
        assert!(large.area_l2() > 4.0 * small.area_l2());
        assert!(large.width_l >= small.width_l);
    }

    #[test]
    fn render_contains_both_boxes_and_labels() {
        let a = plan(256);
        let b = plan(8192);
        let s = a.render_comparison(&b, ("Optimum", "Layer-by-Layer"));
        assert!(s.contains("Optimum (256 b)"));
        assert!(s.contains("Layer-by-Layer (8192 b)"));
        assert!(s.matches('+').count() >= 8, "two boxes drawn");
    }
}
