//! # pebblyn-synth — a parametric SRAM macro model
//!
//! The paper closes the loop from schedules to silicon: the minimum fast
//! memory sizes of Table 1 are synthesised with AMC (an open-source
//! asynchronous memory compiler) on TSMC 65 nm, yielding the area, power and
//! throughput comparisons of Figures 7 and 8.  That flow needs a proprietary
//! PDK; this crate replaces it with a calibrated analytic macro model:
//!
//! * capacities are rounded to powers of two (standard design practice, and
//!   the paper's final Table 1 column),
//! * the array is organised into a near-square `rows × cols` mat with
//!   column multiplexing,
//! * area is bitcell array + row/column periphery + fixed control overhead
//!   (in λ², the layout-scaling unit of Fig. 7a),
//! * leakage scales with bits plus periphery; read/write power with the
//!   switched word- and bit-line capacitance per access,
//! * throughput is word size over an RC-flavoured access time, nearly flat
//!   across sizes — the property Fig. 7e/7f highlights.
//!
//! The constants are calibrated so the *magnitudes and ratios* land in the
//! range of the paper's Fig. 7 (λ²-area up to ~40 000, leakage up to
//! ~24 mW, read/write power up to ~40 mW, ~45 GB/s); EXPERIMENTS.md records
//! measured-vs-paper numbers for every configuration.

//!
//! Since the streaming-scheduler work the crate has a second personality:
//! [`giga`] generates **million-node CDAGs** (DWT pyramids, MVM
//! accumulation grids, seeded layered-random DAGs) directly in predecessor
//! CSR form, feeding `Cdag::from_csr` without any intermediate edge list —
//! the input side of the `results/bench_streaming.json` scaling curve.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod giga;
pub mod layout;
pub mod sram;

pub use giga::{dwt_giga, layered_random_giga, mvm_giga};
pub use layout::Floorplan;
pub use sram::{round_pow2, NvmParams, Process, SramConfig, SramMacro};
