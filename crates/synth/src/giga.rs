//! Million-node CDAG generators that materialize predecessor CSR directly.
//!
//! The regular [`pebblyn_core::CdagBuilder`] path keeps a `(from, to)` edge
//! list plus a hash set for duplicate detection — fine at thousands of
//! nodes, wasteful at millions.  These generators emit nodes in
//! topological id order and append each node's predecessors straight into
//! the CSR arrays consumed by [`Cdag::from_csr`], so peak memory is the
//! graph itself and construction is a strict O(V + E) pass.
//!
//! All three families are deterministic: the random family is driven by a
//! SplitMix64 stream seeded by the caller, and the structured families use
//! no randomness at all.  Same parameters + same seed ⇒ byte-identical
//! CSR (pinned by the generator-determinism test).

use pebblyn_core::{Cdag, NodeId, Weight};

/// Word size of input coefficients in bits (matches the paper's 16-bit
/// DWT/MVM inputs).
const INPUT_BITS: Weight = 16;
/// Word size of computed values in bits (32-bit accumulators).
const ACC_BITS: Weight = 32;

/// SplitMix64 (Steele et al.): the same generator the conformance harness
/// seeds its cases with, reproduced here so `pebblyn-synth` stays free of
/// the conformance crate.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (Lemire-free modulo is fine here: the
    /// bound is tiny next to 2^64, so the bias is negligible and, more
    /// importantly, deterministic).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Streaming builder over the raw CSR arrays: push one node at a time with
/// its (already deduplicated, in-range) predecessors.
struct CsrSink {
    weights: Vec<Weight>,
    pred_off: Vec<u32>,
    pred_adj: Vec<NodeId>,
}

impl CsrSink {
    fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut pred_off = Vec::with_capacity(nodes + 1);
        pred_off.push(0);
        Self {
            weights: Vec::with_capacity(nodes),
            pred_off,
            pred_adj: Vec::with_capacity(edges),
        }
    }

    fn node(&mut self, weight: Weight, preds: &[NodeId]) -> NodeId {
        let id = NodeId(self.weights.len() as u32);
        self.weights.push(weight);
        self.pred_adj.extend_from_slice(preds);
        self.pred_off.push(self.pred_adj.len() as u32);
        id
    }

    fn finish(self) -> Cdag {
        Cdag::from_csr(self.weights, self.pred_off, self.pred_adj)
            .expect("generator emits structurally valid CSR")
    }
}

/// A 1-D discrete wavelet transform pyramid.
///
/// Level 0 holds `inputs` source coefficients (16-bit); each of `levels`
/// analysis levels maps the previous approximation band of length `m` to
/// `m / 2` approximation and `m / 2` detail coefficients (32-bit), each
/// consuming one even/odd input pair.  Detail bands and the final
/// approximation band are the sinks.  Node count is
/// `inputs · (1 + 2·(1 − 2⁻ˡᵉᵛᵉˡˢ))` ≈ 3·`inputs`; every non-source node
/// has exactly 2 predecessors.
///
/// # Panics
///
/// Panics unless `inputs` is a power of two ≥ 2 and
/// `1 ≤ levels ≤ log2(inputs)`.
pub fn dwt_giga(inputs: usize, levels: usize) -> Cdag {
    assert!(
        inputs >= 2 && inputs.is_power_of_two(),
        "inputs must be a power of two >= 2"
    );
    assert!(
        levels >= 1 && (1usize << levels) <= inputs,
        "levels must satisfy 2^levels <= inputs"
    );
    let edges = 2 * (2 * inputs - inputs.checked_shr(levels as u32 - 1).unwrap_or(0));
    let nodes = inputs + edges / 2;
    let mut sink = CsrSink::with_capacity(nodes, edges);

    let mut band: Vec<NodeId> = (0..inputs).map(|_| sink.node(INPUT_BITS, &[])).collect();
    for _ in 0..levels {
        let half = band.len() / 2;
        let mut next = Vec::with_capacity(half);
        for i in 0..half {
            let pair = [band[2 * i], band[2 * i + 1]];
            next.push(sink.node(ACC_BITS, &pair)); // approximation
            sink.node(ACC_BITS, &pair); // detail (sink)
        }
        band = next;
    }
    sink.finish()
}

/// A matrix-vector multiply as `rows` partial-accumulation chains.
///
/// `cols` source vector entries (16-bit) feed every row; row `i` is the
/// chain `p[i][j] = p[i][j-1] + A[i][j] · x[j]` of 32-bit partials, so
/// node `(i, j)` depends on `x[j]` and, for `j > 0`, on `(i, j-1)`.  The
/// last partial of each row is a sink.  `rows · cols + cols` nodes,
/// `2·rows·cols − rows` edges.
///
/// # Panics
///
/// Panics when `rows` or `cols` is zero.
pub fn mvm_giga(rows: usize, cols: usize) -> Cdag {
    assert!(rows > 0 && cols > 0, "rows and cols must be positive");
    let nodes = cols + rows * cols;
    let edges = 2 * rows * cols - rows;
    let mut sink = CsrSink::with_capacity(nodes, edges);

    let x: Vec<NodeId> = (0..cols).map(|_| sink.node(INPUT_BITS, &[])).collect();
    for _ in 0..rows {
        let mut prev = sink.node(ACC_BITS, &[x[0]]);
        for &xj in &x[1..] {
            prev = sink.node(ACC_BITS, &[xj, prev]);
        }
    }
    sink.finish()
}

/// A seeded layered-random DAG: `layers` layers of `width` nodes; layer 0
/// is the 16-bit sources, and each deeper node draws up to `fan_in`
/// distinct predecessors uniformly from the previous layer (weights cycle
/// through 16/32/48/64 bits pseudo-randomly).  Sources left unconsumed by
/// layer 1 are patched onto layer-1 nodes so no node is simultaneously
/// source and sink; deeper unconsumed nodes simply become extra sinks.
///
/// # Panics
///
/// Panics unless `layers ≥ 2`, `width ≥ 1`, and `1 ≤ fan_in ≤ width`.
pub fn layered_random_giga(layers: usize, width: usize, fan_in: usize, seed: u64) -> Cdag {
    assert!(layers >= 2, "need at least sources plus one compute layer");
    assert!(width >= 1, "width must be positive");
    assert!((1..=width).contains(&fan_in), "fan_in must be in 1..=width");
    let nodes = layers * width;
    let mut sink = CsrSink::with_capacity(nodes, nodes * fan_in);
    let mut rng = SplitMix64::new(seed);

    let mut prev: Vec<NodeId> = (0..width).map(|_| sink.node(INPUT_BITS, &[])).collect();
    let mut preds: Vec<NodeId> = Vec::with_capacity(fan_in + width);
    // Per-node predecessor choices of the whole next layer, staged so the
    // layer-1 patch-up can run before anything is committed to the CSR.
    let mut staged: Vec<Vec<NodeId>> = Vec::with_capacity(width);
    let mut used = vec![false; width];

    for layer in 1..layers {
        staged.clear();
        used.iter_mut().for_each(|u| *u = false);
        for _ in 0..width {
            let k = 1 + rng.below(fan_in as u64) as usize;
            preds.clear();
            for _ in 0..k {
                let cand = prev[rng.below(width as u64) as usize];
                if !preds.contains(&cand) {
                    preds.push(cand);
                }
            }
            for &p in &preds {
                used[p.index() % width] = true;
            }
            staged.push(preds.clone());
        }
        if layer == 1 {
            // Patch unconsumed sources onto layer-1 nodes round-robin so no
            // source is also a sink (the model forbids isolated values).
            let mut slot = 0usize;
            for (i, &u) in used.iter().enumerate() {
                if !u {
                    let orphan = prev[i];
                    while staged[slot % width].contains(&orphan) {
                        slot += 1;
                    }
                    staged[slot % width].push(orphan);
                    slot += 1;
                }
            }
        }
        prev = staged
            .iter()
            .map(|preds| {
                let w = INPUT_BITS * (1 + rng.below(4));
                sink.node(w, preds)
            })
            .collect();
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::min_feasible_budget;

    #[test]
    fn dwt_shape_and_counts() {
        let g = dwt_giga(16, 4);
        // 16 sources + (8+8) + (4+4) + (2+2) + (1+1) = 46 nodes.
        assert_eq!(g.len(), 46);
        assert_eq!(g.sources().len(), 16);
        // Details at each level + final approximation: 8+4+2+1 + 1 = 16.
        assert_eq!(g.sinks().len(), 16);
        assert_eq!(g.edge_count(), 2 * (46 - 16));
        assert!(g
            .nodes()
            .all(|v| g.in_degree(v) == 0 || g.in_degree(v) == 2));
        assert!(min_feasible_budget(&g) <= 3 * ACC_BITS);
    }

    #[test]
    fn mvm_shape_and_counts() {
        let g = mvm_giga(3, 5);
        assert_eq!(g.len(), 5 + 15);
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 3);
        assert_eq!(g.edge_count(), 2 * 15 - 3);
    }

    #[test]
    fn layered_random_is_structurally_sound() {
        let g = layered_random_giga(8, 32, 3, 0xfeed);
        assert_eq!(g.len(), 8 * 32);
        assert_eq!(g.sources().len(), 32);
        assert!(!g.sinks().is_empty());
        // Every source is consumed (the patch-up worked) because from_csr
        // would have rejected a SourceIsSink otherwise; spot-check anyway.
        assert!(g.sources().iter().all(|&s| g.out_degree(s) > 0));
    }

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let a = layered_random_giga(6, 16, 2, 7);
        let b = layered_random_giga(6, 16, 2, 7);
        let c = layered_random_giga(6, 16, 2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    /// The benchmark ladder's largest graphs must be bit-stable across
    /// builds: two constructions from the same parameters are `==` (node
    /// weights, CSR layout, topo order — `Cdag` derives full equality).
    /// Runs the million-node shapes under optimization; debug builds use
    /// a 10x smaller ladder so `cargo test` stays quick.
    #[test]
    fn giga_generators_are_deterministic_at_scale() {
        let scale = if cfg!(debug_assertions) { 10 } else { 1 };
        let (layers, width) = (1000 / scale, 1000);
        let a = layered_random_giga(layers, width, 3, 7);
        let b = layered_random_giga(layers, width, 3, 7);
        assert_eq!(a.len(), layers * width);
        assert_eq!(a, b);

        let rows = 1_000_000 / scale / 1000 - 1;
        let m1 = mvm_giga(rows, 1000);
        let m2 = mvm_giga(rows, 1000);
        assert_eq!(m1.len(), 1000 + rows * 1000);
        assert_eq!(m1, m2);

        let inputs = 262_144 / scale.next_power_of_two();
        let d1 = dwt_giga(inputs, inputs.trailing_zeros() as usize);
        let d2 = dwt_giga(inputs, inputs.trailing_zeros() as usize);
        assert_eq!(d1, d2);
    }
}
