//! Node labels and pebble-state snapshots.

use crate::graph::{Cdag, NodeId, Weight};
use crate::moves::Move;
use crate::redset::RedSet;
use std::fmt;

/// The label `λ_v` of a node in a snapshot: which pebbles it carries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Label {
    /// No pebble.
    #[default]
    None,
    /// Red pebble only (resident in fast memory).
    Red,
    /// Blue pebble only (resident in slow memory).
    Blue,
    /// Both pebbles.
    Both,
}

impl Label {
    /// `true` if the node carries a red pebble (`Red` or `Both`).
    #[inline]
    pub fn has_red(self) -> bool {
        matches!(self, Label::Red | Label::Both)
    }

    /// `true` if the node carries a blue pebble (`Blue` or `Both`).
    #[inline]
    pub fn has_blue(self) -> bool {
        matches!(self, Label::Blue | Label::Both)
    }

    /// Add a red pebble.
    #[inline]
    pub fn with_red(self) -> Label {
        match self {
            Label::None | Label::Red => Label::Red,
            Label::Blue | Label::Both => Label::Both,
        }
    }

    /// Add a blue pebble.
    #[inline]
    pub fn with_blue(self) -> Label {
        match self {
            Label::None | Label::Blue => Label::Blue,
            Label::Red | Label::Both => Label::Both,
        }
    }

    /// Remove the red pebble (blue, if present, remains).
    #[inline]
    pub fn without_red(self) -> Label {
        match self {
            Label::None | Label::Red => Label::None,
            Label::Blue | Label::Both => Label::Blue,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Label::None => "none",
            Label::Red => "red",
            Label::Blue => "blue",
            Label::Both => "both",
        };
        f.write_str(s)
    }
}

/// A full game snapshot: the red and blue pebble sets plus the cached total
/// weight of red pebbles.
///
/// Internally two [`RedSet`] bitsets (one per pebble color), so membership
/// tests are O(1) bit probes, the red weight is maintained incrementally,
/// and snapshot hashing/equality cost O(words) instead of O(nodes).
/// [`PebbleState::label`] reconstructs the per-node [`Label`] view on
/// demand.
///
/// `PebbleState::initial` encodes the starting condition `C_0` (all sources
/// blue, everything else unpebbled).  [`PebbleState::apply`] performs a move
/// *without* checking the game rules — rule checking lives in
/// [`crate::validate`]; this type is the shared mechanics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PebbleState {
    red: RedSet,
    blue: RedSet,
}

impl PebbleState {
    /// The starting condition `C_0`: every source node carries a blue pebble.
    pub fn initial(graph: &Cdag) -> Self {
        let mut blue = RedSet::new(graph.len());
        for &v in graph.sources() {
            blue.insert(v, graph.weight(v));
        }
        PebbleState {
            red: RedSet::new(graph.len()),
            blue,
        }
    }

    /// The label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        match (self.red.contains(v), self.blue.contains(v)) {
            (false, false) => Label::None,
            (true, false) => Label::Red,
            (false, true) => Label::Blue,
            (true, true) => Label::Both,
        }
    }

    /// Total weight of red pebbles, i.e. `Σ_{v ∈ R(C)} w_v`.
    #[inline]
    pub fn red_weight(&self) -> Weight {
        self.red.weight()
    }

    /// The red pebble set `R(C)` as a bitset.
    #[inline]
    pub fn red(&self) -> &RedSet {
        &self.red
    }

    /// The blue pebble set `B(C)` as a bitset.
    #[inline]
    pub fn blue(&self) -> &RedSet {
        &self.blue
    }

    /// Nodes currently carrying a red pebble (`R(C)`).
    pub fn red_nodes(&self) -> Vec<NodeId> {
        self.red.iter().collect()
    }

    /// Nodes currently carrying a blue pebble (`B(C)`).
    pub fn blue_nodes(&self) -> Vec<NodeId> {
        self.blue.iter().collect()
    }

    /// Apply a move's label transition, updating the cached red weight.
    ///
    /// Does **not** check the game rules; see [`crate::validate`].
    pub fn apply(&mut self, graph: &Cdag, mv: Move) {
        let v = mv.node();
        let w = graph.weight(v);
        match mv {
            Move::Load(_) | Move::Compute(_) => {
                self.red.insert(v, w);
            }
            Move::Store(_) => {
                self.blue.insert(v, w);
            }
            Move::Delete(_) => {
                self.red.remove(v, w);
            }
        }
    }

    /// `true` when the stopping condition holds: every sink has a blue pebble.
    pub fn stopping_condition(&self, graph: &Cdag) -> bool {
        graph.sinks().iter().all(|&v| self.blue.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    fn pair() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(32, "y");
        b.edge(x, y);
        b.build().unwrap()
    }

    #[test]
    fn label_transitions_follow_figure_1() {
        // Figure 1 of the paper: transitions between none/red/blue/both.
        assert_eq!(Label::None.with_red(), Label::Red); // (M3 on none)
        assert_eq!(Label::Blue.with_red(), Label::Both); // (M1)
        assert_eq!(Label::Red.with_blue(), Label::Both); // (M2)
        assert_eq!(Label::Both.without_red(), Label::Blue); // (M4)
        assert_eq!(Label::Red.without_red(), Label::None); // (M4)
        assert!(Label::Both.has_red() && Label::Both.has_blue());
        assert!(!Label::None.has_red() && !Label::None.has_blue());
    }

    #[test]
    fn initial_state_blues_sources_only() {
        let g = pair();
        let s = PebbleState::initial(&g);
        assert_eq!(s.label(NodeId(0)), Label::Blue);
        assert_eq!(s.label(NodeId(1)), Label::None);
        assert_eq!(s.red_weight(), 0);
        assert!(!s.stopping_condition(&g));
    }

    #[test]
    fn apply_tracks_red_weight() {
        let g = pair();
        let mut s = PebbleState::initial(&g);
        s.apply(&g, Move::Load(NodeId(0)));
        assert_eq!(s.red_weight(), 16);
        s.apply(&g, Move::Compute(NodeId(1)));
        assert_eq!(s.red_weight(), 48);
        s.apply(&g, Move::Store(NodeId(1)));
        assert_eq!(s.red_weight(), 48); // store does not free fast memory
        s.apply(&g, Move::Delete(NodeId(1)));
        assert_eq!(s.red_weight(), 16);
        assert!(s.stopping_condition(&g));
        assert_eq!(s.red_nodes(), vec![NodeId(0)]);
        assert_eq!(s.blue_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn double_load_does_not_double_count() {
        let g = pair();
        let mut s = PebbleState::initial(&g);
        s.apply(&g, Move::Load(NodeId(0)));
        s.apply(&g, Move::Load(NodeId(0)));
        assert_eq!(s.red_weight(), 16);
    }
}
