//! Node labels and pebble-state snapshots.

use crate::graph::{Cdag, NodeId, Weight};
use crate::moves::Move;
use std::fmt;

/// The label `λ_v` of a node in a snapshot: which pebbles it carries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Label {
    /// No pebble.
    #[default]
    None,
    /// Red pebble only (resident in fast memory).
    Red,
    /// Blue pebble only (resident in slow memory).
    Blue,
    /// Both pebbles.
    Both,
}

impl Label {
    /// `true` if the node carries a red pebble (`Red` or `Both`).
    #[inline]
    pub fn has_red(self) -> bool {
        matches!(self, Label::Red | Label::Both)
    }

    /// `true` if the node carries a blue pebble (`Blue` or `Both`).
    #[inline]
    pub fn has_blue(self) -> bool {
        matches!(self, Label::Blue | Label::Both)
    }

    /// Add a red pebble.
    #[inline]
    pub fn with_red(self) -> Label {
        match self {
            Label::None | Label::Red => Label::Red,
            Label::Blue | Label::Both => Label::Both,
        }
    }

    /// Add a blue pebble.
    #[inline]
    pub fn with_blue(self) -> Label {
        match self {
            Label::None | Label::Blue => Label::Blue,
            Label::Red | Label::Both => Label::Both,
        }
    }

    /// Remove the red pebble (blue, if present, remains).
    #[inline]
    pub fn without_red(self) -> Label {
        match self {
            Label::None | Label::Red => Label::None,
            Label::Blue | Label::Both => Label::Blue,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Label::None => "none",
            Label::Red => "red",
            Label::Blue => "blue",
            Label::Both => "both",
        };
        f.write_str(s)
    }
}

/// A full game snapshot: one [`Label`] per node plus the cached total weight
/// of red pebbles.
///
/// `PebbleState::initial` encodes the starting condition `C_0` (all sources
/// blue, everything else unpebbled).  [`PebbleState::apply`] performs a move
/// *without* checking the game rules — rule checking lives in
/// [`crate::validate`]; this type is the shared mechanics.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PebbleState {
    labels: Vec<Label>,
    red_weight: Weight,
}

impl PebbleState {
    /// The starting condition `C_0`: every source node carries a blue pebble.
    pub fn initial(graph: &Cdag) -> Self {
        let labels = graph
            .nodes()
            .map(|v| {
                if graph.is_source(v) {
                    Label::Blue
                } else {
                    Label::None
                }
            })
            .collect();
        PebbleState {
            labels,
            red_weight: 0,
        }
    }

    /// The label of node `v`.
    #[inline]
    pub fn label(&self, v: NodeId) -> Label {
        self.labels[v.index()]
    }

    /// All labels, indexed by node.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Total weight of red pebbles, i.e. `Σ_{v ∈ R(C)} w_v`.
    #[inline]
    pub fn red_weight(&self) -> Weight {
        self.red_weight
    }

    /// Nodes currently carrying a red pebble (`R(C)`).
    pub fn red_nodes(&self) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_red())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Nodes currently carrying a blue pebble (`B(C)`).
    pub fn blue_nodes(&self) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.has_blue())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Apply a move's label transition, updating the cached red weight.
    ///
    /// Does **not** check the game rules; see [`crate::validate`].
    pub fn apply(&mut self, graph: &Cdag, mv: Move) {
        let v = mv.node();
        let old = self.labels[v.index()];
        let new = match mv {
            Move::Load(_) | Move::Compute(_) => old.with_red(),
            Move::Store(_) => old.with_blue(),
            Move::Delete(_) => old.without_red(),
        };
        if new.has_red() && !old.has_red() {
            self.red_weight += graph.weight(v);
        } else if !new.has_red() && old.has_red() {
            self.red_weight -= graph.weight(v);
        }
        self.labels[v.index()] = new;
    }

    /// `true` when the stopping condition holds: every sink has a blue pebble.
    pub fn stopping_condition(&self, graph: &Cdag) -> bool {
        graph
            .nodes()
            .filter(|&v| graph.is_sink(v))
            .all(|v| self.label(v).has_blue())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    fn pair() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(32, "y");
        b.edge(x, y);
        b.build().unwrap()
    }

    #[test]
    fn label_transitions_follow_figure_1() {
        // Figure 1 of the paper: transitions between none/red/blue/both.
        assert_eq!(Label::None.with_red(), Label::Red); // (M3 on none)
        assert_eq!(Label::Blue.with_red(), Label::Both); // (M1)
        assert_eq!(Label::Red.with_blue(), Label::Both); // (M2)
        assert_eq!(Label::Both.without_red(), Label::Blue); // (M4)
        assert_eq!(Label::Red.without_red(), Label::None); // (M4)
        assert!(Label::Both.has_red() && Label::Both.has_blue());
        assert!(!Label::None.has_red() && !Label::None.has_blue());
    }

    #[test]
    fn initial_state_blues_sources_only() {
        let g = pair();
        let s = PebbleState::initial(&g);
        assert_eq!(s.label(NodeId(0)), Label::Blue);
        assert_eq!(s.label(NodeId(1)), Label::None);
        assert_eq!(s.red_weight(), 0);
        assert!(!s.stopping_condition(&g));
    }

    #[test]
    fn apply_tracks_red_weight() {
        let g = pair();
        let mut s = PebbleState::initial(&g);
        s.apply(&g, Move::Load(NodeId(0)));
        assert_eq!(s.red_weight(), 16);
        s.apply(&g, Move::Compute(NodeId(1)));
        assert_eq!(s.red_weight(), 48);
        s.apply(&g, Move::Store(NodeId(1)));
        assert_eq!(s.red_weight(), 48); // store does not free fast memory
        s.apply(&g, Move::Delete(NodeId(1)));
        assert_eq!(s.red_weight(), 16);
        assert!(s.stopping_condition(&g));
        assert_eq!(s.red_nodes(), vec![NodeId(0)]);
        assert_eq!(s.blue_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn double_load_does_not_double_count() {
        let g = pair();
        let mut s = PebbleState::initial(&g);
        s.apply(&g, Move::Load(NodeId(0)));
        s.apply(&g, Move::Load(NodeId(0)));
        assert_eq!(s.red_weight(), 16);
    }
}
