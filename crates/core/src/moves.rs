//! The four moves of the (weighted) red-blue pebble game.

use crate::graph::NodeId;
use std::fmt;

/// A single move of the game, applied to one node.
///
/// The paper names these *M1–M4*; this crate uses descriptive names:
///
/// | Paper | Variant | Meaning |
/// |-------|---------|---------|
/// | M1 | [`Move::Load`]    | copy to fast memory (blue → add red) |
/// | M2 | [`Move::Store`]   | copy to slow memory (red → add blue) |
/// | M3 | [`Move::Compute`] | perform the node's operation (preds red → add red) |
/// | M4 | [`Move::Delete`]  | delete a red pebble |
///
/// Only `Load` and `Store` carry weighted cost (Definition 2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Move {
    /// *M1* — copy the node's value from slow to fast memory.
    Load(NodeId),
    /// *M2* — copy the node's value from fast to slow memory.
    Store(NodeId),
    /// *M3* — compute the node into fast memory.
    Compute(NodeId),
    /// *M4* — evict the node's value from fast memory.
    Delete(NodeId),
}

impl Move {
    /// The node this move targets.
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            Move::Load(v) | Move::Store(v) | Move::Compute(v) | Move::Delete(v) => v,
        }
    }

    /// `true` for the two moves that transfer data (M1/M2) and therefore
    /// contribute weighted cost.
    #[inline]
    pub fn is_io(self) -> bool {
        matches!(self, Move::Load(_) | Move::Store(_))
    }

    /// The paper's name for the move ("M1".."M4").
    pub fn paper_name(self) -> &'static str {
        match self {
            Move::Load(_) => "M1",
            Move::Store(_) => "M2",
            Move::Compute(_) => "M3",
            Move::Delete(_) => "M4",
        }
    }
}

impl fmt::Debug for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.paper_name(), self.node())
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = NodeId(7);
        assert_eq!(Move::Load(v).node(), v);
        assert!(Move::Load(v).is_io());
        assert!(Move::Store(v).is_io());
        assert!(!Move::Compute(v).is_io());
        assert!(!Move::Delete(v).is_io());
        assert_eq!(Move::Compute(v).paper_name(), "M3");
        assert_eq!(format!("{}", Move::Delete(v)), "M4(n7)");
    }
}
