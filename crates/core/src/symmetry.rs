//! Structural symmetry detection: Weisfeiler–Leman color refinement and
//! twin-class (automorphism-orbit) extraction.
//!
//! Two consumers share this machinery:
//!
//! * the **service cache canonicalizer** (`pebblyn-service`), which
//!   refines to a fixpoint, splits twin classes, and then runs
//!   individualization–refinement to a full canonical labeling; and
//! * the **exact solver's symmetry reduction**, which only needs the
//!   orbits themselves: a twin class — a refined color class whose
//!   members all share one predecessor *set* and one successor *set*
//!   (DWT approx/detail pairs, fan-out replicas, identical reduction
//!   inputs) — is a set of mutually interchangeable nodes, so game
//!   states that differ only by a permutation of pebbles within a twin
//!   class have identical optimal completions and can be collapsed to
//!   one canonical representative before dedup.
//!
//! The refinement starts from the label-free partition
//! `(weight, in-degree, out-degree)` and each round recolors a node by
//! its color plus the sorted multisets of its predecessor and successor
//! colors, densely re-ranked; rounds only ever split classes, so the
//! fixpoint is reached in at most `n` rounds.  Because weight seeds the
//! initial partition, members of one twin class always share a weight —
//! the property that makes within-class pebble permutations
//! budget-preserving automorphisms of the *weighted* game.

use crate::graph::{Cdag, NodeId};

/// Dense-rank arbitrary ordered keys to colors `0..k`; returns the colors
/// and the class count `k`.
pub fn dense_rank<K: Ord>(keys: &[K]) -> (Vec<u32>, usize) {
    let mut sorted: Vec<&K> = keys.iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let colors = keys
        .iter()
        .map(|k| sorted.binary_search(&k).unwrap() as u32)
        .collect();
    (colors, sorted.len())
}

/// Label-free starting partition: `(weight, in-degree, out-degree)`.
pub fn initial_colors(g: &Cdag) -> Vec<u32> {
    let keys: Vec<(u64, usize, usize)> = g
        .nodes()
        .map(|v| (g.weight(v), g.in_degree(v), g.out_degree(v)))
        .collect();
    dense_rank(&keys).0
}

/// WL color refinement to fixpoint.  Each round keys a node by its color
/// and the sorted colors of its neighborhoods; dense re-ranking only ever
/// splits classes, so the loop terminates in at most `n` rounds.
///
/// The neighborhood keys live in one flat CSR buffer reused across
/// rounds — refinement runs in the canonicalizer's inner loop, so
/// per-node allocations there dominated whole-graph canonicalization
/// time.  Nodes sharing a color share degrees (degrees seed the initial
/// partition and refinement only splits), so comparing the merged
/// `preds ++ succs` slice is comparing `(preds, succs)`.
pub fn refine(g: &Cdag, colors: &mut [u32]) {
    let n = g.len();
    if n == 0 {
        return;
    }
    let mut start = Vec::with_capacity(n + 1);
    let mut split = Vec::with_capacity(n);
    let mut total = 0usize;
    for v in g.nodes() {
        start.push(total);
        total += g.in_degree(v);
        split.push(total);
        total += g.out_degree(v);
    }
    start.push(total);
    let mut buf = vec![0u32; total];
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut next = vec![0u32; n];
    let mut classes = count_classes(colors);
    loop {
        for v in g.nodes() {
            let i = v.index();
            for (slot, u) in buf[start[i]..split[i]].iter_mut().zip(g.preds(v)) {
                *slot = colors[u.index()];
            }
            buf[start[i]..split[i]].sort_unstable();
            for (slot, u) in buf[split[i]..start[i + 1]].iter_mut().zip(g.succs(v)) {
                *slot = colors[u.index()];
            }
            buf[split[i]..start[i + 1]].sort_unstable();
        }
        {
            let key = |v: u32| {
                let i = v as usize;
                (colors[i], &buf[start[i]..start[i + 1]])
            };
            order.sort_unstable_by(|&a, &b| key(a).cmp(&key(b)));
            let mut k = 0u32;
            next[order[0] as usize] = 0;
            for w in order.windows(2) {
                if key(w[0]) != key(w[1]) {
                    k += 1;
                }
                next[w[1] as usize] = k;
            }
        }
        let k = next[order[n - 1] as usize] as usize + 1;
        colors.copy_from_slice(&next);
        if k == classes || k == n {
            return;
        }
        classes = k;
    }
}

/// Number of distinct colors in a coloring.
pub fn count_classes(colors: &[u32]) -> usize {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Do all members share one predecessor set and one successor set?
/// (Twins can never be adjacent to each other: an intra-class edge would
/// already make the endpoint neighborhoods differ.)
pub fn is_twin_class(g: &Cdag, members: &[u32]) -> bool {
    let sorted_ids = |xs: &[NodeId]| {
        let mut v: Vec<u32> = xs.iter().map(|u| u.index() as u32).collect();
        v.sort_unstable();
        v
    };
    let p0 = sorted_ids(g.preds(NodeId(members[0])));
    let s0 = sorted_ids(g.succs(NodeId(members[0])));
    members[1..]
        .iter()
        .all(|&m| sorted_ids(g.preds(NodeId(m))) == p0 && sorted_ids(g.succs(NodeId(m))) == s0)
}

/// Split every **twin class** in `colors` (see [`is_twin_class`]),
/// ordering members by node index.  Returns whether anything split;
/// callers re-refine to propagate the new colors.
///
/// Twins are mutually automorphic and their serialized rows are
/// indistinguishable, so any fixed internal order yields the same
/// canonical bytes; splitting them all at once in node-index order
/// removes the dominant symmetry in the paper's workloads without
/// branching (a twin *pair* per DWT level would otherwise cost a
/// `2^levels` search tree).
pub fn split_twin_classes(g: &Cdag, colors: &mut Vec<u32>) -> bool {
    let n = g.len();
    let mut by_class: Vec<u32> = (0..n as u32).collect();
    by_class.sort_unstable_by_key(|&v| colors[v as usize]);
    let mut tiebreak = vec![0u32; n];
    let mut any = false;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && colors[by_class[j] as usize] == colors[by_class[i] as usize] {
            j += 1;
        }
        if j - i > 1 && is_twin_class(g, &by_class[i..j]) {
            any = true;
            // `by_class` ties on node id, so rank-in-class is index order.
            for (r, &v) in by_class[i..j].iter().enumerate() {
                tiebreak[v as usize] = r as u32;
            }
        }
        i = j;
    }
    if any {
        let keys: Vec<(u32, u32)> = colors
            .iter()
            .zip(&tiebreak)
            .map(|(&c, &t)| (c, t))
            .collect();
        *colors = dense_rank(&keys).0;
    }
    any
}

/// The twin classes of `g` with two or more members, each sorted by node
/// index, ordered by their smallest member.
///
/// Refines the WL partition to fixpoint first, so "same color" already
/// implies same weight and isomorphic neighborhood structure; a class
/// additionally passing [`is_twin_class`] is a genuine automorphism
/// orbit whose members are pairwise interchangeable by the transposition
/// automorphism (equal weights make the swap budget-preserving in the
/// weighted game).  Singleton classes are omitted — they admit no
/// nontrivial permutation.
pub fn twin_classes(g: &Cdag) -> Vec<Vec<u32>> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut colors = initial_colors(g);
    refine(g, &mut colors);
    let mut by_class: Vec<u32> = (0..n as u32).collect();
    by_class.sort_unstable_by_key(|&v| (colors[v as usize], v));
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && colors[by_class[j] as usize] == colors[by_class[i] as usize] {
            j += 1;
        }
        if j - i > 1 && is_twin_class(g, &by_class[i..j]) {
            out.push(by_class[i..j].to_vec());
        }
        i = j;
    }
    out.sort_unstable_by_key(|c| c[0]);
    out
}

/// At most this many certified generators are returned: every generator is
/// re-applied per canonicalized search state, so the cap bounds the
/// per-state cost of the WL-orbit lever.
const GENERATOR_CAP: usize = 12;

/// Verify that `perm` is a weight-preserving CDAG automorphism: a bijection
/// on nodes under which every node keeps its weight and every edge maps to
/// an edge (injectivity plus equal out-degrees makes the edge map onto).
///
/// This is the certification step of the WL-orbit lever: candidate
/// generators are *constructed* heuristically from WL color classes, but
/// only permutations passing this exact check are ever used to rewrite
/// search states, so an uncertified candidate costs a little construction
/// time and can never cost correctness.
pub fn is_certified_automorphism(g: &Cdag, perm: &[u32]) -> bool {
    let n = g.len();
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &img in perm {
        let Some(slot) = seen.get_mut(img as usize) else {
            return false;
        };
        if std::mem::replace(slot, true) {
            return false;
        }
    }
    for v in g.nodes() {
        let i = v.index();
        let iv = NodeId(perm[i]);
        if g.weight(v) != g.weight(iv) || g.out_degree(v) != g.out_degree(iv) {
            return false;
        }
        for &s in g.succs(v) {
            let mapped = perm[s.index()];
            if !g.succs(iv).iter().any(|&t| t.index() as u32 == mapped) {
                return false;
            }
        }
    }
    true
}

/// Propagate the seed constraint `a ↦ b` into a full candidate permutation
/// by matching neighborhoods color-by-color (unconstrained nodes stay
/// fixed).  Returns `None` when the constraints conflict; a returned
/// candidate is *not* yet certified.
fn propagate_candidate(g: &Cdag, colors: &[u32], a: u32, b: u32) -> Option<Vec<u32>> {
    const UNSET: u32 = u32::MAX;
    let n = g.len();
    let mut img = vec![UNSET; n];
    let mut pre = vec![UNSET; n];
    let assign = |img: &mut Vec<u32>, pre: &mut Vec<u32>, x: u32, y: u32| -> Option<bool> {
        // Returns Some(true) when newly assigned, Some(false) when already
        // consistently assigned, None on conflict.
        if img[x as usize] != UNSET {
            return (img[x as usize] == y).then_some(false);
        }
        if pre[y as usize] != UNSET {
            return None;
        }
        img[x as usize] = y;
        pre[y as usize] = x;
        Some(true)
    };
    // Seed as a transposition: constraining only `a ↦ b` would leave `b`
    // image-less and the fixpoint fill below would reject the candidate.
    // Non-involutive orbits (pure rotations) simply fail certification,
    // which is the designed fallback.
    assign(&mut img, &mut pre, a, b)?;
    assign(&mut img, &mut pre, b, a)?;
    let mut queue = vec![(a, b), (b, a)];
    while let Some((x, y)) = queue.pop() {
        for dir in 0..2 {
            let (nx, ny) = if dir == 0 {
                (g.preds(NodeId(x)), g.preds(NodeId(y)))
            } else {
                (g.succs(NodeId(x)), g.succs(NodeId(y)))
            };
            if nx.len() != ny.len() {
                return None;
            }
            // Match x's neighbors to y's within each WL color, honoring
            // assignments already forced; leftovers pair in index order.
            let mut xs: Vec<u32> = nx.iter().map(|v| v.index() as u32).collect();
            let mut ys: Vec<u32> = ny.iter().map(|v| v.index() as u32).collect();
            xs.sort_unstable_by_key(|&v| (colors[v as usize], v));
            ys.sort_unstable_by_key(|&v| (colors[v as usize], v));
            if xs
                .iter()
                .zip(&ys)
                .any(|(&u, &v)| colors[u as usize] != colors[v as usize])
            {
                return None; // color multisets differ between the neighborhoods
            }
            let mut i = 0;
            while i < xs.len() {
                let c = colors[xs[i] as usize];
                let mut j = i;
                while j < xs.len() && colors[xs[j] as usize] == c {
                    j += 1;
                }
                // Constrained members first: an already-assigned u must map
                // into this block, and it consumes its partner.
                let block_x = &xs[i..j];
                let block_y = &ys[i..j];
                let mut free_x: Vec<u32> = Vec::new();
                let mut used_y = vec![false; block_y.len()];
                for &u in block_x {
                    if img[u as usize] != UNSET {
                        let v = img[u as usize];
                        match block_y.iter().position(|&w| w == v) {
                            Some(p) if !used_y[p] => used_y[p] = true,
                            _ => return None,
                        }
                    } else {
                        free_x.push(u);
                    }
                }
                let mut free_y: Vec<u32> = block_y
                    .iter()
                    .enumerate()
                    .filter(|&(p, &v)| !used_y[p] && pre[v as usize] == UNSET)
                    .map(|(_, &v)| v)
                    .collect();
                if free_x.len() != free_y.len() {
                    return None;
                }
                free_x.sort_unstable();
                free_y.sort_unstable();
                for (&u, &v) in free_x.iter().zip(&free_y) {
                    if assign(&mut img, &mut pre, u, v)? {
                        queue.push((u, v));
                    }
                }
                i = j;
            }
        }
    }
    // Unconstrained nodes stay fixed; a node claimed as an image by the
    // constrained part cannot also be a fixpoint.
    for v in 0..n as u32 {
        if img[v as usize] == UNSET {
            if pre[v as usize] != UNSET {
                return None;
            }
            img[v as usize] = v;
            pre[v as usize] = v;
        }
    }
    Some(img)
}

/// Certified automorphism generators beyond exact twins: for every WL
/// fixpoint class that is *not* a twin class, seed candidate permutations
/// swapping the smallest member with each other member, propagate the
/// constraint through the neighborhood structure, and keep only candidates
/// that pass the full [`is_certified_automorphism`] check.  Twin classes
/// are skipped — the twin canonicalization already collapses them
/// completely and more cheaply — so the generators returned here are
/// precisely the coupled orbits (parallel chains, reconvergent meshes)
/// that the twin test misses.
///
/// Every generator is a full node permutation (`perm[v]` is `v`'s image).
/// Construction order, and therefore the result, is deterministic; at most
/// [`GENERATOR_CAP`] generators are returned, non-identity and deduplicated.
pub fn certified_generators(g: &Cdag) -> Vec<Vec<u32>> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut colors = initial_colors(g);
    refine(g, &mut colors);
    let mut by_class: Vec<u32> = (0..n as u32).collect();
    by_class.sort_unstable_by_key(|&v| (colors[v as usize], v));
    let mut gens: Vec<Vec<u32>> = Vec::new();
    let mut i = 0;
    while i < n && gens.len() < GENERATOR_CAP {
        let mut j = i;
        while j < n && colors[by_class[j] as usize] == colors[by_class[i] as usize] {
            j += 1;
        }
        let members = &by_class[i..j];
        if members.len() > 1 && !is_twin_class(g, members) {
            for &other in &members[1..] {
                if gens.len() == GENERATOR_CAP {
                    break;
                }
                let Some(perm) = propagate_candidate(g, &colors, members[0], other) else {
                    continue;
                };
                if perm.iter().enumerate().all(|(v, &p)| p == v as u32) {
                    continue;
                }
                if is_certified_automorphism(g, &perm) && !gens.contains(&perm) {
                    gens.push(perm);
                }
            }
        }
        i = j;
    }
    gens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    /// a -> {b, c} -> d diamond: b and c are twins.
    fn diamond() -> Cdag {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        let c = bld.unnamed(1);
        let d = bld.unnamed(1);
        bld.edge(a, b);
        bld.edge(a, c);
        bld.edge(b, d);
        bld.edge(c, d);
        bld.build().unwrap()
    }

    #[test]
    fn diamond_midpoints_are_one_twin_class() {
        let classes = twin_classes(&diamond());
        assert_eq!(classes, vec![vec![1, 2]]);
    }

    #[test]
    fn weight_differences_break_twinhood() {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        let c = bld.unnamed(2); // same structure as b, different weight
        let d = bld.unnamed(1);
        bld.edge(a, b);
        bld.edge(a, c);
        bld.edge(b, d);
        bld.edge(c, d);
        let g = bld.build().unwrap();
        assert!(twin_classes(&g).is_empty());
    }

    #[test]
    fn fanout_replicas_form_one_wide_class() {
        // 1 -> {2..9} -> 10: the eight middle nodes are one orbit.
        let mut bld = CdagBuilder::new();
        let ids: Vec<_> = (0..10).map(|_| bld.unnamed(1)).collect();
        for m in 1..9 {
            bld.edge(ids[0], ids[m]);
            bld.edge(ids[m], ids[9]);
        }
        let g = bld.build().unwrap();
        let classes = twin_classes(&g);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], (1..9).collect::<Vec<u32>>());
    }

    #[test]
    fn same_colors_but_different_neighbors_are_not_twins() {
        // Two disjoint chains a_i -> b_i: heads share a WL class but have
        // different successors, so they are not twins.
        let mut bld = CdagBuilder::new();
        let a0 = bld.unnamed(1);
        let a1 = bld.unnamed(1);
        let b0 = bld.unnamed(2);
        let b1 = bld.unnamed(2);
        bld.edge(a0, b0);
        bld.edge(a1, b1);
        let g = bld.build().unwrap();
        assert!(twin_classes(&g).is_empty());
    }

    #[test]
    fn asymmetric_chain_has_no_classes() {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        bld.edge(a, b);
        assert!(twin_classes(&bld.build().unwrap()).is_empty());
    }

    /// Two disjoint chains a_i -> b_i: the coupled orbit the twin test
    /// misses.  The only nontrivial automorphism swaps both pairs at once.
    fn parallel_chains() -> Cdag {
        let mut bld = CdagBuilder::new();
        let a0 = bld.unnamed(1);
        let a1 = bld.unnamed(1);
        let b0 = bld.unnamed(2);
        let b1 = bld.unnamed(2);
        bld.edge(a0, b0);
        bld.edge(a1, b1);
        bld.build().unwrap()
    }

    #[test]
    fn coupled_chains_yield_a_certified_generator() {
        let gens = certified_generators(&parallel_chains());
        // Both seeds (a0<->a1 and b0<->b1) propagate to the same swap.
        assert_eq!(gens, vec![vec![1, 0, 3, 2]]);
    }

    #[test]
    fn twin_only_orbits_yield_no_extra_generators() {
        // Diamond midpoints are twins; the twin canonicalizer owns them.
        assert!(certified_generators(&diamond()).is_empty());
    }

    #[test]
    fn certification_rejects_non_automorphisms() {
        let g = parallel_chains();
        // Swapping only the heads breaks the edge map: (a1, b0) is no edge.
        assert!(!is_certified_automorphism(&g, &[1, 0, 2, 3]));
        // Weight mismatch: heads and tails differ in weight.
        assert!(!is_certified_automorphism(&g, &[2, 3, 0, 1]));
        // Not a bijection.
        assert!(!is_certified_automorphism(&g, &[0, 0, 2, 3]));
        // Wrong length.
        assert!(!is_certified_automorphism(&g, &[0, 1, 2]));
        // The genuine coupled swap certifies.
        assert!(is_certified_automorphism(&g, &[1, 0, 3, 2]));
    }

    #[test]
    fn reconvergent_mesh_generators_certify() {
        // a -> {b0, b1}, b_i -> c_i, {c0, c1} -> d: the midpoints are two
        // coupled 2-chains, not twins; every returned generator must be a
        // genuine automorphism (re-certify to pin the invariant).
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b0 = bld.unnamed(2);
        let b1 = bld.unnamed(2);
        let c0 = bld.unnamed(1);
        let c1 = bld.unnamed(1);
        let d = bld.unnamed(3);
        bld.edge(a, b0);
        bld.edge(a, b1);
        bld.edge(b0, c0);
        bld.edge(b1, c1);
        bld.edge(c0, d);
        bld.edge(c1, d);
        let g = bld.build().unwrap();
        assert!(twin_classes(&g).is_empty());
        let gens = certified_generators(&g);
        assert!(!gens.is_empty());
        for p in &gens {
            assert!(is_certified_automorphism(&g, p));
        }
        // The coupled swap (b0 b1)(c0 c1) is among them.
        assert!(gens.contains(&vec![0, 2, 1, 4, 3, 5]));
    }

    #[test]
    fn asymmetric_graphs_yield_no_generators() {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(2);
        let c = bld.unnamed(3);
        bld.edge(a, b);
        bld.edge(b, c);
        assert!(certified_generators(&bld.build().unwrap()).is_empty());
    }
}
