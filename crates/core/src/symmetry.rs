//! Structural symmetry detection: Weisfeiler–Leman color refinement and
//! twin-class (automorphism-orbit) extraction.
//!
//! Two consumers share this machinery:
//!
//! * the **service cache canonicalizer** (`pebblyn-service`), which
//!   refines to a fixpoint, splits twin classes, and then runs
//!   individualization–refinement to a full canonical labeling; and
//! * the **exact solver's symmetry reduction**, which only needs the
//!   orbits themselves: a twin class — a refined color class whose
//!   members all share one predecessor *set* and one successor *set*
//!   (DWT approx/detail pairs, fan-out replicas, identical reduction
//!   inputs) — is a set of mutually interchangeable nodes, so game
//!   states that differ only by a permutation of pebbles within a twin
//!   class have identical optimal completions and can be collapsed to
//!   one canonical representative before dedup.
//!
//! The refinement starts from the label-free partition
//! `(weight, in-degree, out-degree)` and each round recolors a node by
//! its color plus the sorted multisets of its predecessor and successor
//! colors, densely re-ranked; rounds only ever split classes, so the
//! fixpoint is reached in at most `n` rounds.  Because weight seeds the
//! initial partition, members of one twin class always share a weight —
//! the property that makes within-class pebble permutations
//! budget-preserving automorphisms of the *weighted* game.

use crate::graph::{Cdag, NodeId};

/// Dense-rank arbitrary ordered keys to colors `0..k`; returns the colors
/// and the class count `k`.
pub fn dense_rank<K: Ord>(keys: &[K]) -> (Vec<u32>, usize) {
    let mut sorted: Vec<&K> = keys.iter().collect();
    sorted.sort_unstable();
    sorted.dedup();
    let colors = keys
        .iter()
        .map(|k| sorted.binary_search(&k).unwrap() as u32)
        .collect();
    (colors, sorted.len())
}

/// Label-free starting partition: `(weight, in-degree, out-degree)`.
pub fn initial_colors(g: &Cdag) -> Vec<u32> {
    let keys: Vec<(u64, usize, usize)> = g
        .nodes()
        .map(|v| (g.weight(v), g.in_degree(v), g.out_degree(v)))
        .collect();
    dense_rank(&keys).0
}

/// WL color refinement to fixpoint.  Each round keys a node by its color
/// and the sorted colors of its neighborhoods; dense re-ranking only ever
/// splits classes, so the loop terminates in at most `n` rounds.
///
/// The neighborhood keys live in one flat CSR buffer reused across
/// rounds — refinement runs in the canonicalizer's inner loop, so
/// per-node allocations there dominated whole-graph canonicalization
/// time.  Nodes sharing a color share degrees (degrees seed the initial
/// partition and refinement only splits), so comparing the merged
/// `preds ++ succs` slice is comparing `(preds, succs)`.
pub fn refine(g: &Cdag, colors: &mut [u32]) {
    let n = g.len();
    if n == 0 {
        return;
    }
    let mut start = Vec::with_capacity(n + 1);
    let mut split = Vec::with_capacity(n);
    let mut total = 0usize;
    for v in g.nodes() {
        start.push(total);
        total += g.in_degree(v);
        split.push(total);
        total += g.out_degree(v);
    }
    start.push(total);
    let mut buf = vec![0u32; total];
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut next = vec![0u32; n];
    let mut classes = count_classes(colors);
    loop {
        for v in g.nodes() {
            let i = v.index();
            for (slot, u) in buf[start[i]..split[i]].iter_mut().zip(g.preds(v)) {
                *slot = colors[u.index()];
            }
            buf[start[i]..split[i]].sort_unstable();
            for (slot, u) in buf[split[i]..start[i + 1]].iter_mut().zip(g.succs(v)) {
                *slot = colors[u.index()];
            }
            buf[split[i]..start[i + 1]].sort_unstable();
        }
        {
            let key = |v: u32| {
                let i = v as usize;
                (colors[i], &buf[start[i]..start[i + 1]])
            };
            order.sort_unstable_by(|&a, &b| key(a).cmp(&key(b)));
            let mut k = 0u32;
            next[order[0] as usize] = 0;
            for w in order.windows(2) {
                if key(w[0]) != key(w[1]) {
                    k += 1;
                }
                next[w[1] as usize] = k;
            }
        }
        let k = next[order[n - 1] as usize] as usize + 1;
        colors.copy_from_slice(&next);
        if k == classes || k == n {
            return;
        }
        classes = k;
    }
}

/// Number of distinct colors in a coloring.
pub fn count_classes(colors: &[u32]) -> usize {
    let mut seen: Vec<u32> = colors.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Do all members share one predecessor set and one successor set?
/// (Twins can never be adjacent to each other: an intra-class edge would
/// already make the endpoint neighborhoods differ.)
pub fn is_twin_class(g: &Cdag, members: &[u32]) -> bool {
    let sorted_ids = |xs: &[NodeId]| {
        let mut v: Vec<u32> = xs.iter().map(|u| u.index() as u32).collect();
        v.sort_unstable();
        v
    };
    let p0 = sorted_ids(g.preds(NodeId(members[0])));
    let s0 = sorted_ids(g.succs(NodeId(members[0])));
    members[1..]
        .iter()
        .all(|&m| sorted_ids(g.preds(NodeId(m))) == p0 && sorted_ids(g.succs(NodeId(m))) == s0)
}

/// Split every **twin class** in `colors` (see [`is_twin_class`]),
/// ordering members by node index.  Returns whether anything split;
/// callers re-refine to propagate the new colors.
///
/// Twins are mutually automorphic and their serialized rows are
/// indistinguishable, so any fixed internal order yields the same
/// canonical bytes; splitting them all at once in node-index order
/// removes the dominant symmetry in the paper's workloads without
/// branching (a twin *pair* per DWT level would otherwise cost a
/// `2^levels` search tree).
pub fn split_twin_classes(g: &Cdag, colors: &mut Vec<u32>) -> bool {
    let n = g.len();
    let mut by_class: Vec<u32> = (0..n as u32).collect();
    by_class.sort_unstable_by_key(|&v| colors[v as usize]);
    let mut tiebreak = vec![0u32; n];
    let mut any = false;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && colors[by_class[j] as usize] == colors[by_class[i] as usize] {
            j += 1;
        }
        if j - i > 1 && is_twin_class(g, &by_class[i..j]) {
            any = true;
            // `by_class` ties on node id, so rank-in-class is index order.
            for (r, &v) in by_class[i..j].iter().enumerate() {
                tiebreak[v as usize] = r as u32;
            }
        }
        i = j;
    }
    if any {
        let keys: Vec<(u32, u32)> = colors
            .iter()
            .zip(&tiebreak)
            .map(|(&c, &t)| (c, t))
            .collect();
        *colors = dense_rank(&keys).0;
    }
    any
}

/// The twin classes of `g` with two or more members, each sorted by node
/// index, ordered by their smallest member.
///
/// Refines the WL partition to fixpoint first, so "same color" already
/// implies same weight and isomorphic neighborhood structure; a class
/// additionally passing [`is_twin_class`] is a genuine automorphism
/// orbit whose members are pairwise interchangeable by the transposition
/// automorphism (equal weights make the swap budget-preserving in the
/// weighted game).  Singleton classes are omitted — they admit no
/// nontrivial permutation.
pub fn twin_classes(g: &Cdag) -> Vec<Vec<u32>> {
    let n = g.len();
    if n == 0 {
        return Vec::new();
    }
    let mut colors = initial_colors(g);
    refine(g, &mut colors);
    let mut by_class: Vec<u32> = (0..n as u32).collect();
    by_class.sort_unstable_by_key(|&v| (colors[v as usize], v));
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && colors[by_class[j] as usize] == colors[by_class[i] as usize] {
            j += 1;
        }
        if j - i > 1 && is_twin_class(g, &by_class[i..j]) {
            out.push(by_class[i..j].to_vec());
        }
        i = j;
    }
    out.sort_unstable_by_key(|c| c[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    /// a -> {b, c} -> d diamond: b and c are twins.
    fn diamond() -> Cdag {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        let c = bld.unnamed(1);
        let d = bld.unnamed(1);
        bld.edge(a, b);
        bld.edge(a, c);
        bld.edge(b, d);
        bld.edge(c, d);
        bld.build().unwrap()
    }

    #[test]
    fn diamond_midpoints_are_one_twin_class() {
        let classes = twin_classes(&diamond());
        assert_eq!(classes, vec![vec![1, 2]]);
    }

    #[test]
    fn weight_differences_break_twinhood() {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        let c = bld.unnamed(2); // same structure as b, different weight
        let d = bld.unnamed(1);
        bld.edge(a, b);
        bld.edge(a, c);
        bld.edge(b, d);
        bld.edge(c, d);
        let g = bld.build().unwrap();
        assert!(twin_classes(&g).is_empty());
    }

    #[test]
    fn fanout_replicas_form_one_wide_class() {
        // 1 -> {2..9} -> 10: the eight middle nodes are one orbit.
        let mut bld = CdagBuilder::new();
        let ids: Vec<_> = (0..10).map(|_| bld.unnamed(1)).collect();
        for m in 1..9 {
            bld.edge(ids[0], ids[m]);
            bld.edge(ids[m], ids[9]);
        }
        let g = bld.build().unwrap();
        let classes = twin_classes(&g);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], (1..9).collect::<Vec<u32>>());
    }

    #[test]
    fn same_colors_but_different_neighbors_are_not_twins() {
        // Two disjoint chains a_i -> b_i: heads share a WL class but have
        // different successors, so they are not twins.
        let mut bld = CdagBuilder::new();
        let a0 = bld.unnamed(1);
        let a1 = bld.unnamed(1);
        let b0 = bld.unnamed(2);
        let b1 = bld.unnamed(2);
        bld.edge(a0, b0);
        bld.edge(a1, b1);
        let g = bld.build().unwrap();
        assert!(twin_classes(&g).is_empty());
    }

    #[test]
    fn asymmetric_chain_has_no_classes() {
        let mut bld = CdagBuilder::new();
        let a = bld.unnamed(1);
        let b = bld.unnamed(1);
        bld.edge(a, b);
        assert!(twin_classes(&bld.build().unwrap()).is_empty());
    }
}
