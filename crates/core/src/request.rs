//! The first-class scheduling request/response surface.
//!
//! Every consumer that asks "schedule this graph within this budget with
//! this algorithm" — the CLI `schedule`/`trace` commands, the engine's
//! sweep series, and the `pebblyn serve` daemon — phrases the question as
//! one [`ScheduleRequest`] and receives one [`ScheduleResponse`], instead
//! of threading `(graph, budget, scheduler-name)` argument triples through
//! every layer.  The executor lives in `pebblyn-schedulers::api` (`execute`
//! / `execute_with`), which resolves the scheduler name against the
//! registry; this module holds only the transport-free data types so any
//! crate can speak the protocol without depending on the algorithms.
//!
//! The graph payload is generic: in-process callers use the
//! workload-erased `AnyGraph` (by value or by reference — the engine
//! evaluates thousands of points against one borrowed graph), while the
//! daemon's wire layer decodes into an owned graph.  Fields are private
//! behind builders/accessors, matching the `OracleConfig` convention, so
//! request knobs can grow without breaking the protocol's users.

use crate::graph::Weight;
use crate::schedule::Schedule;

/// One scheduling question: graph + budget + algorithm.
///
/// `G` is the graph payload (typically `AnyGraph` or `&AnyGraph`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRequest<G> {
    graph: G,
    budget: Weight,
    scheduler: String,
    cost_only: bool,
}

impl<G> ScheduleRequest<G> {
    /// A request for a full schedule of `graph` within `budget` bits from
    /// the scheduler registered under `scheduler`.
    pub fn new(graph: G, budget: Weight, scheduler: impl Into<String>) -> Self {
        ScheduleRequest {
            graph,
            budget,
            scheduler: scheduler.into(),
            cost_only: false,
        }
    }

    /// Ask only for the cost (no move materialization).  Sweeps use this:
    /// DP schedulers answer from their cost recurrences directly.
    pub fn with_cost_only(mut self, yes: bool) -> Self {
        self.cost_only = yes;
        self
    }

    /// The graph payload.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The fast-memory budget in bits.
    pub fn budget(&self) -> Weight {
        self.budget
    }

    /// The registry name of the requested scheduler.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Whether the caller wants only the cost, not the moves.
    pub fn is_cost_only(&self) -> bool {
        self.cost_only
    }

    /// Consume the request, returning the graph payload.
    pub fn into_graph(self) -> G {
        self.graph
    }

    /// Re-wrap the same question around a transformed graph payload
    /// (e.g. borrow an owned graph, or unwrap a decoded one).
    pub fn map_graph<H>(self, f: impl FnOnce(G) -> H) -> ScheduleRequest<H> {
        ScheduleRequest {
            graph: f(self.graph),
            budget: self.budget,
            scheduler: self.scheduler,
            cost_only: self.cost_only,
        }
    }

    /// The same request with the graph borrowed instead of owned.
    pub fn as_ref(&self) -> ScheduleRequest<&G> {
        ScheduleRequest {
            graph: &self.graph,
            budget: self.budget,
            scheduler: self.scheduler.clone(),
            cost_only: self.cost_only,
        }
    }
}

/// A successful answer to a [`ScheduleRequest`].
///
/// Failures are *not* encoded here — executors return
/// `Result<ScheduleResponse, _>` with their own typed error (the registry
/// executor's `ExecuteError`, the daemon's wire status), so success never
/// carries dead error fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResponse {
    scheduler: String,
    cost: Weight,
    schedule: Option<Schedule>,
}

impl ScheduleResponse {
    /// A full answer: the replay-validated cost and the moves.
    pub fn scheduled(scheduler: impl Into<String>, cost: Weight, schedule: Schedule) -> Self {
        ScheduleResponse {
            scheduler: scheduler.into(),
            cost,
            schedule: Some(schedule),
        }
    }

    /// A cost-only answer (the request set
    /// [`ScheduleRequest::with_cost_only`]).
    pub fn cost_only(scheduler: impl Into<String>, cost: Weight) -> Self {
        ScheduleResponse {
            scheduler: scheduler.into(),
            cost,
            schedule: None,
        }
    }

    /// The registry name of the scheduler that answered.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// The schedule's weighted I/O cost in bits (Definition 2.2).
    pub fn cost(&self) -> Weight {
        self.cost
    }

    /// The move sequence (`None` for cost-only answers).
    pub fn schedule(&self) -> Option<&Schedule> {
        self.schedule.as_ref()
    }

    /// Consume the response, returning the move sequence if present.
    pub fn into_schedule(self) -> Option<Schedule> {
        self.schedule
    }

    /// Rewrite the answer's node labels through `f` — how a cache entry
    /// computed on an isomorphic instance is transported back to the
    /// requester's labeling (see `pebblyn-service`).
    pub fn map_nodes(self, f: impl Fn(crate::graph::NodeId) -> crate::graph::NodeId) -> Self {
        ScheduleResponse {
            schedule: self.schedule.map(|s| s.map_nodes(f)),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use crate::moves::Move;

    #[test]
    fn request_builder_round_trips() {
        let req = ScheduleRequest::new("graph", 160, "dwt-opt").with_cost_only(true);
        assert_eq!(*req.graph(), "graph");
        assert_eq!(req.budget(), 160);
        assert_eq!(req.scheduler(), "dwt-opt");
        assert!(req.is_cost_only());
        let borrowed = req.as_ref();
        assert_eq!(**borrowed.graph(), "graph");
        let mapped = req.map_graph(|g| g.len());
        assert_eq!(*mapped.graph(), 5);
        assert_eq!(mapped.scheduler(), "dwt-opt");
        assert!(mapped.is_cost_only());
    }

    #[test]
    fn response_transport_relabels_moves() {
        let sched = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(1))]);
        let resp = ScheduleResponse::scheduled("naive", 16, sched);
        let moved = resp.clone().map_nodes(|v| NodeId(v.0 + 10));
        assert_eq!(moved.cost(), resp.cost());
        assert_eq!(
            moved.schedule().unwrap().moves(),
            vec![Move::Load(NodeId(10)), Move::Compute(NodeId(11))]
        );
        assert_eq!(ScheduleResponse::cost_only("naive", 16).schedule(), None);
    }
}
