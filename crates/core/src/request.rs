//! The first-class scheduling request/response surface.
//!
//! Every consumer that asks "schedule this graph on this machine with
//! this algorithm" — the CLI `schedule`/`trace` commands, the engine's
//! sweep series, and the `pebblyn serve` daemon — phrases the question as
//! one [`ScheduleRequest`] and receives one [`ScheduleResponse`], instead
//! of threading `(graph, machine, scheduler-name)` argument triples through
//! every layer.  The executor lives in `pebblyn-schedulers::api` (`execute`
//! / `execute_with`), which resolves the scheduler name against the
//! registry; this module holds only the transport-free data types so any
//! crate can speak the protocol without depending on the algorithms.
//!
//! The machine is a [`MachineSpec`] — per-processor budgets plus a
//! communication price — not a bare scalar.  `ScheduleRequest::new` takes
//! `impl Into<MachineSpec>`, and `Weight` converts to a uniprocessor spec,
//! so pre-redesign call sites (`ScheduleRequest::new(&g, budget, name)`)
//! compile unchanged and keep their exact semantics: a uniprocessor spec
//! routes through the identical single-processor code path.
//!
//! The graph payload is generic: in-process callers use the
//! workload-erased `AnyGraph` (by value or by reference — the engine
//! evaluates thousands of points against one borrowed graph), while the
//! daemon's wire layer decodes into an owned graph.  Fields are private
//! behind builders/accessors, matching the `OracleConfig` convention, so
//! request knobs can grow without breaking the protocol's users.

use crate::graph::Weight;
use crate::multi::MultiSchedule;
use crate::schedule::Schedule;
use crate::spec::MachineSpec;

/// One scheduling question: graph + machine + algorithm.
///
/// `G` is the graph payload (typically `AnyGraph` or `&AnyGraph`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRequest<G> {
    graph: G,
    machine: MachineSpec,
    scheduler: String,
    cost_only: bool,
}

impl<G> ScheduleRequest<G> {
    /// A request for a full schedule of `graph` on `machine` from the
    /// scheduler registered under `scheduler`.
    ///
    /// `machine` accepts a bare `Weight` budget (the classic
    /// single-processor game) or a full [`MachineSpec`].
    pub fn new(graph: G, machine: impl Into<MachineSpec>, scheduler: impl Into<String>) -> Self {
        ScheduleRequest {
            graph,
            machine: machine.into(),
            scheduler: scheduler.into(),
            cost_only: false,
        }
    }

    /// Ask only for the cost (no move materialization).  Sweeps use this:
    /// DP schedulers answer from their cost recurrences directly.
    pub fn with_cost_only(mut self, yes: bool) -> Self {
        self.cost_only = yes;
        self
    }

    /// The graph payload.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The machine this request schedules onto.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The scalar fast-memory budget in bits: the single budget for a
    /// uniprocessor machine, the aggregate across processors otherwise.
    /// Pre-redesign callers (all uniprocessor) see exactly the budget
    /// they passed in.
    pub fn budget(&self) -> Weight {
        self.machine
            .uniprocessor_budget()
            .unwrap_or_else(|| self.machine.total_budget())
    }

    /// The registry name of the requested scheduler.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// Whether the caller wants only the cost, not the moves.
    pub fn is_cost_only(&self) -> bool {
        self.cost_only
    }

    /// Consume the request, returning the graph payload.
    pub fn into_graph(self) -> G {
        self.graph
    }

    /// Re-wrap the same question around a transformed graph payload
    /// (e.g. borrow an owned graph, or unwrap a decoded one).
    pub fn map_graph<H>(self, f: impl FnOnce(G) -> H) -> ScheduleRequest<H> {
        ScheduleRequest {
            graph: f(self.graph),
            machine: self.machine,
            scheduler: self.scheduler,
            cost_only: self.cost_only,
        }
    }

    /// The same request with the graph borrowed instead of owned.
    pub fn as_ref(&self) -> ScheduleRequest<&G> {
        ScheduleRequest {
            graph: &self.graph,
            machine: self.machine.clone(),
            scheduler: self.scheduler.clone(),
            cost_only: self.cost_only,
        }
    }
}

/// A successful answer to a [`ScheduleRequest`].
///
/// Failures are *not* encoded here — executors return
/// `Result<ScheduleResponse, _>` with their own typed error (the registry
/// executor's `ExecuteError`, the daemon's wire status), so success never
/// carries dead error fields.
///
/// Single-processor answers carry a [`Schedule`]; multiprocessor answers
/// carry a [`MultiSchedule`] plus the makespan and communication-cost
/// metrics (which default to `None` for single-processor responses, so
/// nothing changes for pre-redesign consumers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleResponse {
    scheduler: String,
    cost: Weight,
    schedule: Option<Schedule>,
    multi_schedule: Option<MultiSchedule>,
    makespan: Option<Weight>,
    comm_cost: Option<Weight>,
}

impl ScheduleResponse {
    /// A full answer: the replay-validated cost and the moves.
    pub fn scheduled(scheduler: impl Into<String>, cost: Weight, schedule: Schedule) -> Self {
        ScheduleResponse {
            scheduler: scheduler.into(),
            cost,
            schedule: Some(schedule),
            multi_schedule: None,
            makespan: None,
            comm_cost: None,
        }
    }

    /// A cost-only answer (the request set
    /// [`ScheduleRequest::with_cost_only`]).
    pub fn cost_only(scheduler: impl Into<String>, cost: Weight) -> Self {
        ScheduleResponse {
            scheduler: scheduler.into(),
            cost,
            schedule: None,
            multi_schedule: None,
            makespan: None,
            comm_cost: None,
        }
    }

    /// A full multiprocessor answer.  `cost` is the combined I/O
    /// objective (slow-memory traffic plus priced communication),
    /// `comm_cost` its communication component, `makespan` the maximum
    /// per-processor finish time.
    pub fn multi_scheduled(
        scheduler: impl Into<String>,
        cost: Weight,
        makespan: Weight,
        comm_cost: Weight,
        schedule: MultiSchedule,
    ) -> Self {
        ScheduleResponse {
            scheduler: scheduler.into(),
            cost,
            schedule: None,
            multi_schedule: Some(schedule),
            makespan: Some(makespan),
            comm_cost: Some(comm_cost),
        }
    }

    /// Attach multiprocessor metrics to a cost-only answer.
    pub fn with_multi_metrics(mut self, makespan: Weight, comm_cost: Weight) -> Self {
        self.makespan = Some(makespan);
        self.comm_cost = Some(comm_cost);
        self
    }

    /// The registry name of the scheduler that answered.
    pub fn scheduler(&self) -> &str {
        &self.scheduler
    }

    /// The schedule's weighted I/O cost in bits (Definition 2.2; for
    /// multiprocessor answers, including priced communication).
    pub fn cost(&self) -> Weight {
        self.cost
    }

    /// The single-processor move sequence (`None` for cost-only and
    /// multiprocessor answers).
    pub fn schedule(&self) -> Option<&Schedule> {
        self.schedule.as_ref()
    }

    /// The multiprocessor move sequence (`None` for single-processor and
    /// cost-only answers).
    pub fn multi_schedule(&self) -> Option<&MultiSchedule> {
        self.multi_schedule.as_ref()
    }

    /// Maximum per-processor finish time; `None` for single-processor
    /// answers.
    pub fn makespan(&self) -> Option<Weight> {
        self.makespan
    }

    /// Priced communication traffic; `None` for single-processor answers.
    pub fn comm_cost(&self) -> Option<Weight> {
        self.comm_cost
    }

    /// Consume the response, returning the single-processor move sequence
    /// if present.
    pub fn into_schedule(self) -> Option<Schedule> {
        self.schedule
    }

    /// Consume the response, returning the multiprocessor move sequence
    /// if present.
    pub fn into_multi_schedule(self) -> Option<MultiSchedule> {
        self.multi_schedule
    }

    /// Rewrite the answer's node labels through `f` — how a cache entry
    /// computed on an isomorphic instance is transported back to the
    /// requester's labeling (see `pebblyn-service`).
    pub fn map_nodes(self, f: impl Fn(crate::graph::NodeId) -> crate::graph::NodeId) -> Self {
        ScheduleResponse {
            schedule: self.schedule.map(|s| s.map_nodes(&f)),
            multi_schedule: self.multi_schedule.map(|s| s.map_nodes(&f)),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;
    use crate::moves::Move;
    use crate::multi::MultiMove;

    #[test]
    fn request_builder_round_trips() {
        let req = ScheduleRequest::new("graph", 160, "dwt-opt").with_cost_only(true);
        assert_eq!(*req.graph(), "graph");
        assert_eq!(req.budget(), 160);
        assert!(req.machine().is_uniprocessor());
        assert_eq!(req.machine().uniprocessor_budget(), Some(160));
        assert_eq!(req.scheduler(), "dwt-opt");
        assert!(req.is_cost_only());
        let borrowed = req.as_ref();
        assert_eq!(**borrowed.graph(), "graph");
        let mapped = req.map_graph(|g| g.len());
        assert_eq!(*mapped.graph(), 5);
        assert_eq!(mapped.scheduler(), "dwt-opt");
        assert!(mapped.is_cost_only());
    }

    #[test]
    fn request_accepts_full_machine_specs() {
        let spec = MachineSpec::symmetric(4, 64).with_comm_price(3);
        let req = ScheduleRequest::new("graph", spec.clone(), "partition-belady");
        assert_eq!(req.machine(), &spec);
        assert_eq!(req.budget(), 256); // aggregate for multiprocessor
        assert_eq!(req.as_ref().machine(), &spec);
    }

    #[test]
    fn response_transport_relabels_moves() {
        let sched = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(1))]);
        let resp = ScheduleResponse::scheduled("naive", 16, sched);
        assert_eq!(resp.makespan(), None);
        assert_eq!(resp.comm_cost(), None);
        let moved = resp.clone().map_nodes(|v| NodeId(v.0 + 10));
        assert_eq!(moved.cost(), resp.cost());
        assert_eq!(
            moved.schedule().unwrap().moves(),
            vec![Move::Load(NodeId(10)), Move::Compute(NodeId(11))]
        );
        assert_eq!(ScheduleResponse::cost_only("naive", 16).schedule(), None);
    }

    #[test]
    fn multi_response_carries_metrics_and_relabels() {
        let ms = MultiSchedule::from_moves(vec![
            MultiMove::Load {
                proc: 0,
                node: NodeId(0),
            },
            MultiMove::Comm {
                from: 0,
                to: 1,
                node: NodeId(0),
            },
        ]);
        let resp = ScheduleResponse::multi_scheduled("partition-belady", 96, 112, 32, ms);
        assert_eq!(resp.cost(), 96);
        assert_eq!(resp.makespan(), Some(112));
        assert_eq!(resp.comm_cost(), Some(32));
        assert!(resp.schedule().is_none());
        let moved = resp.map_nodes(|v| NodeId(v.0 + 5));
        assert_eq!(
            moved.multi_schedule().unwrap().moves()[1],
            MultiMove::Comm {
                from: 0,
                to: 1,
                node: NodeId(5),
            }
        );
    }
}
