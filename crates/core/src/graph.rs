//! Node-weighted computational DAGs (`G = (V, E, w, B)` minus the budget,
//! which is supplied per-schedule).

use crate::error::GraphError;
use std::fmt;

/// Identifier of a CDAG node: a dense index into the graph's node arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in the graph's dense node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node weight / budget type: a number of **bits**.
///
/// See the crate docs for why weights are integral.
pub type Weight = u64;

/// An immutable node-weighted computational DAG.
///
/// Nodes are identified by dense [`NodeId`]s.  Edges are directed from a
/// predecessor (operand) to the node that consumes it.  Source nodes
/// (in-degree 0) are the graph's inputs `A(G)`; sink nodes (out-degree 0) are
/// its outputs `Z(G)`.  Construction (via [`CdagBuilder`]) guarantees
/// acyclicity, positive weights, and `A(G) ∩ Z(G) = ∅`.
///
/// Adjacency is stored in CSR (compressed sparse row) form: one flat
/// `NodeId` array per direction plus an `n + 1` offset array, so
/// [`preds`](Cdag::preds)/[`succs`](Cdag::succs) are O(1) slice views with
/// no per-node allocation and traversals walk contiguous memory.  Per-node
/// neighbor order equals edge insertion order, exactly as the previous
/// `Vec<Vec<NodeId>>` layout produced.  Sources, sinks, and the edge count
/// are precomputed at build time.
#[derive(Clone, PartialEq, Eq)]
pub struct Cdag {
    weights: Vec<Weight>,
    names: Vec<String>,
    topo: Vec<NodeId>,
    /// CSR offsets into `pred_adj`; `preds(v) = pred_adj[pred_off[v]..pred_off[v+1]]`.
    pred_off: Vec<u32>,
    pred_adj: Vec<NodeId>,
    /// CSR offsets into `succ_adj`; `succs(v) = succ_adj[succ_off[v]..succ_off[v+1]]`.
    succ_off: Vec<u32>,
    succ_adj: Vec<NodeId>,
    sources: Vec<NodeId>,
    sinks: Vec<NodeId>,
}

impl fmt::Debug for Cdag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cdag")
            .field("nodes", &self.len())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Cdag {
    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total number of directed edges (cached at construction).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.pred_adj.len()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// The weight `w_v` of a node.
    #[inline]
    pub fn weight(&self, v: NodeId) -> Weight {
        self.weights[v.index()]
    }

    /// Immediate predecessors `H(v)` (operands of `v`).
    #[inline]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        &self.pred_adj[self.pred_off[v.index()] as usize..self.pred_off[v.index() + 1] as usize]
    }

    /// Immediate successors (consumers of `v`).
    #[inline]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        &self.succ_adj[self.succ_off[v.index()] as usize..self.succ_off[v.index() + 1] as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.pred_off[v.index() + 1] - self.pred_off[v.index()]) as usize
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.succ_off[v.index() + 1] - self.succ_off[v.index()]) as usize
    }

    /// `true` iff `v` is a source (input) node, i.e. `v ∈ A(G)`.
    #[inline]
    pub fn is_source(&self, v: NodeId) -> bool {
        self.in_degree(v) == 0
    }

    /// `true` iff `v` is a sink (output) node, i.e. `v ∈ Z(G)`.
    #[inline]
    pub fn is_sink(&self, v: NodeId) -> bool {
        self.out_degree(v) == 0
    }

    /// All source nodes `A(G)` in index order (cached at construction).
    #[inline]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// All sink nodes `Z(G)` in index order (cached at construction).
    #[inline]
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// A topological ordering of the nodes (computed at construction).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Sum of all node weights.
    pub fn total_weight(&self) -> Weight {
        self.weights.iter().sum()
    }

    /// The human-readable name of a node (empty string when unnamed).
    ///
    /// Graphs built with [`Cdag::from_csr`] carry no name table at all, so
    /// out-of-range lookups fall back to the empty string rather than
    /// paying one heap `String` per node at million-node scale.
    #[inline]
    pub fn name(&self, v: NodeId) -> &str {
        self.names.get(v.index()).map_or("", String::as_str)
    }

    /// Greatest common divisor of all node weights.
    ///
    /// Useful as a step size when sweeping budgets: every interesting budget
    /// is a multiple of this value plus the minimum feasible budget.
    pub fn weight_gcd(&self) -> Weight {
        self.weights.iter().copied().fold(0, gcd)
    }

    /// Partition the nodes into weakly-connected components.
    ///
    /// Schedules for independent components never benefit from interleaving
    /// (Lemma 3.3's first observation), so schedulers process components one
    /// at a time.
    pub fn weakly_connected_components(&self) -> Vec<Vec<NodeId>> {
        let n = self.len();
        let mut comp = vec![usize::MAX; n];
        let mut count = 0usize;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            stack.push(NodeId(start as u32));
            comp[start] = count;
            while let Some(v) = stack.pop() {
                for &u in self.preds(v).iter().chain(self.succs(v)) {
                    if comp[u.index()] == usize::MAX {
                        comp[u.index()] = count;
                        stack.push(u);
                    }
                }
            }
            count += 1;
        }
        let mut out = vec![Vec::new(); count];
        for v in self.nodes() {
            out[comp[v.index()]].push(v);
        }
        out
    }

    /// Extract the subgraph induced by a *closed* node set (no edges may
    /// cross the boundary — e.g. a weakly-connected component).
    ///
    /// Returns the subgraph and the mapping from subgraph node ids back to
    /// the original ids (`mapping[sub.index()] == original`).
    ///
    /// # Panics
    ///
    /// Panics if an edge crosses the boundary of `nodes`, or if `nodes`
    /// contains duplicates.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Cdag, Vec<NodeId>) {
        let mut sub_id = vec![u32::MAX; self.len()];
        for (i, &v) in nodes.iter().enumerate() {
            assert!(sub_id[v.index()] == u32::MAX, "duplicate node {v}");
            sub_id[v.index()] = i as u32;
        }
        let mut b = CdagBuilder::with_capacity(nodes.len());
        for &v in nodes {
            b.node(self.weight(v), self.name(v).to_string());
        }
        for &v in nodes {
            for &p in self.preds(v) {
                assert!(
                    sub_id[p.index()] != u32::MAX,
                    "edge {p} -> {v} crosses the subgraph boundary"
                );
                b.edge(NodeId(sub_id[p.index()]), NodeId(sub_id[v.index()]));
            }
            for &s in self.succs(v) {
                assert!(
                    sub_id[s.index()] != u32::MAX,
                    "edge {v} -> {s} crosses the subgraph boundary"
                );
            }
        }
        let sub = b.build().expect("closed induced subgraph is valid");
        (sub, nodes.to_vec())
    }

    /// Build the disjoint union of several CDAGs.
    ///
    /// Returns the union and, for each part, the node-id offset of its
    /// first node (part `i`'s node `v` becomes `NodeId(offsets[i] + v.0)`).
    pub fn disjoint_union(parts: &[&Cdag]) -> (Cdag, Vec<u32>) {
        let total = parts.iter().map(|g| g.len()).sum();
        let mut b = CdagBuilder::with_capacity(total);
        let mut offsets = Vec::with_capacity(parts.len());
        let mut base = 0u32;
        for g in parts {
            offsets.push(base);
            for v in g.nodes() {
                b.node(g.weight(v), g.name(v).to_string());
            }
            for v in g.nodes() {
                for &p in g.preds(v) {
                    b.edge(NodeId(base + p.0), NodeId(base + v.0));
                }
            }
            base += g.len() as u32;
        }
        let union = b.build().expect("disjoint union of valid graphs is valid");
        (union, offsets)
    }

    /// The set of all (not necessarily immediate) predecessors of `v`,
    /// returned as a boolean membership vector indexed by node.
    pub fn ancestors(&self, v: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = self.preds(v).to_vec();
        while let Some(u) = stack.pop() {
            if !seen[u.index()] {
                seen[u.index()] = true;
                stack.extend_from_slice(self.preds(u));
            }
        }
        seen
    }

    /// `true` iff every node has out-degree ≤ 1 and exactly one sink exists:
    /// the shape required of k-ary tree graphs (Definition 3.6).
    pub fn is_in_tree(&self) -> bool {
        let mut sinks = 0usize;
        for v in self.nodes() {
            match self.out_degree(v) {
                0 => sinks += 1,
                1 => {}
                _ => return false,
            }
        }
        sinks == 1
    }

    /// Maximum in-degree across all nodes (the `k` of a k-ary tree).
    pub fn max_in_degree(&self) -> usize {
        self.nodes().map(|v| self.in_degree(v)).max().unwrap_or(0)
    }

    /// Build a [`Cdag`] directly from predecessor-CSR arrays, skipping the
    /// per-edge bookkeeping of [`CdagBuilder`].
    ///
    /// `pred_off` must have `weights.len() + 1` entries with `pred_off[0] ==
    /// 0`, non-decreasing offsets, and `pred_off[n] == pred_adj.len()`;
    /// `preds(v)` is then `pred_adj[pred_off[v]..pred_off[v+1]]`.  Nodes are
    /// unnamed ([`Cdag::name`] returns `""`).  This is the million-node
    /// entry point: it allocates only the successor CSR and the topological
    /// order on top of the caller's arrays, and duplicate detection uses an
    /// O(V) stamp array instead of a hash set, so the whole construction is
    /// O(V + E).
    ///
    /// # Errors
    ///
    /// The same structural invariants as [`CdagBuilder::build`]:
    /// [`GraphError::Empty`], [`GraphError::ZeroWeight`],
    /// [`GraphError::BadEdge`] (out-of-range endpoint or self-loop),
    /// [`GraphError::DuplicateEdge`] (repeated predecessor of one node),
    /// [`GraphError::Cycle`], and [`GraphError::SourceIsSink`].
    ///
    /// # Panics
    ///
    /// Panics if the CSR arrays are malformed (wrong `pred_off` length,
    /// non-zero first offset, decreasing offsets, or a final offset that
    /// disagrees with `pred_adj.len()`) — those are caller bugs, not data
    /// errors.
    pub fn from_csr(
        weights: Vec<Weight>,
        pred_off: Vec<u32>,
        pred_adj: Vec<NodeId>,
    ) -> Result<Cdag, GraphError> {
        let n = weights.len();
        let m = pred_adj.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        assert_eq!(pred_off.len(), n + 1, "pred_off must have n + 1 entries");
        assert_eq!(pred_off[0], 0, "pred_off must start at 0");
        assert!(
            pred_off.windows(2).all(|w| w[0] <= w[1]),
            "pred_off must be non-decreasing"
        );
        assert_eq!(
            pred_off[n] as usize, m,
            "pred_off must end at pred_adj.len()"
        );
        if let Some(v) = weights.iter().position(|&w| w == 0) {
            return Err(GraphError::ZeroWeight(NodeId(v as u32)));
        }

        // Endpoint / self-loop / duplicate checks with a stamp array: node v
        // stamps each predecessor slot with v + 1, so a repeat within one
        // node's slice is caught in O(1) without hashing.
        let mut stamp = vec![0u32; n];
        for v in 0..n {
            let to = NodeId(v as u32);
            for &p in &pred_adj[pred_off[v] as usize..pred_off[v + 1] as usize] {
                if p.index() >= n || p == to {
                    return Err(GraphError::BadEdge(p, to));
                }
                if stamp[p.index()] == v as u32 + 1 {
                    return Err(GraphError::DuplicateEdge(p, to));
                }
                stamp[p.index()] = v as u32 + 1;
            }
        }

        // Successor CSR by stable counting sort over the predecessor lists.
        let mut succ_off = vec![0u32; n + 1];
        for &p in &pred_adj {
            succ_off[p.index() + 1] += 1;
        }
        for v in 0..n {
            succ_off[v + 1] += succ_off[v];
        }
        let mut succ_adj = vec![NodeId(0); m];
        let mut succ_cur: Vec<u32> = succ_off[..n].to_vec();
        for v in 0..n {
            for &p in &pred_adj[pred_off[v] as usize..pred_off[v + 1] as usize] {
                succ_adj[succ_cur[p.index()] as usize] = NodeId(v as u32);
                succ_cur[p.index()] += 1;
            }
        }

        // Kahn's algorithm: topological sort + cycle detection.
        let mut indeg: Vec<u32> = (0..n).map(|v| pred_off[v + 1] - pred_off[v]).collect();
        let mut queue: std::collections::VecDeque<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            for &u in &succ_adj[succ_off[v.index()] as usize..succ_off[v.index() + 1] as usize] {
                indeg[u.index()] -= 1;
                if indeg[u.index()] == 0 {
                    queue.push_back(u);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }

        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        for v in 0..n {
            let is_source = pred_off[v] == pred_off[v + 1];
            let is_sink = succ_off[v] == succ_off[v + 1];
            if is_source && is_sink {
                return Err(GraphError::SourceIsSink(NodeId(v as u32)));
            }
            if is_source {
                sources.push(NodeId(v as u32));
            }
            if is_sink {
                sinks.push(NodeId(v as u32));
            }
        }

        Ok(Cdag {
            weights,
            names: Vec::new(),
            topo,
            pred_off,
            pred_adj,
            succ_off,
            succ_adj,
            sources,
            sinks,
        })
    }

    /// Render the graph in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph cdag {\n  rankdir=LR;\n");
        for v in self.nodes() {
            let label = if self.name(v).is_empty() {
                format!("{v} (w={})", self.weight(v))
            } else {
                format!("{} (w={})", self.name(v), self.weight(v))
            };
            let shape = if self.is_source(v) {
                "box"
            } else if self.is_sink(v) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(s, "  {} [label=\"{label}\", shape={shape}];", v.0);
        }
        for v in self.nodes() {
            for &u in self.preds(v) {
                let _ = writeln!(s, "  {} -> {};", u.0, v.0);
            }
        }
        s.push_str("}\n");
        s
    }
}

fn gcd(a: Weight, b: Weight) -> Weight {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Incremental builder for [`Cdag`]s.
///
/// ```
/// use pebblyn_core::CdagBuilder;
/// let mut b = CdagBuilder::new();
/// let x = b.node(16, "x");
/// let y = b.node(16, "y");
/// let s = b.node(16, "x+y");
/// b.edge(x, s);
/// b.edge(y, s);
/// let g = b.build().unwrap();
/// assert_eq!(g.sources(), vec![x, y]);
/// assert_eq!(g.sinks(), vec![s]);
/// ```
#[derive(Default, Debug, Clone)]
pub struct CdagBuilder {
    weights: Vec<Weight>,
    names: Vec<String>,
    edges: Vec<(NodeId, NodeId)>,
}

impl CdagBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            weights: Vec::with_capacity(nodes),
            names: Vec::with_capacity(nodes),
            edges: Vec::new(),
        }
    }

    /// Add a node with the given weight (in bits) and name.
    pub fn node(&mut self, weight: Weight, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.weights.len() as u32);
        self.weights.push(weight);
        self.names.push(name.into());
        id
    }

    /// Add an unnamed node with the given weight.
    pub fn unnamed(&mut self, weight: Weight) -> NodeId {
        self.node(weight, String::new())
    }

    /// Add the directed edge `from → to` (`from` is an operand of `to`).
    pub fn edge(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from, to));
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Finish construction, verifying all structural invariants.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] — no nodes,
    /// * [`GraphError::ZeroWeight`] — some `w_v = 0` (weights must be `> 0`),
    /// * [`GraphError::BadEdge`] — an edge endpoint is out of range or a
    ///   self-loop,
    /// * [`GraphError::DuplicateEdge`] — an edge is listed twice,
    /// * [`GraphError::Cycle`] — the edge set is not acyclic,
    /// * [`GraphError::SourceIsSink`] — an isolated node would be both input
    ///   and output, violating the model's `A(G) ∩ Z(G) = ∅` assumption.
    pub fn build(self) -> Result<Cdag, GraphError> {
        let n = self.weights.len();
        let m = self.edges.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if let Some(v) = self.weights.iter().position(|&w| w == 0) {
            return Err(GraphError::ZeroWeight(NodeId(v as u32)));
        }
        assert!(m <= u32::MAX as usize, "edge count exceeds u32 CSR offsets");
        let mut seen = std::collections::HashSet::with_capacity(m);
        for &(a, b) in &self.edges {
            if a.index() >= n || b.index() >= n || a == b {
                return Err(GraphError::BadEdge(a, b));
            }
            if !seen.insert((a, b)) {
                return Err(GraphError::DuplicateEdge(a, b));
            }
        }

        // CSR construction via stable counting sort: count per-node degrees,
        // prefix-sum into offsets, then scatter edges in insertion order so
        // each node's neighbor slice keeps the order edges were added in.
        let mut pred_off = vec![0u32; n + 1];
        let mut succ_off = vec![0u32; n + 1];
        for &(a, b) in &self.edges {
            pred_off[b.index() + 1] += 1;
            succ_off[a.index() + 1] += 1;
        }
        for v in 0..n {
            pred_off[v + 1] += pred_off[v];
            succ_off[v + 1] += succ_off[v];
        }
        let mut pred_adj = vec![NodeId(0); m];
        let mut succ_adj = vec![NodeId(0); m];
        let mut pred_cur: Vec<u32> = pred_off[..n].to_vec();
        let mut succ_cur: Vec<u32> = succ_off[..n].to_vec();
        for &(a, b) in &self.edges {
            pred_adj[pred_cur[b.index()] as usize] = a;
            pred_cur[b.index()] += 1;
            succ_adj[succ_cur[a.index()] as usize] = b;
            succ_cur[a.index()] += 1;
        }

        // Kahn's algorithm: topological sort + cycle detection.
        let succs = |v: usize| &succ_adj[succ_off[v] as usize..succ_off[v + 1] as usize];
        let mut indeg: Vec<u32> = (0..n).map(|v| pred_off[v + 1] - pred_off[v]).collect();
        let mut queue: std::collections::VecDeque<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop_front() {
            topo.push(v);
            for &u in succs(v.index()) {
                indeg[u.index()] -= 1;
                if indeg[u.index()] == 0 {
                    queue.push_back(u);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }

        let mut sources = Vec::new();
        let mut sinks = Vec::new();
        for v in 0..n {
            let is_source = pred_off[v] == pred_off[v + 1];
            let is_sink = succ_off[v] == succ_off[v + 1];
            if is_source && is_sink {
                return Err(GraphError::SourceIsSink(NodeId(v as u32)));
            }
            if is_source {
                sources.push(NodeId(v as u32));
            }
            if is_sink {
                sinks.push(NodeId(v as u32));
            }
        }

        Ok(Cdag {
            weights: self.weights,
            names: self.names,
            topo,
            pred_off,
            pred_adj,
            succ_off,
            succ_adj,
            sources,
            sinks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cdag {
        // a   b
        //  \ / \
        //   c   d
        //    \ /
        //     e
        let mut b = CdagBuilder::new();
        let a = b.node(16, "a");
        let bb = b.node(16, "b");
        let c = b.node(32, "c");
        let d = b.node(32, "d");
        let e = b.node(16, "e");
        b.edge(a, c);
        b.edge(bb, c);
        b.edge(bb, d);
        b.edge(c, e);
        b.edge(d, e);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_reports_structure() {
        let g = diamond();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.sources(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(g.sinks(), vec![NodeId(4)]);
        assert_eq!(g.total_weight(), 16 + 16 + 32 + 32 + 16);
        assert_eq!(g.weight_gcd(), 16);
        assert_eq!(g.in_degree(NodeId(4)), 2);
        assert_eq!(g.out_degree(NodeId(1)), 2);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, &v) in g.topo_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for v in g.nodes() {
            for &u in g.preds(v) {
                assert!(pos[u.index()] < pos[v.index()]);
            }
        }
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(CdagBuilder::new().build(), Err(GraphError::Empty)));
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = CdagBuilder::new();
        let x = b.node(0, "x");
        let y = b.node(1, "y");
        b.edge(x, y);
        assert!(matches!(b.build(), Err(GraphError::ZeroWeight(_))));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = CdagBuilder::new();
        let x = b.node(1, "x");
        b.edge(x, x);
        assert!(matches!(b.build(), Err(GraphError::BadEdge(_, _))));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = CdagBuilder::new();
        let x = b.node(1, "x");
        let y = b.node(1, "y");
        b.edge(x, y);
        b.edge(x, y);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge(_, _))));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = CdagBuilder::new();
        let x = b.node(1, "x");
        let y = b.node(1, "y");
        let z = b.node(1, "z");
        b.edge(x, y);
        b.edge(y, z);
        b.edge(z, x);
        assert!(matches!(b.build(), Err(GraphError::Cycle)));
    }

    #[test]
    fn rejects_isolated_node() {
        let mut b = CdagBuilder::new();
        let x = b.node(1, "x");
        let y = b.node(1, "y");
        b.edge(x, y);
        b.node(1, "lonely");
        assert!(matches!(b.build(), Err(GraphError::SourceIsSink(_))));
    }

    #[test]
    fn components_split_disconnected_graphs() {
        let mut b = CdagBuilder::new();
        let a = b.node(1, "a");
        let c = b.node(1, "c");
        b.edge(a, c);
        let d = b.node(1, "d");
        let e = b.node(1, "e");
        b.edge(d, e);
        let g = b.build().unwrap();
        let comps = g.weakly_connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[1], vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn ancestors_are_transitive() {
        let g = diamond();
        let anc = g.ancestors(NodeId(4)); // e
        assert!(anc[0] && anc[1] && anc[2] && anc[3]);
        assert!(!anc[4]);
        let anc_c = g.ancestors(NodeId(2)); // c
        assert!(anc_c[0] && anc_c[1]);
        assert!(!anc_c[3]);
    }

    #[test]
    fn tree_detection() {
        let mut b = CdagBuilder::new();
        let l1 = b.node(1, "l1");
        let l2 = b.node(1, "l2");
        let r = b.node(1, "r");
        b.edge(l1, r);
        b.edge(l2, r);
        let g = b.build().unwrap();
        assert!(g.is_in_tree());
        assert_eq!(g.max_in_degree(), 2);
        assert!(!diamond().is_in_tree()); // b has out-degree 2
    }

    #[test]
    fn induced_subgraph_of_component() {
        let mut b = CdagBuilder::new();
        let a = b.node(2, "a");
        let c = b.node(3, "c");
        b.edge(a, c);
        let d = b.node(5, "d");
        let e = b.node(7, "e");
        b.edge(d, e);
        let g = b.build().unwrap();
        let comps = g.weakly_connected_components();
        let (sub, map) = g.induced_subgraph(&comps[1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.weight(NodeId(0)), 5);
        assert_eq!(sub.weight(NodeId(1)), 7);
        assert_eq!(map, vec![NodeId(2), NodeId(3)]);
        assert_eq!(sub.preds(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "crosses the subgraph boundary")]
    fn induced_subgraph_rejects_open_sets() {
        let g = diamond();
        g.induced_subgraph(&[NodeId(0), NodeId(2)]); // c's parent b missing
    }

    #[test]
    fn disjoint_union_concatenates() {
        let mut b1 = CdagBuilder::new();
        let x = b1.node(1, "x");
        let y = b1.node(2, "y");
        b1.edge(x, y);
        let g1 = b1.build().unwrap();
        let (union, offsets) = Cdag::disjoint_union(&[&g1, &g1, &g1]);
        assert_eq!(union.len(), 6);
        assert_eq!(offsets, vec![0, 2, 4]);
        assert_eq!(union.weakly_connected_components().len(), 3);
        assert_eq!(union.weight(NodeId(4)), 1);
        assert_eq!(union.preds(NodeId(5)), &[NodeId(4)]);
    }

    #[test]
    fn from_csr_matches_builder() {
        // Same diamond as `diamond()`, expressed as predecessor CSR.
        let weights = vec![16, 16, 32, 32, 16];
        let pred_off = vec![0, 0, 0, 2, 3, 5];
        let pred_adj = vec![NodeId(0), NodeId(1), NodeId(1), NodeId(2), NodeId(3)];
        let g = Cdag::from_csr(weights, pred_off, pred_adj).unwrap();
        let b = diamond();
        assert_eq!(g.len(), b.len());
        assert_eq!(g.edge_count(), b.edge_count());
        assert_eq!(g.sources(), b.sources());
        assert_eq!(g.sinks(), b.sinks());
        assert_eq!(g.topo_order(), b.topo_order());
        for v in g.nodes() {
            assert_eq!(g.preds(v), b.preds(v));
            assert_eq!(g.succs(v), b.succs(v));
            assert_eq!(g.name(v), ""); // no name table
        }
    }

    #[test]
    fn from_csr_rejects_structural_errors() {
        let edge = |off: Vec<u32>, adj: Vec<NodeId>| Cdag::from_csr(vec![1, 1], off, adj);
        assert!(matches!(
            Cdag::from_csr(vec![], vec![0], vec![]),
            Err(GraphError::Empty)
        ));
        assert!(matches!(
            Cdag::from_csr(vec![1, 0], vec![0, 0, 1], vec![NodeId(0)]),
            Err(GraphError::ZeroWeight(NodeId(1)))
        ));
        assert!(matches!(
            edge(vec![0, 0, 1], vec![NodeId(7)]),
            Err(GraphError::BadEdge(_, _))
        ));
        assert!(matches!(
            edge(vec![0, 0, 1], vec![NodeId(1)]),
            Err(GraphError::BadEdge(_, _)) // self-loop
        ));
        assert!(matches!(
            edge(vec![0, 0, 2], vec![NodeId(0), NodeId(0)]),
            Err(GraphError::DuplicateEdge(_, _))
        ));
        // 0 -> 1 and 1 -> 0 is a 2-cycle.
        assert!(matches!(
            edge(vec![0, 1, 2], vec![NodeId(1), NodeId(0)]),
            Err(GraphError::Cycle)
        ));
        assert!(matches!(
            Cdag::from_csr(vec![1, 1, 1], vec![0, 0, 1, 1], vec![NodeId(0)]),
            Err(GraphError::SourceIsSink(NodeId(2)))
        ));
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = diamond();
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("0 -> 2;"));
        assert!(dot.contains("a (w=16)"));
    }
}
