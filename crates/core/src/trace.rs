//! Fast-memory occupancy traces — see *where* a schedule's peak lives.
//!
//! Memory designers don't just need the peak (Definition 2.6 aside): the
//! shape of the occupancy curve shows whether a schedule could share its
//! SRAM with other tasks, how long the peak persists, and where spill
//! pressure concentrates.  [`occupancy_trace`] replays a schedule and
//! records the weighted red occupancy after every move;
//! [`render_sparkline`] draws it for terminals.

use crate::graph::{Cdag, Weight};
use crate::label::PebbleState;
use crate::schedule::Schedule;

/// The weighted fast-memory occupancy after each move (index `i` =
/// occupancy after move `i`; the implicit starting occupancy is 0).
///
/// Does not validate the schedule; pair with
/// [`crate::validate_schedule`] when validity matters.
pub fn occupancy_trace(graph: &Cdag, schedule: &Schedule) -> Vec<Weight> {
    let mut state = PebbleState::initial(graph);
    schedule
        .iter()
        .map(|mv| {
            state.apply(graph, mv);
            state.red_weight()
        })
        .collect()
}

/// Summary statistics of an occupancy trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySummary {
    /// Peak occupancy in bits.
    pub peak: Weight,
    /// Mean occupancy in bits.
    pub mean: f64,
    /// Fraction of moves spent at ≥ 90% of peak.
    pub time_at_peak: f64,
}

/// Replay a schedule and summarise its occupancy in one call — the
/// per-point statistics hook used by the sweep engine.
pub fn occupancy_summary(graph: &Cdag, schedule: &Schedule) -> OccupancySummary {
    summarize(&occupancy_trace(graph, schedule))
}

/// Summarise a trace (empty traces yield zeros).
pub fn summarize(trace: &[Weight]) -> OccupancySummary {
    if trace.is_empty() {
        return OccupancySummary {
            peak: 0,
            mean: 0.0,
            time_at_peak: 0.0,
        };
    }
    let peak = trace.iter().copied().max().unwrap_or(0);
    let mean = trace.iter().sum::<Weight>() as f64 / trace.len() as f64;
    let hot = trace.iter().filter(|&&w| 10 * w >= 9 * peak).count() as f64;
    OccupancySummary {
        peak,
        mean,
        time_at_peak: hot / trace.len() as f64,
    }
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a trace as a fixed-width Unicode sparkline (each column shows
/// the maximum occupancy of its bucket, so peaks are never hidden by
/// downsampling).
pub fn render_sparkline(trace: &[Weight], width: usize) -> String {
    if trace.is_empty() || width == 0 {
        return String::new();
    }
    let peak = trace.iter().copied().max().unwrap_or(0).max(1);
    let width = width.min(trace.len());
    let mut out = String::with_capacity(width * 3);
    for col in 0..width {
        let lo = col * trace.len() / width;
        let hi = ((col + 1) * trace.len() / width).max(lo + 1);
        let bucket_max = trace[lo..hi].iter().copied().max().unwrap_or(0);
        let level = (bucket_max * (SPARK_LEVELS.len() as Weight - 1) + peak / 2) / peak;
        out.push(SPARK_LEVELS[level as usize]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CdagBuilder, NodeId};
    use crate::moves::Move;

    fn setup() -> (Cdag, Schedule) {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        let g = b.build().unwrap();
        let sched = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
            Move::Delete(NodeId(2)),
        ]);
        (g, sched)
    }

    #[test]
    fn trace_matches_hand_computation() {
        let (g, sched) = setup();
        assert_eq!(occupancy_trace(&g, &sched), vec![16, 32, 64, 64, 48, 32, 0]);
    }

    #[test]
    fn summary_stats() {
        let (g, sched) = setup();
        let trace = occupancy_trace(&g, &sched);
        let s = summarize(&trace);
        assert_eq!(s.peak, 64);
        assert!((s.mean - (16 + 32 + 64 + 64 + 48 + 32) as f64 / 7.0).abs() < 1e-9);
        assert!((s.time_at_peak - 2.0 / 7.0).abs() < 1e-9);
        assert_eq!(summarize(&[]).peak, 0);
    }

    #[test]
    fn sparkline_has_requested_width_and_peak() {
        let (g, sched) = setup();
        let trace = occupancy_trace(&g, &sched);
        let line = render_sparkline(&trace, 7);
        assert_eq!(line.chars().count(), 7);
        assert!(line.contains('█'), "{line}");
        // Downsampling keeps the bucket maxima: width 3 still shows a peak.
        let line3 = render_sparkline(&trace, 3);
        assert_eq!(line3.chars().count(), 3);
        assert!(line3.contains('█'));
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(render_sparkline(&[], 10), "");
        assert_eq!(render_sparkline(&[5], 0), "");
        let flat = render_sparkline(&[7, 7, 7], 3);
        assert_eq!(flat, "███");
    }
}
