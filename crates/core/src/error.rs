//! Error types for graph construction and schedule validation.

use crate::graph::{NodeId, Weight};
use crate::moves::Move;
use std::fmt;

/// Errors raised when building a [`crate::Cdag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// A node has weight zero (weights must be strictly positive).
    ZeroWeight(NodeId),
    /// An edge references a node out of range, or is a self-loop.
    BadEdge(NodeId, NodeId),
    /// The same directed edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edge set contains a directed cycle.
    Cycle,
    /// A node is isolated, making it both a source and a sink, which the
    /// model forbids (`A(G) ∩ Z(G) = ∅`).
    SourceIsSink(NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::ZeroWeight(v) => write!(f, "node {v} has zero weight"),
            GraphError::BadEdge(a, b) => write!(f, "invalid edge {a} -> {b}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::SourceIsSink(v) => {
                write!(f, "node {v} is isolated (both source and sink)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Errors raised when replaying a schedule against the game rules
/// (see [`crate::validate::validate_schedule`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// M1 applied to a node without a blue pebble.
    LoadWithoutBlue {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
    },
    /// M2 applied to a node without a red pebble.
    StoreWithoutRed {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
    },
    /// M3 applied to a source node (inputs are never computed).
    ComputeSource {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
    },
    /// M3 applied while some predecessor lacks a red pebble.
    ComputeWithoutOperands {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
        /// The predecessor that is missing a red pebble.
        missing: NodeId,
    },
    /// M4 applied to a node without a red pebble.
    DeleteWithoutRed {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
    },
    /// The weighted red-pebble constraint `Σ w_v ≤ B` was violated.
    BudgetExceeded {
        /// Index of the offending move in the schedule.
        step: usize,
        /// The offending move.
        mv: Move,
        /// Total red weight after the move.
        used: Weight,
        /// The budget `B`.
        budget: Weight,
    },
    /// The schedule finished but some sink lacks a blue pebble.
    StoppingConditionUnmet {
        /// A sink node without a blue pebble at the end of the schedule.
        sink: NodeId,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::LoadWithoutBlue { step, mv } => {
                write!(f, "step {step}: {mv} requires a blue pebble")
            }
            ValidityError::StoreWithoutRed { step, mv } => {
                write!(f, "step {step}: {mv} requires a red pebble")
            }
            ValidityError::ComputeSource { step, mv } => {
                write!(f, "step {step}: {mv} targets a source node")
            }
            ValidityError::ComputeWithoutOperands { step, mv, missing } => {
                write!(f, "step {step}: {mv} but predecessor {missing} is not red")
            }
            ValidityError::DeleteWithoutRed { step, mv } => {
                write!(f, "step {step}: {mv} requires a red pebble")
            }
            ValidityError::BudgetExceeded {
                step,
                mv,
                used,
                budget,
            } => write!(
                f,
                "step {step}: {mv} exceeds weighted budget ({used} > {budget})"
            ),
            ValidityError::StoppingConditionUnmet { sink } => {
                write!(f, "sink {sink} has no blue pebble at end of schedule")
            }
        }
    }
}

impl std::error::Error for ValidityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ValidityError::BudgetExceeded {
            step: 3,
            mv: Move::Load(NodeId(1)),
            used: 48,
            budget: 32,
        };
        let s = e.to_string();
        assert!(s.contains("step 3"));
        assert!(s.contains("48 > 32"));
        assert!(GraphError::Cycle.to_string().contains("cycle"));
    }
}
