//! Text serialization for schedules.
//!
//! Schedules are the artifact a designer ships to a memory controller or a
//! code generator, so they need a stable interchange format.  The format is
//! one move per line, `<MOVE> <node-index>`, with `#` comments and blank
//! lines ignored:
//!
//! ```text
//! # DWT(4,1) under 64 bits
//! M1 0
//! M1 1
//! M3 4
//! M2 4
//! M4 4
//! ```

use crate::graph::NodeId;
use crate::moves::Move;
use crate::schedule::Schedule;
use crate::stream::MoveStream;
use std::fmt;

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Render a schedule in the line format (with no comments).
pub fn to_text(schedule: &Schedule) -> String {
    let mut s = String::with_capacity(schedule.len() * 8);
    for mv in schedule.iter() {
        s.push_str(mv.paper_name());
        s.push(' ');
        s.push_str(&mv.node().0.to_string());
        s.push('\n');
    }
    s
}

/// Parse the line format back into a schedule (streamed straight into the
/// schedule's tag/node columns — no intermediate `Vec<Move>`).
pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
    let mut moves = MoveStream::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let op = parts.next().expect("non-empty line has a token");
        let node = parts
            .next()
            .ok_or_else(|| ParseError {
                line,
                message: format!("missing node index after {op}"),
            })?
            .parse::<u32>()
            .map_err(|e| ParseError {
                line,
                message: format!("invalid node index: {e}"),
            })?;
        if parts.next().is_some() {
            return Err(ParseError {
                line,
                message: "trailing tokens".into(),
            });
        }
        let v = NodeId(node);
        let mv = match op {
            "M1" => Move::Load(v),
            "M2" => Move::Store(v),
            "M3" => Move::Compute(v),
            "M4" => Move::Delete(v),
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown move {other} (expected M1..M4)"),
                })
            }
        };
        moves.push(mv);
    }
    Ok(Schedule::from_stream(moves))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
            Move::Delete(NodeId(0)),
        ])
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let text = to_text(&s);
        assert_eq!(from_text(&text).unwrap(), s);
        assert_eq!(text.lines().count(), s.len());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\nM1 0  # inline\n  M3 2\n";
        let s = from_text(text).unwrap();
        assert_eq!(
            s.moves(),
            &[Move::Load(NodeId(0)), Move::Compute(NodeId(2))]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(from_text("M1 0\nM9 1").unwrap_err().line, 2);
        assert_eq!(from_text("M1").unwrap_err().line, 1);
        assert_eq!(from_text("M1 x").unwrap_err().line, 1);
        assert_eq!(from_text("M1 0 extra").unwrap_err().line, 1);
    }

    #[test]
    fn empty_input_is_empty_schedule() {
        assert!(from_text("").unwrap().is_empty());
        assert!(from_text("# only comments\n").unwrap().is_empty());
    }
}
