//! Schedules: sequences of game moves, with weighted cost accounting.

use crate::graph::{Cdag, Weight};
use crate::moves::Move;
use crate::stream::{MoveStream, MoveTag};
use std::fmt;

/// A WRBPG schedule `S_G = (σ_1, …, σ_t)`.
///
/// A `Schedule` is an ordered list of [`Move`]s, stored internally as a
/// struct-of-arrays [`MoveStream`] (parallel tag/node columns); whether it
/// is *valid* for a given graph and budget is decided by
/// [`crate::validate::validate_schedule`].  Costs computed here follow
/// Definition 2.2: the weighted sum of all M1 (input) and M2 (output) moves.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    stream: MoveStream,
}

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schedule from a move list.
    pub fn from_moves(moves: Vec<Move>) -> Self {
        Schedule {
            stream: moves.into_iter().collect(),
        }
    }

    /// Build a schedule from an existing move stream.
    pub fn from_stream(stream: MoveStream) -> Self {
        Schedule { stream }
    }

    /// The underlying struct-of-arrays move storage.
    #[inline]
    pub fn stream(&self) -> &MoveStream {
        &self.stream
    }

    /// The move sequence, materialized as a `Vec`.
    ///
    /// Prefer [`Schedule::iter`] (or [`Schedule::stream`]) on hot paths;
    /// this allocates.
    pub fn moves(&self) -> Vec<Move> {
        self.stream.iter().collect()
    }

    /// Number of moves.
    #[inline]
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// `true` when the schedule contains no moves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// Append one move.
    #[inline]
    pub fn push(&mut self, mv: Move) {
        self.stream.push(mv);
    }

    /// Append all moves of `other` (schedule concatenation, written `++` in
    /// the paper's Algorithm 1).
    pub fn extend(&mut self, other: &Schedule) {
        self.stream.extend_from(&other.stream);
    }

    /// Iterate over the moves.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Move> + '_ {
        self.stream.iter()
    }

    /// Weighted schedule cost (Definition 2.2):
    /// `Σ_{M1(v)} w_v + Σ_{M2(v)} w_v`.
    pub fn cost(&self, graph: &Cdag) -> Weight {
        self.stream
            .tags()
            .iter()
            .zip(self.stream.nodes())
            .filter(|(t, _)| t.is_io())
            .map(|(_, &v)| graph.weight(v))
            .sum()
    }

    /// Weighted input cost: `Σ_{M1(v) ∈ I} w_v`.
    pub fn input_cost(&self, graph: &Cdag) -> Weight {
        self.tag_cost(graph, MoveTag::Load)
    }

    /// Weighted output cost: `Σ_{M2(v) ∈ O} w_v`.
    pub fn output_cost(&self, graph: &Cdag) -> Weight {
        self.tag_cost(graph, MoveTag::Store)
    }

    fn tag_cost(&self, graph: &Cdag, tag: MoveTag) -> Weight {
        self.stream
            .tags()
            .iter()
            .zip(self.stream.nodes())
            .filter(|&(&t, _)| t == tag)
            .map(|(_, &v)| graph.weight(v))
            .sum()
    }

    /// Asymmetric I/O cost: `load_scale·Σ w(M1) + store_scale·Σ w(M2)`.
    ///
    /// With `(1, 1)` this is [`Schedule::cost`]; other scales model
    /// asymmetric transfer energy (e.g. non-volatile memory writes costing
    /// an order of magnitude more than reads).
    pub fn scaled_io_cost(&self, graph: &Cdag, load_scale: Weight, store_scale: Weight) -> Weight {
        load_scale * self.input_cost(graph) + store_scale * self.output_cost(graph)
    }

    /// Rewrite every move's target node — e.g. to relocate a schedule into
    /// a disjoint-union graph (`map_nodes(|v| NodeId(v.0 + offset))`).
    pub fn map_nodes(&self, f: impl Fn(crate::graph::NodeId) -> crate::graph::NodeId) -> Schedule {
        self.stream
            .tags()
            .iter()
            .zip(self.stream.nodes())
            .map(|(&t, &v)| t.with_node(f(v)))
            .collect()
    }

    /// Count of moves of each kind `(M1, M2, M3, M4)`.
    pub fn move_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for t in self.stream.tags() {
            match t {
                MoveTag::Load => c.0 += 1,
                MoveTag::Store => c.1 += 1,
                MoveTag::Compute => c.2 += 1,
                MoveTag::Delete => c.3 += 1,
            }
        }
        c
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (m1, m2, m3, m4) = self.move_counts();
        write!(
            f,
            "Schedule({} moves: {m1} loads, {m2} stores, {m3} computes, {m4} deletes)",
            self.len()
        )
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

impl FromIterator<Move> for Schedule {
    fn from_iter<T: IntoIterator<Item = Move>>(iter: T) -> Self {
        Schedule {
            stream: iter.into_iter().collect(),
        }
    }
}

impl Extend<Move> for Schedule {
    fn extend<T: IntoIterator<Item = Move>>(&mut self, iter: T) {
        self.stream.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CdagBuilder, NodeId};

    fn pair() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(32, "y");
        b.edge(x, y);
        b.build().unwrap()
    }

    #[test]
    fn cost_counts_only_io_moves() {
        let g = pair();
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Compute(NodeId(1)),
            Move::Store(NodeId(1)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
        ]);
        assert_eq!(s.cost(&g), 16 + 32);
        assert_eq!(s.input_cost(&g), 16);
        assert_eq!(s.output_cost(&g), 32);
        assert_eq!(s.move_counts(), (1, 1, 1, 2));
    }

    #[test]
    fn repeated_io_is_charged_each_time() {
        let g = pair();
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Delete(NodeId(0)),
            Move::Load(NodeId(0)),
        ]);
        assert_eq!(s.cost(&g), 32);
    }

    #[test]
    fn concat_matches_paper_plus_plus() {
        let g = pair();
        let mut a = Schedule::from_moves(vec![Move::Load(NodeId(0))]);
        let b = Schedule::from_moves(vec![Move::Compute(NodeId(1)), Move::Store(NodeId(1))]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.cost(&g), 48);
    }

    #[test]
    fn display_formats_moves() {
        let s = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Store(NodeId(1))]);
        assert_eq!(s.to_string(), "M1(n0), M2(n1)");
    }

    #[test]
    fn stream_round_trips() {
        let moves = vec![
            Move::Load(NodeId(0)),
            Move::Compute(NodeId(1)),
            Move::Store(NodeId(1)),
        ];
        let s = Schedule::from_moves(moves.clone());
        assert_eq!(s.moves(), moves);
        assert_eq!(Schedule::from_stream(s.stream().clone()), s);
    }
}
