//! Machine descriptions: how much fast memory, on how many processors.
//!
//! The single-processor WRBPG is parameterized by one scalar budget `B`.
//! The multiprocessor extension (Böhnlein–Papp–Yzelman, "Red-Blue Pebbling
//! with Multiple Processors") plays the game with `p` red pebble *sets* —
//! one bounded fast memory per processor — sharing one unbounded blue
//! level, plus a red-to-red **communication** move priced like a
//! store+load.  [`MachineSpec`] captures both shapes in one value so the
//! request surface ([`crate::ScheduleRequest`]) never has to distinguish
//! them: a bare `Weight` converts into a uniprocessor spec via `From`,
//! which keeps every pre-redesign call site a one-expression change (or no
//! change at all, since `ScheduleRequest::new` takes `impl Into<MachineSpec>`).

use crate::graph::Weight;

/// The fast-memory budget of one processor, in bits (Definition 2.1 per
/// red set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcBudget {
    budget: Weight,
}

impl ProcBudget {
    /// A processor holding at most `budget` bits of red pebbles.
    pub fn new(budget: Weight) -> Self {
        ProcBudget { budget }
    }

    /// The processor's red-weight capacity in bits.
    pub fn budget(&self) -> Weight {
        self.budget
    }
}

/// Default communication price: a red-to-red transfer costs like a store
/// followed by a load of the same value (`2 · w(v)`).
pub const DEFAULT_COMM_PRICE: Weight = 2;

/// A machine: per-processor fast-memory budgets plus the price of moving
/// a value red-to-red between two processors.
///
/// `comm_price` is a *multiplier on node weight*: communicating node `v`
/// costs `comm_price · w(v)` bits of traffic (and the same amount of
/// time in the makespan model).  The default of
/// [`DEFAULT_COMM_PRICE`]` = 2` prices it like a store+load through slow
/// memory, which is the conservative semantics of the multiprocessor
/// game; hardware with a faster interconnect can lower it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineSpec {
    procs: Vec<ProcBudget>,
    comm_price: Weight,
}

impl MachineSpec {
    /// A machine with the given per-processor budgets.
    ///
    /// # Panics
    /// Panics when `procs` is empty — a machine has at least one
    /// processor.  (Transport layers validate counts before calling.)
    pub fn new(procs: Vec<ProcBudget>) -> Self {
        assert!(!procs.is_empty(), "a machine needs at least one processor");
        MachineSpec {
            procs,
            comm_price: DEFAULT_COMM_PRICE,
        }
    }

    /// The classic single-processor game under `budget` bits.
    pub fn uniprocessor(budget: Weight) -> Self {
        MachineSpec::new(vec![ProcBudget::new(budget)])
    }

    /// `procs` identical processors of `budget` bits each.
    ///
    /// # Panics
    /// Panics when `procs == 0`.
    pub fn symmetric(procs: usize, budget: Weight) -> Self {
        assert!(procs > 0, "a machine needs at least one processor");
        MachineSpec::new(vec![ProcBudget::new(budget); procs])
    }

    /// Override the communication price multiplier.
    pub fn with_comm_price(mut self, comm_price: Weight) -> Self {
        self.comm_price = comm_price;
        self
    }

    /// Number of processors (always ≥ 1).
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// The per-processor budgets.
    pub fn procs(&self) -> &[ProcBudget] {
        &self.procs
    }

    /// Budget of processor `p`.
    ///
    /// # Panics
    /// Panics when `p >= num_procs()`.
    pub fn proc_budget(&self, p: usize) -> Weight {
        self.procs[p].budget()
    }

    /// Whether this is the classic single-processor game.
    pub fn is_uniprocessor(&self) -> bool {
        self.procs.len() == 1
    }

    /// The scalar budget when single-processor, else `None`.  Executors
    /// use this to route uniprocessor requests through the exact
    /// pre-redesign code path (so p=1 answers stay byte-identical).
    pub fn uniprocessor_budget(&self) -> Option<Weight> {
        match self.procs.as_slice() {
            [only] => Some(only.budget()),
            _ => None,
        }
    }

    /// Aggregate fast memory across all processors.
    pub fn total_budget(&self) -> Weight {
        self.procs.iter().map(|p| p.budget()).sum()
    }

    /// The largest single-processor budget — what one value can rely on
    /// fitting into somewhere.
    pub fn max_proc_budget(&self) -> Weight {
        self.procs.iter().map(|p| p.budget()).max().unwrap_or(0)
    }

    /// The communication price multiplier (traffic and time per bit of
    /// the communicated value).
    pub fn comm_price(&self) -> Weight {
        self.comm_price
    }
}

impl From<Weight> for MachineSpec {
    /// A bare budget is the classic single-processor machine.
    fn from(budget: Weight) -> Self {
        MachineSpec::uniprocessor(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniprocessor_round_trips_the_scalar_budget() {
        let spec = MachineSpec::uniprocessor(160);
        assert!(spec.is_uniprocessor());
        assert_eq!(spec.uniprocessor_budget(), Some(160));
        assert_eq!(spec.total_budget(), 160);
        assert_eq!(spec.num_procs(), 1);
        assert_eq!(spec.comm_price(), DEFAULT_COMM_PRICE);
        assert_eq!(MachineSpec::from(160), spec);
        assert_eq!(spec, MachineSpec::symmetric(1, 160));
    }

    #[test]
    fn symmetric_machines_aggregate() {
        let spec = MachineSpec::symmetric(4, 64).with_comm_price(3);
        assert!(!spec.is_uniprocessor());
        assert_eq!(spec.uniprocessor_budget(), None);
        assert_eq!(spec.total_budget(), 256);
        assert_eq!(spec.max_proc_budget(), 64);
        assert_eq!(spec.proc_budget(3), 64);
        assert_eq!(spec.comm_price(), 3);
    }

    #[test]
    fn heterogeneous_budgets_are_first_class() {
        let spec = MachineSpec::new(vec![ProcBudget::new(128), ProcBudget::new(32)]);
        assert_eq!(spec.proc_budget(0), 128);
        assert_eq!(spec.proc_budget(1), 32);
        assert_eq!(spec.total_budget(), 160);
        assert_eq!(spec.max_proc_budget(), 128);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = MachineSpec::new(Vec::new());
    }
}
