//! # pebblyn-core — the Weighted Red-Blue Pebble Game (WRBPG)
//!
//! This crate implements the model of *Dataflow-Specific Algorithms for
//! Resource-Constrained Scheduling and Memory Design* (SPAA 2025), §2.
//!
//! The WRBPG is played on a node-weighted computational DAG (CDAG)
//! `G = (V, E, w, B)`.  A **red** pebble on a node means its value is resident
//! in bounded fast memory; a **blue** pebble means it is resident in unbounded
//! slow memory.  The four moves are
//!
//! * [`Move::Load`] (*M1*) — copy to fast memory: add a red pebble to a node
//!   that holds a blue pebble,
//! * [`Move::Store`] (*M2*) — copy to slow memory: add a blue pebble to a node
//!   that holds a red pebble,
//! * [`Move::Compute`] (*M3*) — perform an operation: if every predecessor of
//!   a non-source node holds a red pebble, add a red pebble to the node,
//! * [`Move::Delete`] (*M4*) — delete a red pebble (blue pebbles are never
//!   deleted).
//!
//! Unlike the classic game, red pebbles are constrained by **total weight**:
//! at every point of a schedule, `Σ_{v red} w_v ≤ B` (Definition 2.1).  The
//! cost of a schedule is the weighted sum of all M1/M2 moves (Definition 2.2)
//! — exactly the number of bits moved between the two memories when `w_v` is
//! the size of node `v`'s result.
//!
//! The crate provides:
//!
//! * [`Cdag`] / [`CdagBuilder`] — the weighted graph representation,
//! * [`Move`], [`Schedule`] — schedules as first-class values,
//! * [`validate`] — an independent replayer that checks every game rule and
//!   the weighted budget at every step, and reports exact statistics,
//! * [`bounds`] — the algorithmic lower bound (Prop. 2.4), the schedule
//!   existence criterion (Prop. 2.3), the minimum feasible budget, and
//!   admissible per-state lower bounds ([`StateBounds`]) for best-first
//!   exhaustive search.
//!
//! Weights are represented as `u64` *bit counts*.  The paper permits positive
//! reals of polynomial precision; every experiment in the paper uses integral
//! word sizes (16-bit inputs, 32-bit accumulators), and integral weights keep
//! dynamic-programming memo keys exact and the budget lattice finite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod error;
pub mod fasthash;
pub mod graph;
pub mod io;
pub mod label;
pub mod mask;
pub mod moves;
pub mod multi;
pub mod redset;
pub mod request;
pub mod schedule;
pub mod spec;
pub mod stream;
pub mod symmetry;
pub mod trace;
pub mod transform;
pub mod validate;

pub use bounds::{
    algorithmic_lower_bound, min_feasible_budget, schedule_exists, Heuristic, StateBounds,
};
pub use error::{GraphError, ValidityError};
pub use fasthash::{pack_key, FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use graph::{Cdag, CdagBuilder, NodeId, Weight};
pub use label::{Label, PebbleState};
pub use mask::{mask_iter, mask_weight, StateMask, Words};
pub use moves::Move;
pub use multi::{
    validate_multi_schedule, MultiMove, MultiSchedule, MultiStats, MultiValidityError,
};
pub use redset::RedSet;
pub use request::{ScheduleRequest, ScheduleResponse};
pub use schedule::Schedule;
pub use spec::{MachineSpec, ProcBudget, DEFAULT_COMM_PRICE};
pub use stream::MoveStream;
pub use symmetry::{certified_generators, is_certified_automorphism, twin_classes};
pub use trace::{
    occupancy_summary, occupancy_trace, render_sparkline, summarize, OccupancySummary,
};
pub use transform::{peephole, PeepholeStats};
pub use validate::{validate_moves, validate_schedule, ScheduleStats};
