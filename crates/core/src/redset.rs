//! Fixed-width bitset over node ids with resident-weight tracking.
//!
//! Red-set membership is the single hottest query in the workspace: the
//! validator, the machine replayer, Belady-style eviction, and the
//! exhaustive solver all ask "does `v` hold a red pebble, and what do the
//! red pebbles weigh?" on every move.  [`RedSet`] answers both in O(1) from
//! a flat `u64`-word bitset plus one cached weight, and exposes the raw
//! words so whole-set operations (hashing, equality, iteration) cost
//! O(words) instead of O(nodes).

use crate::graph::{NodeId, Weight};

/// A set of nodes stored as a `u64`-word bitset, with the total weight of
/// the members cached incrementally.
///
/// Weights are supplied at insertion/removal time (the set does not hold a
/// graph reference); callers pass `graph.weight(v)`.  Inserting a present
/// member or removing an absent one is a no-op, so replaying idempotent
/// moves (double loads, double stores) never skews the cached weight.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RedSet {
    words: Vec<u64>,
    weight: Weight,
}

impl RedSet {
    /// An empty set able to hold nodes `0..n`.
    pub fn new(n: usize) -> Self {
        RedSet {
            words: vec![0; n.div_ceil(64)],
            weight: 0,
        }
    }

    /// `true` iff `v` is a member.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        let i = v.index();
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Insert `v` with weight `w`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId, w: Weight) -> bool {
        let i = v.index();
        let bit = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.weight += w;
        true
    }

    /// Remove `v` with weight `w`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId, w: Weight) -> bool {
        let i = v.index();
        let bit = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        self.weight -= w;
        true
    }

    /// Total weight of the members (`Σ_{v ∈ S} w_v`), maintained
    /// incrementally.
    #[inline]
    pub fn weight(&self) -> Weight {
        self.weight
    }

    /// Number of members (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no node is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Remove every member and reset the cached weight.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.weight = 0;
    }

    /// Iterate over the members in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                Some(NodeId((wi * 64) as u32 + tz))
            })
        })
    }

    /// The raw bitset words (little-endian bit order within each word).
    ///
    /// Exposed so state hashing and equality in search-based solvers can
    /// work word-at-a-time.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_track_weight() {
        let mut s = RedSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(3), 16));
        assert!(s.insert(NodeId(129), 8));
        assert!(!s.insert(NodeId(3), 16), "double insert is a no-op");
        assert_eq!(s.weight(), 24);
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(3)) && s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(4)));
        assert!(s.remove(NodeId(3), 16));
        assert!(!s.remove(NodeId(3), 16), "double remove is a no-op");
        assert_eq!(s.weight(), 8);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(129)]);
    }

    #[test]
    fn iter_ascending_across_words() {
        let mut s = RedSet::new(200);
        for &i in &[0u32, 63, 64, 127, 128, 199] {
            s.insert(NodeId(i), 1);
        }
        let got: Vec<u32> = s.iter().map(|v| v.0).collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(s.weight(), 6);
    }

    #[test]
    fn clear_resets() {
        let mut s = RedSet::new(10);
        s.insert(NodeId(1), 5);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.weight(), 0);
        assert_eq!(s.words(), &[0]);
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let mut a = RedSet::new(70);
        let mut b = RedSet::new(70);
        a.insert(NodeId(65), 4);
        b.insert(NodeId(65), 4);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
