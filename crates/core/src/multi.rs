//! The multiprocessor WRBPG: p red pebble sets over one shared blue level.
//!
//! Following Böhnlein–Papp–Yzelman ("Red-Blue Pebbling with Multiple
//! Processors"), the game board gains `p` processors.  Each processor `q`
//! owns a bounded red pebble set (its fast memory, budget
//! `MachineSpec::proc_budget(q)`); all processors share the unbounded blue
//! level (slow memory).  The move forms are the four single-processor
//! moves, now tagged with the acting processor, plus one new form:
//!
//! * [`MultiMove::Comm`] — **communication**: copy a value red-to-red from
//!   one processor to another, priced like a store+load of the same value
//!   (`comm_price · w(v)` traffic, default price 2).
//!
//! Two objectives coexist (the compute/communication/memory trade-off):
//!
//! * **total I/O** — the weighted M1+M2 sum of Definition 2.2, summed over
//!   all processors, plus the priced communication traffic, and
//! * **makespan** — the maximum per-processor finish time under a simple
//!   contention-free timing model: a compute of `v` occupies its processor
//!   for `w(v)` time units, a load waits until the blue copy exists and
//!   then takes `w(v)`, a store takes `w(v)` and publishes the blue copy,
//!   a communication synchronizes both endpoints for `comm_price · w(v)`,
//!   and deletes are free.
//!
//! [`validate_multi_schedule`] replays a [`MultiSchedule`] against every
//! rule — per-processor budgets after every move, shared-blue
//! preconditions, the sinks-end-blue stopping condition — and reports
//! [`MultiStats`] (both objectives plus per-processor occupancy), mirroring
//! the single-processor `validate_schedule`.  A `p = 1` multi schedule with
//! no communication moves projects losslessly onto a classic [`Schedule`]
//! via [`MultiSchedule::project_single`], which is how the conformance
//! oracle checks p=1 equivalence byte-for-byte.

use crate::graph::{Cdag, NodeId, Weight};
use crate::moves::Move;
use crate::redset::RedSet;
use crate::schedule::Schedule;
use crate::spec::MachineSpec;
use std::fmt;

/// One move of the multiprocessor game.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiMove {
    /// *M1* on processor `proc` — copy `node` from slow memory into
    /// `proc`'s fast memory.
    Load {
        /// Acting processor.
        proc: usize,
        /// Target node.
        node: NodeId,
    },
    /// *M2* on processor `proc` — copy `node` from `proc`'s fast memory to
    /// slow memory (visible to every processor afterwards).
    Store {
        /// Acting processor.
        proc: usize,
        /// Target node.
        node: NodeId,
    },
    /// *M3* on processor `proc` — compute `node`; every predecessor must be
    /// red **on the same processor**.
    Compute {
        /// Acting processor.
        proc: usize,
        /// Target node.
        node: NodeId,
    },
    /// *M4* on processor `proc` — evict `node` from `proc`'s fast memory.
    Delete {
        /// Acting processor.
        proc: usize,
        /// Target node.
        node: NodeId,
    },
    /// *M5* — communicate `node` red-to-red from processor `from` to
    /// processor `to`, priced like a store+load (`comm_price · w`).
    Comm {
        /// Sending processor (must hold `node` red).
        from: usize,
        /// Receiving processor (gains a red pebble on `node`).
        to: usize,
        /// Transferred node.
        node: NodeId,
    },
}

impl MultiMove {
    /// The node this move targets.
    #[inline]
    pub fn node(self) -> NodeId {
        match self {
            MultiMove::Load { node, .. }
            | MultiMove::Store { node, .. }
            | MultiMove::Compute { node, .. }
            | MultiMove::Delete { node, .. }
            | MultiMove::Comm { node, .. } => node,
        }
    }

    /// The single-processor equivalent when this move runs on processor 0
    /// of a uniprocessor machine; `None` for communication or any other
    /// processor.
    pub fn as_single(self) -> Option<Move> {
        match self {
            MultiMove::Load { proc: 0, node } => Some(Move::Load(node)),
            MultiMove::Store { proc: 0, node } => Some(Move::Store(node)),
            MultiMove::Compute { proc: 0, node } => Some(Move::Compute(node)),
            MultiMove::Delete { proc: 0, node } => Some(Move::Delete(node)),
            _ => None,
        }
    }

    /// Lift a single-processor move onto processor `proc`.
    pub fn from_single(mv: Move, proc: usize) -> MultiMove {
        match mv {
            Move::Load(node) => MultiMove::Load { proc, node },
            Move::Store(node) => MultiMove::Store { proc, node },
            Move::Compute(node) => MultiMove::Compute { proc, node },
            Move::Delete(node) => MultiMove::Delete { proc, node },
        }
    }
}

impl fmt::Debug for MultiMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MultiMove::Load { proc, node } => write!(f, "M1@p{proc}({node})"),
            MultiMove::Store { proc, node } => write!(f, "M2@p{proc}({node})"),
            MultiMove::Compute { proc, node } => write!(f, "M3@p{proc}({node})"),
            MultiMove::Delete { proc, node } => write!(f, "M4@p{proc}({node})"),
            MultiMove::Comm { from, to, node } => write!(f, "M5(p{from}->p{to}, {node})"),
        }
    }
}

impl fmt::Display for MultiMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An ordered multiprocessor move sequence.
///
/// Moves are globally ordered (the validator replays them sequentially for
/// rule checking); the timing model recovers per-processor concurrency
/// from the per-processor clocks, so the global order only has to be
/// *consistent* with each processor's local order and with cross-processor
/// data movement.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct MultiSchedule {
    moves: Vec<MultiMove>,
}

impl MultiSchedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a move list.
    pub fn from_moves(moves: Vec<MultiMove>) -> Self {
        MultiSchedule { moves }
    }

    /// Lift a single-processor schedule onto processor 0 of a
    /// multiprocessor machine.
    pub fn from_single(schedule: &Schedule) -> Self {
        MultiSchedule {
            moves: schedule
                .iter()
                .map(|m| MultiMove::from_single(m, 0))
                .collect(),
        }
    }

    /// Project back onto the single-processor game: succeeds exactly when
    /// every move runs on processor 0 and there is no communication.
    /// `from_single` followed by `project_single` is the identity, which
    /// is the p=1 byte-identity contract the conformance oracle checks.
    pub fn project_single(&self) -> Option<Schedule> {
        self.moves.iter().map(|m| m.as_single()).collect()
    }

    /// The move sequence.
    #[inline]
    pub fn moves(&self) -> &[MultiMove] {
        &self.moves
    }

    /// Append one move.
    #[inline]
    pub fn push(&mut self, mv: MultiMove) {
        self.moves.push(mv);
    }

    /// Number of moves.
    #[inline]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// `true` when there are no moves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Iterate over the moves.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = MultiMove> + '_ {
        self.moves.iter().copied()
    }

    /// Rewrite every move's target node — the multiprocessor analogue of
    /// [`Schedule::map_nodes`], used to transport cached answers between
    /// isomorphic labelings.  Processor indices are untouched.
    pub fn map_nodes(&self, f: impl Fn(NodeId) -> NodeId) -> MultiSchedule {
        MultiSchedule {
            moves: self
                .moves
                .iter()
                .map(|&m| match m {
                    MultiMove::Load { proc, node } => MultiMove::Load {
                        proc,
                        node: f(node),
                    },
                    MultiMove::Store { proc, node } => MultiMove::Store {
                        proc,
                        node: f(node),
                    },
                    MultiMove::Compute { proc, node } => MultiMove::Compute {
                        proc,
                        node: f(node),
                    },
                    MultiMove::Delete { proc, node } => MultiMove::Delete {
                        proc,
                        node: f(node),
                    },
                    MultiMove::Comm { from, to, node } => MultiMove::Comm {
                        from,
                        to,
                        node: f(node),
                    },
                })
                .collect(),
        }
    }
}

impl fmt::Debug for MultiSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let comm = self
            .moves
            .iter()
            .filter(|m| matches!(m, MultiMove::Comm { .. }))
            .count();
        write!(f, "MultiSchedule({} moves, {comm} comm)", self.len())
    }
}

impl fmt::Display for MultiSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.moves.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

impl FromIterator<MultiMove> for MultiSchedule {
    fn from_iter<T: IntoIterator<Item = MultiMove>>(iter: T) -> Self {
        MultiSchedule {
            moves: iter.into_iter().collect(),
        }
    }
}

/// Why a multiprocessor schedule is invalid (with the offending step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiValidityError {
    /// A move names a processor the machine does not have.
    UnknownProc {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
        /// Number of processors in the spec.
        procs: usize,
    },
    /// M1 of a node with no blue pebble.
    LoadWithoutBlue {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// M2 of a node not red on the acting processor.
    StoreWithoutRed {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// M3 of a source node.
    ComputeSource {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// M3 with predecessors missing from the acting processor's red set.
    ComputeWithoutOperands {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
        /// Predecessors not red on the acting processor.
        missing: Vec<NodeId>,
    },
    /// M4 of a node not red on the acting processor.
    DeleteWithoutRed {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// M5 whose source processor does not hold the node red.
    CommWithoutRed {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// M5 from a processor to itself.
    CommToSelf {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
    },
    /// A processor's red weight exceeded its budget after a move.
    BudgetExceeded {
        /// 0-based move index.
        step: usize,
        /// The offending move.
        mv: MultiMove,
        /// The overloaded processor.
        proc: usize,
        /// Red weight on `proc` after the move.
        used: Weight,
        /// `proc`'s budget.
        budget: Weight,
    },
    /// A sink ended the schedule without a blue pebble.
    StoppingConditionUnmet {
        /// The uncovered sink.
        sink: NodeId,
    },
}

impl fmt::Display for MultiValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MultiValidityError::*;
        match self {
            UnknownProc { step, mv, procs } => {
                write!(f, "step {step}: {mv} names a processor >= p={procs}")
            }
            LoadWithoutBlue { step, mv } => {
                write!(f, "step {step}: {mv} loads a node with no blue pebble")
            }
            StoreWithoutRed { step, mv } => write!(
                f,
                "step {step}: {mv} stores a node not red on the acting processor"
            ),
            ComputeSource { step, mv } => {
                write!(f, "step {step}: {mv} computes a source node")
            }
            ComputeWithoutOperands { step, mv, missing } => write!(
                f,
                "step {step}: {mv} computes with operands {missing:?} not red on the processor"
            ),
            DeleteWithoutRed { step, mv } => write!(
                f,
                "step {step}: {mv} deletes a node not red on the acting processor"
            ),
            CommWithoutRed { step, mv } => write!(
                f,
                "step {step}: {mv} communicates a node not red on the sender"
            ),
            CommToSelf { step, mv } => {
                write!(f, "step {step}: {mv} communicates a node to its own holder")
            }
            BudgetExceeded {
                step,
                mv,
                proc,
                used,
                budget,
            } => write!(
                f,
                "step {step}: {mv} leaves processor {proc} at {used} red bits > budget {budget}"
            ),
            StoppingConditionUnmet { sink } => {
                write!(f, "sink {sink} holds no blue pebble at the end")
            }
        }
    }
}

impl std::error::Error for MultiValidityError {}

/// Exact statistics of a replay-validated multiprocessor schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiStats {
    /// Weighted M1+M2 cost summed over all processors (Definition 2.2),
    /// *excluding* communication.
    pub io_cost: Weight,
    /// Weighted M1 (load) component of `io_cost`.
    pub input_cost: Weight,
    /// Weighted M2 (store) component of `io_cost`.
    pub output_cost: Weight,
    /// Priced communication traffic: `Σ_{M5(v)} comm_price · w_v`.
    pub comm_cost: Weight,
    /// Number of communication moves.
    pub comm_moves: u64,
    /// Makespan: the maximum per-processor clock after the last move.
    pub makespan: Weight,
    /// Peak red weight per processor (index = processor).
    pub peak_red: Vec<Weight>,
    /// Compute moves per processor (index = processor).
    pub computes_per_proc: Vec<u64>,
    /// Total number of moves replayed.
    pub moves: u64,
}

impl MultiStats {
    /// The combined I/O objective: slow-memory traffic plus priced
    /// communication.  For p=1 this equals the single-processor cost.
    pub fn total_cost(&self) -> Weight {
        self.io_cost + self.comm_cost
    }

    /// Total compute moves across processors.
    pub fn computes(&self) -> u64 {
        self.computes_per_proc.iter().sum()
    }

    /// Number of processors that computed at least one node.
    pub fn procs_used(&self) -> usize {
        self.computes_per_proc.iter().filter(|&&c| c > 0).count()
    }
}

/// Replay `schedule` on `graph` under `spec`, checking every rule of the
/// multiprocessor game, and return exact statistics.
///
/// Rules checked (mirroring the single-processor `validate_moves`):
/// every processor index exists; M1 needs a blue pebble; M2/M4 need a red
/// pebble on the acting processor; M3 needs a non-source node with every
/// predecessor red **on the acting processor**; M5 needs the value red on
/// the sender and distinct endpoints; after every red-set insertion the
/// owning processor's weighted budget holds; and every sink ends blue.
pub fn validate_multi_schedule(
    graph: &Cdag,
    spec: &MachineSpec,
    schedule: &MultiSchedule,
) -> Result<MultiStats, MultiValidityError> {
    use MultiValidityError::*;
    let p = spec.num_procs();
    let mut red: Vec<RedSet> = (0..p).map(|_| RedSet::new(graph.len())).collect();
    let mut blue = RedSet::new(graph.len());
    // Per-processor clocks and the time each blue copy becomes readable.
    let mut clock: Vec<Weight> = vec![0; p];
    let mut avail_blue: Vec<Weight> = vec![0; graph.len()];
    for &v in graph.sources() {
        blue.insert(v, graph.weight(v));
    }

    let mut stats = MultiStats {
        io_cost: 0,
        input_cost: 0,
        output_cost: 0,
        comm_cost: 0,
        comm_moves: 0,
        makespan: 0,
        peak_red: vec![0; p],
        computes_per_proc: vec![0; p],
        moves: schedule.len() as u64,
    };

    let check_budget = |red: &[RedSet],
                        stats: &mut MultiStats,
                        step: usize,
                        mv: MultiMove,
                        q: usize|
     -> Result<(), MultiValidityError> {
        let used = red[q].weight();
        stats.peak_red[q] = stats.peak_red[q].max(used);
        if used > spec.proc_budget(q) {
            return Err(BudgetExceeded {
                step,
                mv,
                proc: q,
                used,
                budget: spec.proc_budget(q),
            });
        }
        Ok(())
    };

    for (step, mv) in schedule.iter().enumerate() {
        match mv {
            MultiMove::Load { proc, node } => {
                if proc >= p {
                    return Err(UnknownProc { step, mv, procs: p });
                }
                if !blue.contains(node) {
                    return Err(LoadWithoutBlue { step, mv });
                }
                let w = graph.weight(node);
                stats.io_cost += w;
                stats.input_cost += w;
                clock[proc] = clock[proc].max(avail_blue[node.index()]) + w;
                red[proc].insert(node, w);
                check_budget(&red, &mut stats, step, mv, proc)?;
            }
            MultiMove::Store { proc, node } => {
                if proc >= p {
                    return Err(UnknownProc { step, mv, procs: p });
                }
                if !red[proc].contains(node) {
                    return Err(StoreWithoutRed { step, mv });
                }
                let w = graph.weight(node);
                stats.io_cost += w;
                stats.output_cost += w;
                clock[proc] += w;
                if blue.insert(node, w) {
                    avail_blue[node.index()] = clock[proc];
                }
            }
            MultiMove::Compute { proc, node } => {
                if proc >= p {
                    return Err(UnknownProc { step, mv, procs: p });
                }
                if graph.is_source(node) {
                    return Err(ComputeSource { step, mv });
                }
                let missing: Vec<NodeId> = graph
                    .preds(node)
                    .iter()
                    .copied()
                    .filter(|&u| !red[proc].contains(u))
                    .collect();
                if !missing.is_empty() {
                    return Err(ComputeWithoutOperands { step, mv, missing });
                }
                let w = graph.weight(node);
                clock[proc] += w;
                stats.computes_per_proc[proc] += 1;
                red[proc].insert(node, w);
                check_budget(&red, &mut stats, step, mv, proc)?;
            }
            MultiMove::Delete { proc, node } => {
                if proc >= p {
                    return Err(UnknownProc { step, mv, procs: p });
                }
                if !red[proc].remove(node, graph.weight(node)) {
                    return Err(DeleteWithoutRed { step, mv });
                }
            }
            MultiMove::Comm { from, to, node } => {
                if from >= p || to >= p {
                    return Err(UnknownProc { step, mv, procs: p });
                }
                if from == to {
                    return Err(CommToSelf { step, mv });
                }
                if !red[from].contains(node) {
                    return Err(CommWithoutRed { step, mv });
                }
                let w = graph.weight(node);
                stats.comm_cost += spec.comm_price() * w;
                stats.comm_moves += 1;
                let t = clock[from].max(clock[to]) + spec.comm_price() * w;
                clock[from] = t;
                clock[to] = t;
                red[to].insert(node, w);
                check_budget(&red, &mut stats, step, mv, to)?;
            }
        }
    }

    for &v in graph.sinks() {
        if !blue.contains(v) {
            return Err(StoppingConditionUnmet { sink: v });
        }
    }
    stats.makespan = clock.into_iter().max().unwrap_or(0);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;
    use crate::validate::validate_schedule;

    /// x(16) -> y(32), x -> z(16): one shared input, two consumers.
    fn fork() -> (Cdag, NodeId, NodeId, NodeId) {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(32, "y");
        let z = b.node(16, "z");
        b.edge(x, y);
        b.edge(x, z);
        (b.build().unwrap(), x, y, z)
    }

    #[test]
    fn single_proc_round_trips_and_matches_classic_validator() {
        let (g, x, y, z) = fork();
        let single = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Compute(y),
            Move::Store(y),
            Move::Delete(y),
            Move::Compute(z),
            Move::Store(z),
        ]);
        let multi = MultiSchedule::from_single(&single);
        assert_eq!(multi.project_single().unwrap(), single);

        let spec = MachineSpec::uniprocessor(64);
        let stats = validate_multi_schedule(&g, &spec, &multi).unwrap();
        let classic = validate_schedule(&g, 64, &single).unwrap();
        assert_eq!(stats.io_cost, classic.cost);
        assert_eq!(stats.input_cost, classic.input_cost);
        assert_eq!(stats.output_cost, classic.output_cost);
        assert_eq!(stats.peak_red, vec![classic.peak_red_weight]);
        assert_eq!(stats.comm_moves, 0);
        assert_eq!(stats.total_cost(), classic.cost);
        assert_eq!(stats.procs_used(), 1);
        // load 16 + compute 32 + store 32 + compute 16 + store 16
        assert_eq!(stats.makespan, 112);
    }

    #[test]
    fn comm_move_transfers_red_and_prices_like_store_load() {
        let (g, x, y, z) = fork();
        let spec = MachineSpec::symmetric(2, 64);
        let sched = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Comm {
                from: 0,
                to: 1,
                node: x,
            },
            MultiMove::Compute { proc: 0, node: y },
            MultiMove::Compute { proc: 1, node: z },
            MultiMove::Store { proc: 0, node: y },
            MultiMove::Store { proc: 1, node: z },
        ]);
        let stats = validate_multi_schedule(&g, &spec, &sched).unwrap();
        assert_eq!(stats.comm_moves, 1);
        assert_eq!(stats.comm_cost, 2 * 16);
        assert_eq!(stats.io_cost, 16 + 32 + 16);
        assert_eq!(stats.total_cost(), 96);
        assert_eq!(stats.procs_used(), 2);
        assert_eq!(stats.computes_per_proc, vec![1, 1]);
        // p0: load 16 -> comm sync to 48 -> compute 32 -> store 32 = 112.
        // p1: comm sync to 48 -> compute 16 -> store 16 = 80.
        assert_eq!(stats.makespan, 112);
    }

    #[test]
    fn makespan_load_waits_for_blue_availability() {
        let (g, x, y, z) = fork();
        let spec = MachineSpec::symmetric(2, 64);
        // p1 loads x only after p0 stores... x is a source, blue at t=0,
        // so no wait; but y computed on p0 then stored is only available
        // to p1 after the store completes.
        let sched = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Compute { proc: 0, node: y },
            MultiMove::Store { proc: 0, node: y }, // blue(y) at t=16+32+32=80
            MultiMove::Load { proc: 1, node: x },  // t(p1)=16
            MultiMove::Compute { proc: 1, node: z },
            MultiMove::Store { proc: 1, node: z },
            MultiMove::Delete { proc: 1, node: z },
            MultiMove::Load { proc: 1, node: y }, // waits: max(48, 80)+32 = 112
        ]);
        let stats = validate_multi_schedule(&g, &spec, &sched).unwrap();
        assert_eq!(stats.makespan, 112);
    }

    #[test]
    fn per_proc_budgets_are_independent() {
        let (g, x, y, _z) = fork();
        let spec = MachineSpec::new(vec![
            crate::spec::ProcBudget::new(64),
            crate::spec::ProcBudget::new(16),
        ]);
        // Fits on p0 (peak 48 <= 64): replay only trips the stopping
        // condition (sink z never produced), not the budget.
        let on_p0 = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Compute { proc: 0, node: y },
            MultiMove::Store { proc: 0, node: y },
        ]);
        assert!(matches!(
            validate_multi_schedule(&g, &spec, &on_p0),
            Err(MultiValidityError::StoppingConditionUnmet { .. })
        ));
        // Same prefix on p1 blows its 16-bit budget at the compute.
        let on_p1 = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 1, node: x },
            MultiMove::Compute { proc: 1, node: y },
        ]);
        match validate_multi_schedule(&g, &spec, &on_p1) {
            Err(MultiValidityError::BudgetExceeded {
                proc, used, budget, ..
            }) => {
                assert_eq!(proc, 1);
                assert_eq!(used, 48);
                assert_eq!(budget, 16);
            }
            other => panic!("expected budget violation, got {other:?}"),
        }
    }

    #[test]
    fn compute_needs_operands_on_the_same_processor() {
        let (g, x, y, _z) = fork();
        let spec = MachineSpec::symmetric(2, 64);
        let sched = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Compute { proc: 1, node: y }, // x red on p0, not p1
        ]);
        match validate_multi_schedule(&g, &spec, &sched) {
            Err(MultiValidityError::ComputeWithoutOperands { missing, .. }) => {
                assert_eq!(missing, vec![x]);
            }
            other => panic!("expected missing operands, got {other:?}"),
        }
    }

    #[test]
    fn comm_requires_red_sender_and_distinct_endpoints() {
        let (g, x, _y, _z) = fork();
        let spec = MachineSpec::symmetric(2, 64);
        let no_red = MultiSchedule::from_moves(vec![MultiMove::Comm {
            from: 0,
            to: 1,
            node: x,
        }]);
        assert!(matches!(
            validate_multi_schedule(&g, &spec, &no_red),
            Err(MultiValidityError::CommWithoutRed { .. })
        ));
        let to_self = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Comm {
                from: 0,
                to: 0,
                node: x,
            },
        ]);
        assert!(matches!(
            validate_multi_schedule(&g, &spec, &to_self),
            Err(MultiValidityError::CommToSelf { .. })
        ));
    }

    #[test]
    fn stopping_condition_and_unknown_proc() {
        let (g, x, y, z) = fork();
        let spec = MachineSpec::symmetric(2, 64);
        let incomplete = MultiSchedule::from_moves(vec![
            MultiMove::Load { proc: 0, node: x },
            MultiMove::Compute { proc: 0, node: y },
            MultiMove::Store { proc: 0, node: y },
            MultiMove::Compute { proc: 0, node: z },
        ]);
        assert!(matches!(
            validate_multi_schedule(&g, &spec, &incomplete),
            Err(MultiValidityError::StoppingConditionUnmet { sink }) if sink == z
        ));
        let bad_proc = MultiSchedule::from_moves(vec![MultiMove::Load { proc: 2, node: x }]);
        assert!(matches!(
            validate_multi_schedule(&g, &spec, &bad_proc),
            Err(MultiValidityError::UnknownProc { procs: 2, .. })
        ));
    }

    #[test]
    fn projection_fails_off_processor_zero() {
        let (_g, x, _y, _z) = fork();
        let off = MultiSchedule::from_moves(vec![MultiMove::Load { proc: 1, node: x }]);
        assert!(off.project_single().is_none());
        let comm = MultiSchedule::from_moves(vec![MultiMove::Comm {
            from: 0,
            to: 1,
            node: x,
        }]);
        assert!(comm.project_single().is_none());
    }
}
