//! A minimal multiply-fold hasher for hot-path hash maps.
//!
//! The standard library's default `SipHash` is DoS-resistant but costs tens
//! of cycles per key — far too slow for the exhaustive solver's Dijkstra
//! maps and the schedulers' DP memos, whose keys are already-compact
//! integers (packed state words, `(node, budget)` pairs).  This module
//! provides the well-known Fx multiply-rotate fold (as used by rustc):
//! one multiply per 8 bytes, no allocation, no dependencies.
//!
//! **Not** DoS-resistant; use only for keys derived from trusted inputs
//! (graph structure, solver state), never for attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash family (rustc's `FxHasher`): a 64-bit odd
/// constant with good bit dispersion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher folding 8 bytes per multiply.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Pack a two-word DP state — e.g. `(node, budget)` or `(mask, held
/// weight)` — into one `u128` memo key: `hi` in the high word, `lo` in the
/// low word.
///
/// Exact for all `u32`/`u64` component pairs, and a `u128` key hashes as
/// two word folds under [`FastHasher`] instead of a field-by-field tuple
/// walk under SipHash.
#[inline]
pub fn pack_key(hi: u64, lo: u64) -> u128 {
    (hi as u128) << 64 | lo as u128
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`] — for compact, trusted keys on hot
/// paths.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<u128, u64> = FastHashMap::default();
        for i in 0..1000u128 {
            m.insert(i << 64 | i, i as u64);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u128 {
            assert_eq!(m.get(&(i << 64 | i)), Some(&(i as u64)));
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        use std::hash::BuildHasher;
        let b = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(b.hash_one(i));
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small integers");
    }

    #[test]
    fn tuple_and_string_keys_work() {
        let mut m: FastHashMap<(u32, u64), &str> = FastHashMap::default();
        m.insert((7, 9), "a");
        m.insert((9, 7), "b");
        assert_eq!(m[&(7, 9)], "a");
        assert_eq!(m[&(9, 7)], "b");
        let mut s: FastHashSet<String> = FastHashSet::default();
        s.insert("x".into());
        assert!(s.contains("x") && !s.contains("y"));
    }
}
