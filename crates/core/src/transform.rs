//! Cost- and memory-safe schedule rewrites.
//!
//! Schedules produced by generators (or by hand) sometimes contain moves
//! that cannot affect the outcome: a value evicted and immediately
//! reloaded, a store of a value that already has a blue copy, or an
//! eviction re-deriving a label the node already has.  The peephole passes
//! here remove them.  Every rewrite is *safe* in the strong sense used by
//! the validator:
//!
//! * the rewritten schedule is valid whenever the original is (same game
//!   rules, never a higher red weight at any point),
//! * the weighted cost never increases,
//! * the final snapshot is unchanged, so the stopping condition and all
//!   outputs are preserved.

use crate::graph::Cdag;
use crate::moves::Move;
use crate::redset::RedSet;
use crate::schedule::Schedule;
use crate::stream::{MoveStream, MoveTag};

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeepholeStats {
    /// Adjacent `M4(v), M1(v)` pairs removed (value was reloaded
    /// immediately — keeping it red is never worse).
    pub delete_load_pairs: usize,
    /// `M2(v)` removed because `v` already carried a blue pebble.
    pub redundant_stores: usize,
    /// `M1(v)` removed because `v` already carried a red pebble.
    pub redundant_loads: usize,
    /// `M2(v)` removed because the blue copy is never read again and `v`
    /// is not an output (dead stores).
    pub dead_stores: usize,
    /// Trailing `M4`s removed (evictions after the last use of fast
    /// memory cannot help anyone).
    pub trailing_deletes: usize,
}

impl PeepholeStats {
    /// Total number of moves removed.
    pub fn removed(&self) -> usize {
        2 * self.delete_load_pairs
            + self.redundant_stores
            + self.redundant_loads
            + self.dead_stores
            + self.trailing_deletes
    }
}

/// Run all peephole passes until a fixed point; returns the optimized
/// schedule and what was removed.
///
/// The input need not be valid — the passes only use label bookkeeping
/// that is well-defined for any move sequence — but the guarantees above
/// are stated for valid inputs.
pub fn peephole(graph: &Cdag, schedule: &Schedule) -> (Schedule, PeepholeStats) {
    let mut stats = PeepholeStats::default();
    let mut current: MoveStream = schedule.stream().clone();
    loop {
        let before = current.len();
        current = drop_redundant_label_moves(graph, current, &mut stats);
        current = drop_delete_load_pairs(current, &mut stats);
        current = drop_dead_stores(graph, current, &mut stats);
        drop_trailing_deletes(&mut current, &mut stats);
        if current.len() == before {
            break;
        }
    }
    (Schedule::from_stream(current), stats)
}

/// Remove `M2(v)` when `v` is not an output and its blue copy is never
/// loaded later: the store's only observable effect would be a future
/// reload or the stopping condition, and neither applies.
fn drop_dead_stores(graph: &Cdag, moves: MoveStream, stats: &mut PeepholeStats) -> MoveStream {
    let mut loaded_later = vec![false; graph.len()];
    let mut keep = vec![true; moves.len()];
    for i in (0..moves.len()).rev() {
        let v = moves.nodes()[i];
        match moves.tags()[i] {
            MoveTag::Store if !graph.is_sink(v) && !loaded_later[v.index()] => {
                keep[i] = false;
                stats.dead_stores += 1;
            }
            MoveTag::Load => loaded_later[v.index()] = true,
            _ => {}
        }
    }
    moves
        .iter()
        .zip(keep)
        .filter_map(|(mv, k)| k.then_some(mv))
        .collect()
}

/// Remove `M2` on blue nodes and `M1` on red nodes: both leave the label
/// unchanged while the former costs weight.
fn drop_redundant_label_moves(
    graph: &Cdag,
    moves: MoveStream,
    stats: &mut PeepholeStats,
) -> MoveStream {
    let mut red = RedSet::new(graph.len());
    let mut blue = RedSet::new(graph.len());
    for &v in graph.sources() {
        blue.insert(v, 0);
    }
    let mut out = MoveStream::with_capacity(moves.len());
    for mv in moves.iter() {
        let v = mv.node();
        match mv {
            Move::Store(_) if blue.contains(v) => {
                stats.redundant_stores += 1;
                continue;
            }
            Move::Load(_) if red.contains(v) => {
                stats.redundant_loads += 1;
                continue;
            }
            Move::Load(_) | Move::Compute(_) => {
                red.insert(v, 0);
            }
            Move::Store(_) => {
                blue.insert(v, 0);
            }
            Move::Delete(_) => {
                red.remove(v, 0);
            }
        }
        out.push(mv);
    }
    out
}

/// Remove adjacent `M4(v), M1(v)` pairs: between the two moves nothing
/// happens, so keeping the red pebble is valid, saves `w_v` of cost, and
/// never raises the peak (the weight was held immediately before and
/// after anyway).
fn drop_delete_load_pairs(moves: MoveStream, stats: &mut PeepholeStats) -> MoveStream {
    let mut out = MoveStream::with_capacity(moves.len());
    for mv in moves.iter() {
        match (out.last(), mv) {
            (Some(Move::Delete(d)), Move::Load(l)) if d == l => {
                out.pop();
                stats.delete_load_pairs += 1;
            }
            _ => out.push(mv),
        }
    }
    out
}

/// Remove the maximal suffix of `M4` moves: once no further move follows,
/// evictions free memory nobody uses.
fn drop_trailing_deletes(moves: &mut MoveStream, stats: &mut PeepholeStats) {
    while matches!(moves.last(), Some(Move::Delete(_))) {
        moves.pop();
        stats.trailing_deletes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CdagBuilder, NodeId};
    use crate::validate::validate_schedule;

    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    #[test]
    fn removes_delete_load_pair() {
        let g = add_graph();
        let (x, y, s) = (NodeId(0), NodeId(1), NodeId(2));
        let sched = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Delete(x), // pointless round trip
            Move::Load(x),
            Move::Load(y),
            Move::Compute(s),
            Move::Store(s),
        ]);
        let before = validate_schedule(&g, 64, &sched).unwrap();
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.delete_load_pairs, 1);
        let after = validate_schedule(&g, 64, &opt).unwrap();
        assert_eq!(after.cost + 16, before.cost);
        assert!(after.peak_red_weight <= before.peak_red_weight);
    }

    #[test]
    fn removes_redundant_store_and_load() {
        let g = add_graph();
        let (x, y, s) = (NodeId(0), NodeId(1), NodeId(2));
        let sched = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Load(x),  // x already red
            Move::Store(x), // x already blue (input)
            Move::Load(y),
            Move::Compute(s),
            Move::Store(s),
        ]);
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.redundant_loads, 1);
        assert_eq!(stats.redundant_stores, 1);
        let after = validate_schedule(&g, 64, &opt).unwrap();
        assert_eq!(after.cost, 16 + 16 + 32);
    }

    #[test]
    fn removes_trailing_deletes_only() {
        let g = add_graph();
        let (x, y, s) = (NodeId(0), NodeId(1), NodeId(2));
        let sched = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Load(y),
            Move::Compute(s),
            Move::Store(s),
            Move::Delete(x),
            Move::Delete(y),
            Move::Delete(s),
        ]);
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.trailing_deletes, 3);
        assert_eq!(opt.len(), 4);
        validate_schedule(&g, 64, &opt).unwrap();
    }

    #[test]
    fn interior_deletes_are_kept() {
        // The delete between the two computes is load-bearing (budget!).
        let g = add_graph();
        let (x, y, s) = (NodeId(0), NodeId(1), NodeId(2));
        let sched = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Load(y),
            Move::Compute(s),
            Move::Delete(x),
            Move::Store(s),
        ]);
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.removed(), 0);
        assert_eq!(opt.moves(), sched.moves());
    }

    #[test]
    fn fixed_point_handles_cascades() {
        // Store(x) becomes redundant only after the M4/M1 pair collapses?
        // Construct: Load x, Delete x, Load x, Store x — after pair removal
        // the store is on a both-labelled node and gets removed too... it
        // would be removed anyway (inputs are blue), so build a cascade on
        // an interior node instead.
        let g = add_graph();
        let (x, y, s) = (NodeId(0), NodeId(1), NodeId(2));
        let sched = Schedule::from_moves(vec![
            Move::Load(x),
            Move::Load(y),
            Move::Compute(s),
            Move::Store(s),
            Move::Delete(s), // pair with the next load
            Move::Load(s),
            Move::Store(s), // redundant once s stays red+blue
        ]);
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.delete_load_pairs, 1);
        assert_eq!(stats.redundant_stores, 1);
        let after = validate_schedule(&g, 96, &opt).unwrap();
        assert_eq!(after.cost, 16 + 16 + 32);
    }

    #[test]
    fn generators_emit_already_tight_schedules() {
        // The DWT DP's output should be a peephole fixed point (nothing to
        // remove) — a regression guard on generator quality.
        use crate::bounds::min_feasible_budget;
        let g = add_graph();
        let b = min_feasible_budget(&g);
        let sched = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
        ]);
        let (opt, stats) = peephole(&g, &sched);
        assert_eq!(stats.removed(), 0);
        assert_eq!(opt.len(), sched.len());
        validate_schedule(&g, b, &opt).unwrap();
    }
}
