//! Model-level bounds: schedule existence (Prop. 2.3), the algorithmic
//! lower bound (Prop. 2.4), and per-state admissible lower bounds for
//! best-first search ([`StateBounds`]).
//!
//! The per-state bounds generalize Prop. 2.4 from the initial position to an
//! arbitrary mid-game snapshot `(red, blue)`: the *remaining-work* bound
//! restricts the loads/stores it counts to not-yet-blue sinks and
//! never-loaded sources that provably still have to move, the
//! *forced-reload* bound additionally charges for the cheapest chain of
//! loads that can restore an evicted-but-still-needed value, and the
//! *landmark-pdb* tier strengthens forced-reload further with cut-based
//! landmark reload charges and an abstraction pattern database (see
//! [`StateBounds::with_budget`]).  All are admissible (never exceed the true
//! remaining optimal cost), which is what lets the exact solver run A\*
//! instead of uniform-cost Dijkstra.

use crate::graph::{Cdag, NodeId, Weight};
use crate::mask::{mask_iter, mask_weight, StateMask};
use std::cell::RefCell;

/// The algorithmic lower bound of Proposition 2.4:
///
/// `Σ_{v ∈ A(G)} w_v + Σ_{v ∈ Z(G)} w_v ≤ Cost(S_G)` for every valid
/// schedule — every input must be loaded at least once and every output
/// stored at least once.
pub fn algorithmic_lower_bound(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| graph.is_source(v) || graph.is_sink(v))
        .map(|v| graph.weight(v))
        .sum()
}

/// The smallest budget for which *any* valid WRBPG schedule exists
/// (Proposition 2.3): `max_{v ∉ A(G)} ( w_v + Σ_{p ∈ H(v)} w_p )`.
///
/// Computing a node requires the node and all its parents to be
/// simultaneously red, so this is both necessary and (with eager spilling)
/// sufficient.
pub fn min_feasible_budget(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| !graph.is_source(v))
        .map(|v| {
            graph.weight(v)
                + graph
                    .preds(v)
                    .iter()
                    .map(|&p| graph.weight(p))
                    .sum::<Weight>()
        })
        .max()
        .unwrap_or(0)
}

/// Schedule existence (Proposition 2.3): a valid schedule exists for budget
/// `b` iff `w_v + Σ_{p ∈ H(v)} w_p ≤ b` for all non-source nodes `v`.
pub fn schedule_exists(graph: &Cdag, budget: Weight) -> bool {
    budget >= min_feasible_budget(graph)
}

/// Which admissible per-state lower bound a best-first search applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Heuristic {
    /// `h ≡ 0`: best-first search degenerates to uniform-cost Dijkstra.
    None,
    /// Prop. 2.4 restricted to the not-yet-done endpoints: every not-yet-blue
    /// sink still costs one store, and every never-loaded source that must
    /// become red still costs one load.
    RemainingWork,
    /// [`Heuristic::RemainingWork`] strengthened with a forced-reload chain
    /// bound: when a needed interior value has been evicted, the cheapest way
    /// back to red is a chain of loads, and the best such chain is still a
    /// valid lower bound.
    ForcedReload,
    /// [`Heuristic::ForcedReload`] strengthened twice over, and the default:
    /// budget-cut *landmarks* charge the reloads a tight pivot provably
    /// forces, and a small abstraction *pattern database* prices the moves a
    /// chosen node subset still owes exactly.  Needs the budget at
    /// construction ([`StateBounds::with_budget`]); a [`StateBounds::new`]
    /// context evaluates this tier as plain forced-reload.
    #[default]
    LandmarkPdb,
}

impl Heuristic {
    /// Stable CLI names, matching
    /// `--heuristic {none,remaining-work,forced-reload,landmark-pdb}`.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::None => "none",
            Heuristic::RemainingWork => "remaining-work",
            Heuristic::ForcedReload => "forced-reload",
            Heuristic::LandmarkPdb => "landmark-pdb",
        }
    }

    /// Parse a CLI name; inverse of [`Heuristic::name`].
    pub fn parse(s: &str) -> Option<Heuristic> {
        match s {
            "none" => Some(Heuristic::None),
            "remaining-work" => Some(Heuristic::RemainingWork),
            "forced-reload" => Some(Heuristic::ForcedReload),
            "landmark-pdb" => Some(Heuristic::LandmarkPdb),
            _ => None,
        }
    }
}

/// Fold a node list into a mask of any [`StateMask`] width.
pub fn nodes_to_mask<M: StateMask>(nodes: &[NodeId]) -> M {
    nodes.iter().fold(M::empty(), |m, v| m.set(v.index()))
}

/// At most this many budget-cut landmarks are retained per instance; the
/// per-state evaluation re-checks each retained pivot, so the cap bounds the
/// landmark term's cost at a handful of mask closures.
const LANDMARK_CAP: usize = 4;

/// Pattern-database projection width: `4^PDB_CAP` abstract states bound the
/// per-instance build (reverse Dijkstra over at most 4096 states), which
/// keeps construction cheap enough for the conformance sweep's thousands of
/// per-probe solver calls.
const PDB_CAP: usize = 6;

/// A retained budget-cut landmark: computing `pivot` pins its closed
/// neighborhood `N(z) = {z} ∪ preds(z)` red simultaneously, so any source
/// consumed both before and after that moment and too heavy for the
/// leftover budget must be reloaded afterwards.
#[derive(Debug, Clone)]
struct Landmark<M: StateMask> {
    pivot: u32,
    /// `N(z)`: the pivot plus its predecessors.
    group_mask: M,
    /// Red weight the budget has left beside `N(z)`:
    /// `budget − (w(z) + Σ w(preds(z)))`, saturating.
    free: Weight,
}

/// Abstraction pattern database over a fixed node subset `P`: the table maps
/// the blue-set projection `blue ∩ P` to the cheapest abstract completion
/// cost, where the abstract game keeps only `P`'s nodes, relaxes every
/// out-of-`P` dependency, and retains the real weighted budget.
#[derive(Debug, Clone)]
struct Pdb<M: StateMask> {
    /// Pattern members in ascending node order; bit `i` of a table key is
    /// `nodes[i]`'s blue status.
    nodes: Vec<u32>,
    /// Cheapest abstract completion cost per blue projection (`2^|P|` keys).
    table: Vec<Weight>,
    /// Sinks outside the pattern (their stores are disjoint from `P` moves).
    out_sink_mask: M,
    /// Sources outside the pattern (their loads are disjoint from `P` moves).
    out_source_mask: M,
}

thread_local! {
    /// Scratch for the forced-reload DP so the per-state evaluation never
    /// allocates.  Entries are only valid for cone members written during the
    /// current call; red members are written explicitly (0) for that reason.
    static MK_SCRATCH: RefCell<Vec<Weight>> = const { RefCell::new(Vec::new()) };
}

/// Precomputed context for evaluating admissible lower bounds on packed
/// `(red, blue)` game states of a fixed graph (one bit per node; the mask
/// type `M` sets the node-count ceiling — `u64` covers 64 nodes, wider
/// [`crate::Words`] masks up to `M::BITS`).
///
/// Construction walks the graph once; each bound evaluation is then a few
/// linear mask passes and never touches the graph again, so it is cheap
/// enough to run on every generated search state.
#[derive(Debug, Clone)]
pub struct StateBounds<M: StateMask = u64> {
    weights: Vec<Weight>,
    pred_masks: Vec<M>,
    succ_masks: Vec<M>,
    /// Ancestors-or-self per node: the cone of nodes whose status can change
    /// the forced-reload DP value at this node.
    anc_masks: Vec<M>,
    /// Forced-reload DP values at the all-empty state (`red = blue = ∅`) —
    /// the pointwise maximum over every state, exact whenever no cone member
    /// is red or blue-interior.
    root_mk: Vec<Weight>,
    topo: Vec<NodeId>,
    source_mask: M,
    sink_mask: M,
    load_scale: Weight,
    store_scale: Weight,
    /// Budget-cut landmarks; empty unless built by
    /// [`StateBounds::with_budget`].
    landmarks: Vec<Landmark<M>>,
    /// Pattern database; `None` unless built by [`StateBounds::with_budget`].
    pdb: Option<Pdb<M>>,
}

impl<M: StateMask> StateBounds<M> {
    /// Build the bound context for `graph` with per-bit I/O costs
    /// (`load_scale` per loaded bit, `store_scale` per stored bit).
    ///
    /// The budget-dependent [`Heuristic::LandmarkPdb`] extras are *not*
    /// built — that tier evaluates as [`Heuristic::ForcedReload`] on this
    /// context.  Use [`StateBounds::with_budget`] when the search budget is
    /// known.
    ///
    /// # Panics
    ///
    /// Panics when the graph has more nodes than `M` has bits (the
    /// packed-mask limit of the chosen width).
    pub fn new(graph: &Cdag, load_scale: Weight, store_scale: Weight) -> Self {
        let n = graph.len();
        assert!(
            n <= M::BITS,
            "per-state bounds support at most {} nodes at this mask width (got {n})",
            M::BITS
        );
        let weights: Vec<Weight> = (0..n).map(|v| graph.weight(NodeId(v as u32))).collect();
        let pred_masks: Vec<M> = (0..n)
            .map(|v| nodes_to_mask(graph.preds(NodeId(v as u32))))
            .collect();
        let succ_masks: Vec<M> = (0..n)
            .map(|v| nodes_to_mask(graph.succs(NodeId(v as u32))))
            .collect();
        let topo = graph.topo_order().to_vec();
        let source_mask: M = nodes_to_mask(graph.sources());
        let load_scale_ = load_scale;

        // Ancestor cones and the all-empty-state DP values, both in one
        // topological pass: anc(v) = {v} ∪ ⋃_p anc(p), and root_mk is the
        // forced-reload recurrence with nothing red and nothing blue (its
        // pointwise maximum over all states).
        let mut anc_masks = vec![M::empty(); n];
        let mut root_mk = vec![0 as Weight; n];
        for &v in &topo {
            let i = v.index();
            let mut anc = M::bit(i);
            let mut via_preds = 0;
            for p in mask_iter(pred_masks[i]) {
                anc = anc | anc_masks[p.index()];
                via_preds = via_preds.max(root_mk[p.index()]);
            }
            anc_masks[i] = anc;
            root_mk[i] = if source_mask.get(i) {
                load_scale_ * weights[i]
            } else {
                via_preds
            };
        }

        StateBounds {
            weights,
            pred_masks,
            succ_masks,
            anc_masks,
            root_mk,
            topo,
            source_mask,
            sink_mask: nodes_to_mask(graph.sinks()),
            load_scale,
            store_scale,
            landmarks: Vec::new(),
            pdb: None,
        }
    }

    /// Build the bound context *and* the budget-dependent
    /// [`Heuristic::LandmarkPdb`] extras: budget-cut landmarks (retained by
    /// their root-state charge, at most [`LANDMARK_CAP`]) and the abstraction
    /// pattern database (reverse Dijkstra over at most `4^PDB_CAP` abstract
    /// states).  Construction is deterministic — ties break on node index —
    /// and happens once per instance.
    pub fn with_budget(
        graph: &Cdag,
        load_scale: Weight,
        store_scale: Weight,
        budget: Weight,
    ) -> Self {
        let mut sb = Self::new(graph, load_scale, store_scale);
        sb.landmarks = sb.build_landmarks(budget);
        sb.pdb = sb.build_pdb(budget);
        sb
    }

    /// The "must still become red" closure `R*` of a state.
    ///
    /// Seeded with every sink that is neither red nor blue (it has to be
    /// computed before it can be stored), then closed backwards: a member
    /// that is not blue can only first turn red via M3 (compute) — an M1
    /// load needs a blue pebble, and earning one takes an M2 store which
    /// itself needs the node red first — so all its non-red predecessors
    /// must become red too.  Blue members stop the recursion (they may
    /// simply be reloaded).  Every member is non-red by construction.
    pub fn needed_mask(&self, red: M, blue: M) -> M {
        let mut need = self.sink_mask & !blue & !red;
        let mut frontier = need;
        while !frontier.is_empty() {
            let mut next = M::empty();
            for v in mask_iter(frontier) {
                if !blue.get(v.index()) {
                    next = next | (self.pred_masks[v.index()] & !red & !need);
                }
            }
            need = need | next;
            frontier = next;
        }
        need
    }

    /// Stores that must still happen: every not-yet-blue sink needs at least
    /// one M2, and those events are pairwise distinct moves.
    pub fn store_bound(&self, blue: M) -> Weight {
        self.store_scale * mask_weight(self.sink_mask & !blue, &self.weights)
    }

    /// The remaining-work bound: unavoidable sink stores plus unavoidable
    /// source loads (a source in `R*` can only become red via M1 — sources
    /// have no predecessors to compute from).  Admissible because the counted
    /// moves are pairwise distinct events of any completing schedule.
    pub fn remaining_work(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        self.store_bound(blue)
            + self.load_scale * mask_weight(need & self.source_mask, &self.weights)
    }

    /// The forced-reload chain term `max_{u ∈ R*} mk(u)`.
    ///
    /// For each node `u`, `mk(u)` lower-bounds the load cost any schedule
    /// pays before `u` can next be red: zero if `u` is red; `load·w_u` if `u`
    /// is a source (only M1 applies); for interior nodes the compute route
    /// needs every predecessor red, which costs at least `max_p mk(p)` (max,
    /// not sum — predecessor chains may share ancestors), and a blue interior
    /// node may instead be reloaded directly for `load·w_u`, so `mk` takes
    /// the cheaper route.
    ///
    /// The DP is hoisted: `mk` differs from the precomputed all-empty-state
    /// values only where a red or blue-interior node sits in a needed node's
    /// ancestor cone, so the common case is a pure masked fold over
    /// `root_mk` and the general case re-runs the recurrence on cone members
    /// only, in thread-local scratch (no allocation either way).
    fn reload_chain(&self, red: M, blue: M, need: M) -> Weight {
        if need.is_empty() {
            return 0;
        }
        let mut cone = M::empty();
        for u in mask_iter(need) {
            cone = cone | self.anc_masks[u.index()];
        }
        // Nodes whose status discounts the recurrence below its root value:
        // red anywhere, or blue off-source (the direct-reload shortcut).
        let dirty = (red | (blue & !self.source_mask)) & cone;
        if dirty.is_empty() {
            return mask_iter(need)
                .map(|u| self.root_mk[u.index()])
                .max()
                .unwrap_or(0);
        }
        MK_SCRATCH.with(|scratch| {
            let mut mk = scratch.borrow_mut();
            if mk.len() < self.weights.len() {
                mk.resize(self.weights.len(), 0);
            }
            for &v in &self.topo {
                let i = v.index();
                if !cone.get(i) {
                    continue;
                }
                if red.get(i) {
                    mk[i] = 0;
                    continue;
                }
                let direct = self.load_scale * self.weights[i];
                if self.source_mask.get(i) {
                    mk[i] = direct;
                    continue;
                }
                let via_preds = mask_iter(self.pred_masks[i])
                    .map(|p| mk[p.index()])
                    .max()
                    .unwrap_or(0);
                mk[i] = if blue.get(i) {
                    direct.min(via_preds)
                } else {
                    via_preds
                };
            }
            mask_iter(need).map(|u| mk[u.index()]).max().unwrap_or(0)
        })
    }

    /// The forced-reload bound: [`StateBounds::store_bound`] plus the larger
    /// of the source-load term and the best forced-reload chain.  The chain
    /// term counts load events only, which may coincide with the source-load
    /// term's, so the two are combined with `max`, while store events are
    /// disjoint from both and add.
    pub fn forced_reload(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        let load_term = self.load_scale * mask_weight(need & self.source_mask, &self.weights);
        let chain = self.reload_chain(red, blue, need);
        self.store_bound(blue) + load_term.max(chain)
    }

    /// The pre-hoist forced-reload evaluation (fresh full-width DP per call).
    /// Kept for the equivalence proptests and the `bench_exact` hoist
    /// micro-bench; not used on the search path.
    #[doc(hidden)]
    pub fn forced_reload_reference(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        let load_term = self.load_scale * mask_weight(need & self.source_mask, &self.weights);

        let mut mk = vec![0 as Weight; self.weights.len()];
        for &v in &self.topo {
            let i = v.index();
            if red.get(i) {
                continue; // mk = 0
            }
            let direct = self.load_scale * self.weights[i];
            if self.source_mask.get(i) {
                mk[i] = direct;
                continue;
            }
            let via_preds = mask_iter(self.pred_masks[i])
                .map(|p| mk[p.index()])
                .max()
                .unwrap_or(0);
            mk[i] = if blue.get(i) {
                direct.min(via_preds)
            } else {
                via_preds
            };
        }
        let chain = mask_iter(need).map(|u| mk[u.index()]).max().unwrap_or(0);

        self.store_bound(blue) + load_term.max(chain)
    }

    /// Identify budget-cut landmarks at the root state (`red = ∅`,
    /// `blue = sources`) and retain the [`LANDMARK_CAP`] strongest, ordered
    /// by root charge descending with node-index tie-break.  Retention is a
    /// selection heuristic only — admissibility is re-established per state
    /// by [`StateBounds::landmark_extra`].
    fn build_landmarks(&self, budget: Weight) -> Vec<Landmark<M>> {
        let red = M::empty();
        let blue = self.source_mask;
        let need = self.needed_mask(red, blue);
        let mut scored: Vec<(Weight, u32)> = Vec::new();
        let mut candidates: Vec<Landmark<M>> = Vec::new();
        for z in 0..self.weights.len() {
            if self.source_mask.get(z) {
                continue; // a pivot must be computable
            }
            let group_mask = self.pred_masks[z].set(z);
            let group_weight = mask_weight(group_mask, &self.weights);
            let lm = Landmark {
                pivot: z as u32,
                group_mask,
                free: budget.saturating_sub(group_weight),
            };
            let extra = self.landmark_extra(&lm, red, blue, need);
            if extra > 0 {
                scored.push((extra, z as u32));
                candidates.push(lm);
            }
        }
        let mut order: Vec<usize> = (0..scored.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(scored[i].0), scored[i].1));
        order
            .into_iter()
            .take(LANDMARK_CAP)
            .map(|i| candidates[i].clone())
            .collect()
    }

    /// Per-state landmark charge for one retained pivot `z`.
    ///
    /// Valid only when `z ∈ R*` and `z` is not blue — then `z`'s first
    /// return to red is a compute, at which moment `red ⊇ N(z)` and at most
    /// `free = budget − w(N(z))` weight of anything else fits.  A source
    /// outside `N(z)` that is consumed by a forced compute *before* that
    /// moment and by one *after* it must be red on both sides; whatever part
    /// of that source set exceeds `free` is provably non-red at the pivot
    /// moment and must be reloaded afterwards.  Those reload events are
    /// disjoint from the first-load events the source-load term counts
    /// (first loads happen before the pivot moment), so the two *add*.
    fn landmark_extra(&self, lm: &Landmark<M>, red: M, blue: M, need: M) -> Weight {
        let z = lm.pivot as usize;
        if !need.get(z) || blue.get(z) {
            return 0;
        }
        // Forced computes strictly before the pivot moment: the backward
        // closure of z's non-red, non-blue predecessors through non-red,
        // non-blue nodes (each must first become red via compute, before z).
        let mut before = self.pred_masks[z] & !red & !blue;
        let mut frontier = before;
        while !frontier.is_empty() {
            let mut next = M::empty();
            for v in mask_iter(frontier) {
                next = next | (self.pred_masks[v.index()] & !red & !blue & !before);
            }
            before = before | next;
            frontier = next;
        }
        if before.is_empty() {
            return 0;
        }
        // Forced computes strictly after the pivot moment: the forward
        // closure of z's needed non-blue successors through needed non-blue
        // nodes (each consumes a value first produced at or after z's
        // compute).
        let mut after = self.succ_masks[z] & need & !blue;
        let mut frontier = after;
        while !frontier.is_empty() {
            let mut next = M::empty();
            for v in mask_iter(frontier) {
                next = next | (self.succ_masks[v.index()] & need & !blue & !after);
            }
            after = after | next;
            frontier = next;
        }
        if after.is_empty() {
            return 0;
        }
        // Sources outside N(z) consumed on both sides of the pivot moment.
        let mut crossing = 0;
        let mut members: [Weight; 6] = [0; 6];
        let mut count = 0usize;
        for s in mask_iter(self.source_mask & !lm.group_mask) {
            let consumers = self.succ_masks[s.index()];
            if !(consumers & before).is_empty() && !(consumers & after).is_empty() {
                crossing += self.weights[s.index()];
                if count < members.len() {
                    members[count] = self.weights[s.index()];
                }
                count += 1;
            }
        }
        // Sources are atomic, so the resident crossing weight at the pivot
        // moment is the best *subset* sum fitting `free` — enumerated
        // exactly while the crossing set is small, else relaxed to `free`
        // itself (still admissible, possibly looser).
        let resident = if count <= members.len() {
            let mut best = 0;
            for pick in 0u32..(1 << count) {
                let total: Weight = (0..count)
                    .filter(|&i| pick & (1 << i) != 0)
                    .map(|i| members[i])
                    .sum();
                if total <= lm.free && total > best {
                    best = total;
                }
            }
            best
        } else {
            lm.free
        };
        self.load_scale * crossing.saturating_sub(resident)
    }

    /// Choose the pattern subset deterministically: sinks by descending
    /// weight, then the heaviest closed neighborhood `N(z*)` (the Prop. 2.3
    /// bottleneck — where the budget bites hardest), then the heaviest
    /// remaining nodes; node-index tie-breaks throughout, capped at
    /// [`PDB_CAP`] members.
    fn choose_pattern(&self) -> Vec<u32> {
        let n = self.weights.len();
        let by_weight = |ids: Vec<u32>| -> Vec<u32> {
            let mut v = ids;
            v.sort_by_key(|&i| (std::cmp::Reverse(self.weights[i as usize]), i));
            v
        };
        let sinks = by_weight(
            mask_iter(self.sink_mask)
                .map(|v| v.index() as u32)
                .collect(),
        );
        let bottleneck = (0..n)
            .filter(|&z| !self.source_mask.get(z))
            .max_by_key(|&z| {
                (
                    mask_weight(self.pred_masks[z].set(z), &self.weights),
                    std::cmp::Reverse(z),
                )
            });
        let group = bottleneck.map_or_else(Vec::new, |z| {
            by_weight(
                mask_iter(self.pred_masks[z].set(z))
                    .map(|v| v.index() as u32)
                    .collect(),
            )
        });
        let rest = by_weight((0..n as u32).collect());

        let mut pattern: Vec<u32> = Vec::new();
        for id in sinks.into_iter().chain(group).chain(rest) {
            if pattern.len() == PDB_CAP {
                break;
            }
            if !pattern.contains(&id) {
                pattern.push(id);
            }
        }
        pattern.sort_unstable();
        pattern
    }

    /// Build the pattern database: enumerate every abstract `(red_P, blue_P)`
    /// state with `w(red_P) ≤ budget`, reverse-Dijkstra from the abstract
    /// goals (`blue_P ⊇ sinks ∩ P`), then project to blue keys by minimizing
    /// over the red coordinate.
    ///
    /// The abstract game keeps the real budget and the real per-node rules
    /// restricted to `P`: load needs the node blue, store needs it red,
    /// compute needs the in-`P` predecessors red (out-of-`P` dependencies are
    /// relaxed away) and is forbidden for real sources, delete is free.  The
    /// `P`-projection of any real completion is a valid abstract play of no
    /// larger cost, so the table value under-estimates the real cost of the
    /// moves any completion still spends on `P`'s nodes — and those moves are
    /// disjoint from out-of-`P` sink stores and source loads, so the three
    /// terms of [`StateBounds::landmark_pdb`]'s PDB component add.
    fn build_pdb(&self, budget: Weight) -> Option<Pdb<M>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let nodes = self.choose_pattern();
        let k = nodes.len();
        if k < 2 {
            return None;
        }
        let w: Vec<Weight> = nodes.iter().map(|&i| self.weights[i as usize]).collect();
        // In-pattern predecessor masks and real-source / sink flags, all in
        // pattern-bit space.
        let mut pred_bits = vec![0u32; k];
        let mut source_bits = 0u32;
        let mut sink_bits = 0u32;
        for (bi, &id) in nodes.iter().enumerate() {
            for (bj, &jd) in nodes.iter().enumerate() {
                if self.pred_masks[id as usize].get(jd as usize) {
                    pred_bits[bi] |= 1 << bj;
                }
            }
            if self.source_mask.get(id as usize) {
                source_bits |= 1 << bi;
            }
            if self.sink_mask.get(id as usize) {
                sink_bits |= 1 << bi;
            }
        }
        // Red-set weights, and which red sets fit the budget.
        let reds = 1usize << k;
        let mut red_weight = vec![0 as Weight; reds];
        for r in 1..reds {
            let low = r.trailing_zeros() as usize;
            red_weight[r] = red_weight[r & (r - 1)] + w[low];
        }

        // state = red | (blue << k); dist = cheapest abstract completion.
        let states = 1usize << (2 * k);
        let mut dist = vec![Weight::MAX; states];
        let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
        for (s, d) in dist.iter_mut().enumerate() {
            let r = s & (reds - 1);
            let b = s >> k;
            if red_weight[r] > budget {
                continue;
            }
            if b & sink_bits as usize == sink_bits as usize {
                *d = 0;
                heap.push(Reverse((0, s as u32)));
            }
        }
        // Reverse relaxation: for a settled state s, enumerate the abstract
        // moves that *arrive* at s and relax their origins.
        while let Some(Reverse((d, s))) = heap.pop() {
            let s = s as usize;
            if d > dist[s] {
                continue;
            }
            let r = s & (reds - 1);
            let b = s >> k;
            for v in 0..k {
                let bit = 1usize << v;
                // load v arrived here: v red and blue now; origin dropped v
                // from red and paid load·w.
                if r & bit != 0 && b & bit != 0 {
                    let t = (r & !bit) | (b << k);
                    let nd = d + self.load_scale * w[v];
                    if nd < dist[t] {
                        dist[t] = nd;
                        heap.push(Reverse((nd, t as u32)));
                    }
                }
                // store v arrived here: v red and blue now; origin lacked the
                // blue pebble and paid store·w.
                if r & bit != 0 && b & bit != 0 {
                    let t = r | ((b & !bit) << k);
                    let nd = d + self.store_scale * w[v];
                    if nd < dist[t] {
                        dist[t] = nd;
                        heap.push(Reverse((nd, t as u32)));
                    }
                }
                // compute v arrived here: v red now, its in-pattern preds
                // red, and v is not a real source; free.
                if r & bit != 0
                    && source_bits & bit as u32 == 0
                    && r & pred_bits[v] as usize == pred_bits[v] as usize
                {
                    let t = (r & !bit) | (b << k);
                    if d < dist[t] {
                        dist[t] = d;
                        heap.push(Reverse((d, t as u32)));
                    }
                }
                // delete v arrived here: v not red now; origin held it (and
                // must itself fit the budget); free.
                if r & bit == 0 && red_weight[r | bit] <= budget {
                    let t = (r | bit) | (b << k);
                    if d < dist[t] {
                        dist[t] = d;
                        heap.push(Reverse((d, t as u32)));
                    }
                }
            }
        }
        // Blue-set projection: the table key is blue ∩ P alone, so take the
        // cheapest completion over every red coordinate (an unreachable
        // column degrades to the admissible 0, never an over-estimate).
        let table: Vec<Weight> = (0..(1usize << k))
            .map(|b| {
                (0..reds)
                    .map(|r| dist[r | (b << k)])
                    .min()
                    .filter(|&d| d != Weight::MAX)
                    .unwrap_or(0)
            })
            .collect();

        let pattern_mask: M = nodes.iter().fold(M::empty(), |m, &i| m.set(i as usize));
        Some(Pdb {
            nodes,
            table,
            out_sink_mask: self.sink_mask & !pattern_mask,
            out_source_mask: self.source_mask & !pattern_mask,
        })
    }

    /// The landmark-pdb bound: the maximum of the landmark-strengthened
    /// forced-reload bound and the pattern-database bound.  Falls back to
    /// plain forced-reload when the budget-dependent extras were not built
    /// ([`StateBounds::new`]).
    pub fn landmark_pdb(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        let store = self.store_bound(blue);
        let load_term = self.load_scale * mask_weight(need & self.source_mask, &self.weights);
        let chain = self.reload_chain(red, blue, need);
        let lmax = self
            .landmarks
            .iter()
            .map(|lm| self.landmark_extra(lm, red, blue, need))
            .max()
            .unwrap_or(0);
        // Landmark reloads add to the first-load term (disjoint events);
        // the chain may share load events with both, so it joins by max.
        let lm_bound = store + (load_term + lmax).max(chain);
        let pdb_bound = self.pdb.as_ref().map_or(0, |p| {
            let mut key = 0usize;
            for (bit, &v) in p.nodes.iter().enumerate() {
                if blue.get(v as usize) {
                    key |= 1 << bit;
                }
            }
            p.table[key]
                + self.store_scale * mask_weight(p.out_sink_mask & !blue, &self.weights)
                + self.load_scale * mask_weight(need & p.out_source_mask, &self.weights)
        });
        lm_bound.max(pdb_bound)
    }

    /// Evaluate the selected bound on a state.  Always admissible: the result
    /// never exceeds the true optimal remaining cost from `(red, blue)`.
    pub fn lower_bound(&self, red: M, blue: M, heuristic: Heuristic) -> Weight {
        match heuristic {
            Heuristic::None => 0,
            Heuristic::RemainingWork => self.remaining_work(red, blue),
            Heuristic::ForcedReload => self.forced_reload(red, blue),
            Heuristic::LandmarkPdb => self.landmark_pdb(red, blue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    /// A two-level chain: x(16) -> m(32) -> y(16)
    fn chain() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let m = b.node(32, "m");
        let y = b.node(16, "y");
        b.edge(x, m);
        b.edge(m, y);
        b.build().unwrap()
    }

    #[test]
    fn lower_bound_sums_sources_and_sinks() {
        let g = chain();
        // sources: x(16); sinks: y(16); interior m excluded.
        assert_eq!(algorithmic_lower_bound(&g), 32);
    }

    #[test]
    fn min_feasible_is_max_parent_closure() {
        let g = chain();
        // m needs 16+32 = 48; y needs 32+16 = 48.
        assert_eq!(min_feasible_budget(&g), 48);
        assert!(schedule_exists(&g, 48));
        assert!(!schedule_exists(&g, 47));
    }

    #[test]
    fn heuristic_names_round_trip() {
        for h in [
            Heuristic::None,
            Heuristic::RemainingWork,
            Heuristic::ForcedReload,
            Heuristic::LandmarkPdb,
        ] {
            assert_eq!(Heuristic::parse(h.name()), Some(h));
        }
        assert_eq!(Heuristic::parse("bogus"), None);
        assert_eq!(Heuristic::default(), Heuristic::LandmarkPdb);
    }

    #[test]
    fn start_state_bound_matches_prop_2_4() {
        // At the initial position (red = ∅, blue = sources) the per-state
        // bounds specialize exactly to the algorithmic lower bound.
        let g = chain();
        let sb = StateBounds::new(&g, 1, 1);
        let sources = 1u64; // x is node 0
        assert_eq!(sb.needed_mask(0, sources), 0b111);
        assert_eq!(sb.remaining_work(0, sources), algorithmic_lower_bound(&g));
        assert_eq!(sb.forced_reload(0, sources), algorithmic_lower_bound(&g));
    }

    #[test]
    fn forced_reload_charges_for_evicted_interior() {
        // x(16) -> m(32) -> y(16).  Mid-game: m was computed, stored, and
        // evicted; nothing is red.  R* is {y, m}: y must be computed, so m
        // must become red again, but m is blue so the closure stops there
        // (it may be reloaded) and the source x is not forced.  forced-reload
        // prices the cheapest way to get m red again: min(reload m = 32,
        // recompute via x = 16) = 16.
        let g = chain();
        let sb = StateBounds::new(&g, 1, 1);
        let blue: u64 = 0b011; // x (source) and m stored
        assert_eq!(sb.needed_mask(0, blue), 0b110); // sink y + evicted m
        assert_eq!(sb.remaining_work(0, blue), 16); // store y
        assert_eq!(sb.forced_reload(0, blue), 16 + 16); // store y + chain to m
                                                        // True remaining optimum: load x (16), compute m, compute y, store y
                                                        // (16) = 32, so the bound is tight here and admissible.
    }

    #[test]
    fn hoisted_forced_reload_matches_the_reference() {
        // Every (red, blue) pair over the 3-node chain: the cone-restricted
        // scratch DP must agree exactly with the fresh-allocation reference.
        let g = chain();
        let sb = StateBounds::<u64>::new(&g, 2, 3);
        for red in 0u64..8 {
            for blue in 0u64..8 {
                assert_eq!(
                    sb.forced_reload(red, blue),
                    sb.forced_reload_reference(red, blue),
                    "red={red:03b} blue={blue:03b}"
                );
            }
        }
    }

    #[test]
    fn bounds_are_zero_at_goal() {
        let g = chain();
        let sb = StateBounds::with_budget(&g, 1, 1, 48);
        let all: u64 = 0b111;
        assert_eq!(sb.remaining_work(0, all), 0);
        assert_eq!(sb.forced_reload(0, all), 0);
        assert_eq!(sb.landmark_pdb(0, all), 0);
        assert_eq!(sb.lower_bound(0, all, Heuristic::LandmarkPdb), 0);
    }

    #[test]
    fn io_scales_multiply_the_bound_terms() {
        let g = chain();
        let sb = StateBounds::new(&g, 3, 5);
        let sources = 1u64;
        // 3 × load(x=16) vs chain (same events) + 5 × store(y=16).
        assert_eq!(sb.remaining_work(0, sources), 3 * 16 + 5 * 16);
        assert_eq!(sb.forced_reload(0, sources), 3 * 16 + 5 * 16);
    }

    #[test]
    fn wide_join_dominates() {
        let mut b = CdagBuilder::new();
        let inputs: Vec<_> = (0..4).map(|i| b.node(16, format!("x{i}"))).collect();
        let s = b.node(32, "sum");
        for &x in &inputs {
            b.edge(x, s);
        }
        let g = b.build().unwrap();
        assert_eq!(min_feasible_budget(&g), 4 * 16 + 32);
        assert_eq!(algorithmic_lower_bound(&g), 4 * 16 + 32);
    }

    #[test]
    fn landmark_pdb_without_budget_falls_back_to_forced_reload() {
        let g = chain();
        let sb = StateBounds::<u64>::new(&g, 1, 1);
        for red in 0u64..8 {
            for blue in 0u64..8 {
                assert_eq!(sb.landmark_pdb(red, blue), sb.forced_reload(red, blue));
            }
        }
    }

    #[test]
    fn landmark_pdb_dominates_forced_reload_pointwise() {
        let g = chain();
        let sb = StateBounds::<u64>::with_budget(&g, 1, 1, 48);
        for red in 0u64..8 {
            for blue in 0u64..8 {
                assert!(
                    sb.landmark_pdb(red, blue) >= sb.forced_reload(red, blue),
                    "red={red:03b} blue={blue:03b}"
                );
            }
        }
    }

    /// s(2) -> a(4) -> z(1) -> c(1), plus s -> c: computing z pins {a, z}
    /// (weight 5) red, so at budget 6 the crossing source s (needed before
    /// z for a, and after z for c) cannot stay resident and must reload.
    fn crossing() -> Cdag {
        let mut b = CdagBuilder::new();
        let s = b.node(2, "s");
        let a = b.node(4, "a");
        let z = b.node(1, "z");
        let c = b.node(1, "c");
        b.edge(s, a);
        b.edge(a, z);
        b.edge(z, c);
        b.edge(s, c);
        b.build().unwrap()
    }

    #[test]
    fn landmark_charges_the_budget_forced_reload() {
        let g = crossing();
        assert_eq!(min_feasible_budget(&g), 6); // a: 4 + 2
        let sb = StateBounds::<u64>::with_budget(&g, 1, 1, 6);
        let root_red = 0u64;
        let root_blue = 0b0001; // source s
                                // forced-reload sees: store c (1) + max(load s = 2, chain 2) = 3.
        assert_eq!(sb.forced_reload(root_red, root_blue), 3);
        // The landmark at pivot z adds the forced s reload: free budget
        // beside N(z) = {a, z} is 6 − 5 = 1 < w(s) = 2, so one extra load
        // of s.  store c (1) + (load 2 + extra 2) = 5 — and 5 is the true
        // optimum (load s, compute a, delete s, compute z, delete a,
        // reload s, compute c, store c = 2 + 2 + 1).
        assert_eq!(sb.landmark_pdb(root_red, root_blue), 5);
    }

    #[test]
    fn pdb_projection_is_admissible_on_the_chain() {
        // Full-pattern PDB on the 3-node chain: the abstract game equals the
        // real game here, so the bound at the root must not exceed the true
        // optimum (32) and must keep the forced-reload floor.
        let g = chain();
        let sb = StateBounds::<u64>::with_budget(&g, 1, 1, 48);
        let b = sb.landmark_pdb(0, 0b001);
        assert!(b >= 32, "must keep the forced-reload floor, got {b}");
        assert!(b <= 32, "must stay admissible (true optimum 32), got {b}");
    }
}
