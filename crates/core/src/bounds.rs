//! Model-level bounds: schedule existence (Prop. 2.3), the algorithmic
//! lower bound (Prop. 2.4), and per-state admissible lower bounds for
//! best-first search ([`StateBounds`]).
//!
//! The per-state bounds generalize Prop. 2.4 from the initial position to an
//! arbitrary mid-game snapshot `(red, blue)`: the *remaining-work* bound
//! restricts the loads/stores it counts to not-yet-blue sinks and
//! never-loaded sources that provably still have to move, and the
//! *forced-reload* bound additionally charges for the cheapest chain of
//! loads that can restore an evicted-but-still-needed value.  Both are
//! admissible (never exceed the true remaining optimal cost), which is what
//! lets the exact solver run A\* instead of uniform-cost Dijkstra.

use crate::graph::{Cdag, NodeId, Weight};
use crate::mask::{mask_iter, mask_weight, StateMask};

/// The algorithmic lower bound of Proposition 2.4:
///
/// `Σ_{v ∈ A(G)} w_v + Σ_{v ∈ Z(G)} w_v ≤ Cost(S_G)` for every valid
/// schedule — every input must be loaded at least once and every output
/// stored at least once.
pub fn algorithmic_lower_bound(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| graph.is_source(v) || graph.is_sink(v))
        .map(|v| graph.weight(v))
        .sum()
}

/// The smallest budget for which *any* valid WRBPG schedule exists
/// (Proposition 2.3): `max_{v ∉ A(G)} ( w_v + Σ_{p ∈ H(v)} w_p )`.
///
/// Computing a node requires the node and all its parents to be
/// simultaneously red, so this is both necessary and (with eager spilling)
/// sufficient.
pub fn min_feasible_budget(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| !graph.is_source(v))
        .map(|v| {
            graph.weight(v)
                + graph
                    .preds(v)
                    .iter()
                    .map(|&p| graph.weight(p))
                    .sum::<Weight>()
        })
        .max()
        .unwrap_or(0)
}

/// Schedule existence (Proposition 2.3): a valid schedule exists for budget
/// `b` iff `w_v + Σ_{p ∈ H(v)} w_p ≤ b` for all non-source nodes `v`.
pub fn schedule_exists(graph: &Cdag, budget: Weight) -> bool {
    budget >= min_feasible_budget(graph)
}

/// Which admissible per-state lower bound a best-first search applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Heuristic {
    /// `h ≡ 0`: best-first search degenerates to uniform-cost Dijkstra.
    None,
    /// Prop. 2.4 restricted to the not-yet-done endpoints: every not-yet-blue
    /// sink still costs one store, and every never-loaded source that must
    /// become red still costs one load.
    RemainingWork,
    /// [`Heuristic::RemainingWork`] strengthened with a forced-reload chain
    /// bound: when a needed interior value has been evicted, the cheapest way
    /// back to red is a chain of loads, and the best such chain is still a
    /// valid lower bound.
    #[default]
    ForcedReload,
}

impl Heuristic {
    /// Stable CLI names, matching `--heuristic {none,remaining-work,forced-reload}`.
    pub fn name(self) -> &'static str {
        match self {
            Heuristic::None => "none",
            Heuristic::RemainingWork => "remaining-work",
            Heuristic::ForcedReload => "forced-reload",
        }
    }

    /// Parse a CLI name; inverse of [`Heuristic::name`].
    pub fn parse(s: &str) -> Option<Heuristic> {
        match s {
            "none" => Some(Heuristic::None),
            "remaining-work" => Some(Heuristic::RemainingWork),
            "forced-reload" => Some(Heuristic::ForcedReload),
            _ => None,
        }
    }
}

/// Fold a node list into a mask of any [`StateMask`] width.
pub fn nodes_to_mask<M: StateMask>(nodes: &[NodeId]) -> M {
    nodes.iter().fold(M::empty(), |m, v| m.set(v.index()))
}

/// Precomputed context for evaluating admissible lower bounds on packed
/// `(red, blue)` game states of a fixed graph (one bit per node; the mask
/// type `M` sets the node-count ceiling — `u64` covers 64 nodes, wider
/// [`crate::Words`] masks up to `M::BITS`).
///
/// Construction walks the graph once; each bound evaluation is then a few
/// linear mask passes and never touches the graph again, so it is cheap
/// enough to run on every generated search state.
#[derive(Debug, Clone)]
pub struct StateBounds<M: StateMask = u64> {
    weights: Vec<Weight>,
    pred_masks: Vec<M>,
    topo: Vec<NodeId>,
    source_mask: M,
    sink_mask: M,
    load_scale: Weight,
    store_scale: Weight,
}

impl<M: StateMask> StateBounds<M> {
    /// Build the bound context for `graph` with per-bit I/O costs
    /// (`load_scale` per loaded bit, `store_scale` per stored bit).
    ///
    /// # Panics
    ///
    /// Panics when the graph has more nodes than `M` has bits (the
    /// packed-mask limit of the chosen width).
    pub fn new(graph: &Cdag, load_scale: Weight, store_scale: Weight) -> Self {
        let n = graph.len();
        assert!(
            n <= M::BITS,
            "per-state bounds support at most {} nodes at this mask width (got {n})",
            M::BITS
        );
        let weights = (0..n).map(|v| graph.weight(NodeId(v as u32))).collect();
        let pred_masks = (0..n)
            .map(|v| nodes_to_mask(graph.preds(NodeId(v as u32))))
            .collect();
        StateBounds {
            weights,
            pred_masks,
            topo: graph.topo_order().to_vec(),
            source_mask: nodes_to_mask(graph.sources()),
            sink_mask: nodes_to_mask(graph.sinks()),
            load_scale,
            store_scale,
        }
    }

    /// The "must still become red" closure `R*` of a state.
    ///
    /// Seeded with every sink that is neither red nor blue (it has to be
    /// computed before it can be stored), then closed backwards: a member
    /// that is not blue can only first turn red via M3 (compute) — an M1
    /// load needs a blue pebble, and earning one takes an M2 store which
    /// itself needs the node red first — so all its non-red predecessors
    /// must become red too.  Blue members stop the recursion (they may
    /// simply be reloaded).  Every member is non-red by construction.
    pub fn needed_mask(&self, red: M, blue: M) -> M {
        let mut need = self.sink_mask & !blue & !red;
        let mut frontier = need;
        while !frontier.is_empty() {
            let mut next = M::empty();
            for v in mask_iter(frontier) {
                if !blue.get(v.index()) {
                    next = next | (self.pred_masks[v.index()] & !red & !need);
                }
            }
            need = need | next;
            frontier = next;
        }
        need
    }

    /// Stores that must still happen: every not-yet-blue sink needs at least
    /// one M2, and those events are pairwise distinct moves.
    pub fn store_bound(&self, blue: M) -> Weight {
        self.store_scale * mask_weight(self.sink_mask & !blue, &self.weights)
    }

    /// The remaining-work bound: unavoidable sink stores plus unavoidable
    /// source loads (a source in `R*` can only become red via M1 — sources
    /// have no predecessors to compute from).  Admissible because the counted
    /// moves are pairwise distinct events of any completing schedule.
    pub fn remaining_work(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        self.store_bound(blue)
            + self.load_scale * mask_weight(need & self.source_mask, &self.weights)
    }

    /// The forced-reload bound: [`StateBounds::store_bound`] plus the larger
    /// of the source-load term and the best forced-reload chain.
    ///
    /// For each node `u`, `mk(u)` lower-bounds the load cost any schedule
    /// pays before `u` can next be red: zero if `u` is red; `load·w_u` if `u`
    /// is a source (only M1 applies); for interior nodes the compute route
    /// needs every predecessor red, which costs at least `max_p mk(p)` (max,
    /// not sum — predecessor chains may share ancestors), and a blue interior
    /// node may instead be reloaded directly for `load·w_u`, so `mk` takes
    /// the cheaper route.  The chain term is `max_{u ∈ R*} mk(u)`; it counts
    /// load events only, which may coincide with the source-load term's, so
    /// the two are combined with `max`, while store events are disjoint from
    /// both and add.
    pub fn forced_reload(&self, red: M, blue: M) -> Weight {
        let need = self.needed_mask(red, blue);
        let load_term = self.load_scale * mask_weight(need & self.source_mask, &self.weights);

        let mut mk = vec![0 as Weight; self.weights.len()];
        for &v in &self.topo {
            let i = v.index();
            if red.get(i) {
                continue; // mk = 0
            }
            let direct = self.load_scale * self.weights[i];
            if self.source_mask.get(i) {
                mk[i] = direct;
                continue;
            }
            let via_preds = mask_iter(self.pred_masks[i])
                .map(|p| mk[p.index()])
                .max()
                .unwrap_or(0);
            mk[i] = if blue.get(i) {
                direct.min(via_preds)
            } else {
                via_preds
            };
        }
        let chain = mask_iter(need).map(|u| mk[u.index()]).max().unwrap_or(0);

        self.store_bound(blue) + load_term.max(chain)
    }

    /// Evaluate the selected bound on a state.  Always admissible: the result
    /// never exceeds the true optimal remaining cost from `(red, blue)`.
    pub fn lower_bound(&self, red: M, blue: M, heuristic: Heuristic) -> Weight {
        match heuristic {
            Heuristic::None => 0,
            Heuristic::RemainingWork => self.remaining_work(red, blue),
            Heuristic::ForcedReload => self.forced_reload(red, blue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    /// A two-level chain: x(16) -> m(32) -> y(16)
    fn chain() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let m = b.node(32, "m");
        let y = b.node(16, "y");
        b.edge(x, m);
        b.edge(m, y);
        b.build().unwrap()
    }

    #[test]
    fn lower_bound_sums_sources_and_sinks() {
        let g = chain();
        // sources: x(16); sinks: y(16); interior m excluded.
        assert_eq!(algorithmic_lower_bound(&g), 32);
    }

    #[test]
    fn min_feasible_is_max_parent_closure() {
        let g = chain();
        // m needs 16+32 = 48; y needs 32+16 = 48.
        assert_eq!(min_feasible_budget(&g), 48);
        assert!(schedule_exists(&g, 48));
        assert!(!schedule_exists(&g, 47));
    }

    #[test]
    fn heuristic_names_round_trip() {
        for h in [
            Heuristic::None,
            Heuristic::RemainingWork,
            Heuristic::ForcedReload,
        ] {
            assert_eq!(Heuristic::parse(h.name()), Some(h));
        }
        assert_eq!(Heuristic::parse("bogus"), None);
        assert_eq!(Heuristic::default(), Heuristic::ForcedReload);
    }

    #[test]
    fn start_state_bound_matches_prop_2_4() {
        // At the initial position (red = ∅, blue = sources) the per-state
        // bounds specialize exactly to the algorithmic lower bound.
        let g = chain();
        let sb = StateBounds::new(&g, 1, 1);
        let sources = 1u64; // x is node 0
        assert_eq!(sb.needed_mask(0, sources), 0b111);
        assert_eq!(sb.remaining_work(0, sources), algorithmic_lower_bound(&g));
        assert_eq!(sb.forced_reload(0, sources), algorithmic_lower_bound(&g));
    }

    #[test]
    fn forced_reload_charges_for_evicted_interior() {
        // x(16) -> m(32) -> y(16).  Mid-game: m was computed, stored, and
        // evicted; nothing is red.  R* is {y, m}: y must be computed, so m
        // must become red again, but m is blue so the closure stops there
        // (it may be reloaded) and the source x is not forced.  forced-reload
        // prices the cheapest way to get m red again: min(reload m = 32,
        // recompute via x = 16) = 16.
        let g = chain();
        let sb = StateBounds::new(&g, 1, 1);
        let blue: u64 = 0b011; // x (source) and m stored
        assert_eq!(sb.needed_mask(0, blue), 0b110); // sink y + evicted m
        assert_eq!(sb.remaining_work(0, blue), 16); // store y
        assert_eq!(sb.forced_reload(0, blue), 16 + 16); // store y + chain to m
                                                        // True remaining optimum: load x (16), compute m, compute y, store y
                                                        // (16) = 32, so the bound is tight here and admissible.
    }

    #[test]
    fn bounds_are_zero_at_goal() {
        let g = chain();
        let sb = StateBounds::new(&g, 1, 1);
        let all: u64 = 0b111;
        assert_eq!(sb.remaining_work(0, all), 0);
        assert_eq!(sb.forced_reload(0, all), 0);
        assert_eq!(sb.lower_bound(0, all, Heuristic::ForcedReload), 0);
    }

    #[test]
    fn io_scales_multiply_the_bound_terms() {
        let g = chain();
        let sb = StateBounds::new(&g, 3, 5);
        let sources = 1u64;
        // 3 × load(x=16) vs chain (same events) + 5 × store(y=16).
        assert_eq!(sb.remaining_work(0, sources), 3 * 16 + 5 * 16);
        assert_eq!(sb.forced_reload(0, sources), 3 * 16 + 5 * 16);
    }

    #[test]
    fn wide_join_dominates() {
        let mut b = CdagBuilder::new();
        let inputs: Vec<_> = (0..4).map(|i| b.node(16, format!("x{i}"))).collect();
        let s = b.node(32, "sum");
        for &x in &inputs {
            b.edge(x, s);
        }
        let g = b.build().unwrap();
        assert_eq!(min_feasible_budget(&g), 4 * 16 + 32);
        assert_eq!(algorithmic_lower_bound(&g), 4 * 16 + 32);
    }
}
