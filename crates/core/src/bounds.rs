//! Model-level bounds: schedule existence (Prop. 2.3) and the algorithmic
//! lower bound (Prop. 2.4).

use crate::graph::{Cdag, Weight};

/// The algorithmic lower bound of Proposition 2.4:
///
/// `Σ_{v ∈ A(G)} w_v + Σ_{v ∈ Z(G)} w_v ≤ Cost(S_G)` for every valid
/// schedule — every input must be loaded at least once and every output
/// stored at least once.
pub fn algorithmic_lower_bound(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| graph.is_source(v) || graph.is_sink(v))
        .map(|v| graph.weight(v))
        .sum()
}

/// The smallest budget for which *any* valid WRBPG schedule exists
/// (Proposition 2.3): `max_{v ∉ A(G)} ( w_v + Σ_{p ∈ H(v)} w_p )`.
///
/// Computing a node requires the node and all its parents to be
/// simultaneously red, so this is both necessary and (with eager spilling)
/// sufficient.
pub fn min_feasible_budget(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| !graph.is_source(v))
        .map(|v| {
            graph.weight(v)
                + graph
                    .preds(v)
                    .iter()
                    .map(|&p| graph.weight(p))
                    .sum::<Weight>()
        })
        .max()
        .unwrap_or(0)
}

/// Schedule existence (Proposition 2.3): a valid schedule exists for budget
/// `b` iff `w_v + Σ_{p ∈ H(v)} w_p ≤ b` for all non-source nodes `v`.
pub fn schedule_exists(graph: &Cdag, budget: Weight) -> bool {
    budget >= min_feasible_budget(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdagBuilder;

    /// A two-level chain: x(16) -> m(32) -> y(16)
    fn chain() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let m = b.node(32, "m");
        let y = b.node(16, "y");
        b.edge(x, m);
        b.edge(m, y);
        b.build().unwrap()
    }

    #[test]
    fn lower_bound_sums_sources_and_sinks() {
        let g = chain();
        // sources: x(16); sinks: y(16); interior m excluded.
        assert_eq!(algorithmic_lower_bound(&g), 32);
    }

    #[test]
    fn min_feasible_is_max_parent_closure() {
        let g = chain();
        // m needs 16+32 = 48; y needs 32+16 = 48.
        assert_eq!(min_feasible_budget(&g), 48);
        assert!(schedule_exists(&g, 48));
        assert!(!schedule_exists(&g, 47));
    }

    #[test]
    fn wide_join_dominates() {
        let mut b = CdagBuilder::new();
        let inputs: Vec<_> = (0..4).map(|i| b.node(16, format!("x{i}"))).collect();
        let s = b.node(32, "sum");
        for &x in &inputs {
            b.edge(x, s);
        }
        let g = b.build().unwrap();
        assert_eq!(min_feasible_budget(&g), 4 * 16 + 32);
        assert_eq!(algorithmic_lower_bound(&g), 4 * 16 + 32);
    }
}
