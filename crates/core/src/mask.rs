//! Packed game-state masks of arbitrary node width.
//!
//! The exact solver and the per-state bounds represent a WRBPG snapshot as
//! a pair of node bitsets (`red`, `blue`).  Historically both were bare
//! `u64`s, which capped exact search — and therefore exhaustive conformance
//! certification — at 64 nodes.  [`StateMask`] abstracts the bitset so the
//! same search monomorphizes per width:
//!
//! * `u64` — the zero-cost fast path.  Every trait method lowers to the
//!   single-word instruction the pre-refactor code used, so graphs of ≤ 64
//!   nodes compile to byte-for-byte the old hot loop.
//! * [`Words<N>`] — a const-generic `[u64; N]` bitset for wider graphs
//!   (`Words<2>` = 128 nodes, `Words<4>` = 256).
//!
//! The trait is **sealed**: search determinism depends on invariants (an
//! `Ord` that matches `u64`'s numeric order on shared widths, ascending
//! bit iteration) that foreign implementations could silently violate.
//!
//! # Ordering
//!
//! `Words<N>` compares **most-significant word first**, i.e. as the
//! `64·N`-bit unsigned integer it encodes.  This is load-bearing: the exact
//! search breaks priority ties on the state value, so a graph solved both
//! as `u64` and as `Words<2>` (high word zero) must order states
//! identically for the two runs to produce byte-identical schedules — the
//! property the mask-width equivalence proptests pin down.

use crate::graph::NodeId;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitOr, Not};

mod sealed {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl<const N: usize> Sealed for super::Words<N> {}
}

/// A fixed-width node bitset usable as one half of a packed game state.
///
/// Implemented by `u64` (the single-word fast path) and [`Words<N>`].
/// Sealed; see the module docs for the invariants implementations uphold.
pub trait StateMask:
    sealed::Sealed
    + Copy
    + Eq
    + Ord
    + Hash
    + Debug
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + Not<Output = Self>
{
    /// Number of 64-bit words in the mask.
    const WORDS: usize;
    /// Number of addressable node bits (`64 · WORDS`).
    const BITS: usize = 64 * Self::WORDS;

    /// The empty mask.
    fn empty() -> Self;

    /// The mask with exactly bit `i` set.
    fn bit(i: usize) -> Self;

    /// Whether bit `i` is set.
    fn get(self, i: usize) -> bool;

    /// `self` with bit `i` set.
    #[inline]
    fn set(self, i: usize) -> Self {
        self | Self::bit(i)
    }

    /// `self` with bit `i` cleared.
    fn clear(self, i: usize) -> Self;

    /// Whether no bit is set.
    fn is_empty(self) -> bool;

    /// Index of the lowest set bit, or `None` when empty.
    fn lowest_set(self) -> Option<usize>;

    /// The `i`-th 64-bit word (`i < WORDS`).
    ///
    /// Exposed so callers can hash exactly the words a graph occupies:
    /// hashing `ceil(n/64)` words gives the same digest whatever the mask
    /// width, which keeps shard routing — and therefore the whole search —
    /// identical between `u64` and `Words<N>` runs on small graphs.
    fn word(self, i: usize) -> u64;

    /// Whether `self` contains every bit of `other`.
    #[inline]
    fn contains_all(self, other: Self) -> bool {
        self & other == other
    }
}

impl StateMask for u64 {
    const WORDS: usize = 1;

    #[inline]
    fn empty() -> Self {
        0
    }

    #[inline]
    fn bit(i: usize) -> Self {
        1u64 << i
    }

    #[inline]
    fn get(self, i: usize) -> bool {
        self >> i & 1 != 0
    }

    #[inline]
    fn clear(self, i: usize) -> Self {
        self & !(1u64 << i)
    }

    #[inline]
    fn is_empty(self) -> bool {
        self == 0
    }

    #[inline]
    fn lowest_set(self) -> Option<usize> {
        (self != 0).then(|| self.trailing_zeros() as usize)
    }

    #[inline]
    fn word(self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        self
    }
}

/// A const-generic multi-word bitset: `N` little-endian `u64` words
/// (`0[0]` holds bits 0–63).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Words<const N: usize>(pub [u64; N]);

impl<const N: usize> Default for Words<N> {
    fn default() -> Self {
        Words([0; N])
    }
}

impl<const N: usize> Ord for Words<N> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Most-significant word first: numeric order of the 64N-bit value,
        // matching u64's order on the shared low word (see module docs).
        for i in (0..N).rev() {
            match self.0[i].cmp(&other.0[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl<const N: usize> PartialOrd for Words<N> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> BitAnd for Words<N> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (w, r) in out.iter_mut().zip(rhs.0) {
            *w &= r;
        }
        Words(out)
    }
}

impl<const N: usize> BitOr for Words<N> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (w, r) in out.iter_mut().zip(rhs.0) {
            *w |= r;
        }
        Words(out)
    }
}

impl<const N: usize> Not for Words<N> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        let mut out = self.0;
        for w in &mut out {
            *w = !*w;
        }
        Words(out)
    }
}

impl<const N: usize> StateMask for Words<N> {
    const WORDS: usize = N;

    #[inline]
    fn empty() -> Self {
        Words([0; N])
    }

    #[inline]
    fn bit(i: usize) -> Self {
        let mut w = [0u64; N];
        w[i / 64] = 1u64 << (i % 64);
        Words(w)
    }

    #[inline]
    fn get(self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 != 0
    }

    #[inline]
    fn clear(self, i: usize) -> Self {
        let mut w = self.0;
        w[i / 64] &= !(1u64 << (i % 64));
        Words(w)
    }

    #[inline]
    fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    #[inline]
    fn lowest_set(self) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
    }

    #[inline]
    fn word(self, i: usize) -> u64 {
        self.0[i]
    }
}

/// Iterate the set bits of any [`StateMask`] in ascending node order.
///
/// This is the shared bit-walk of the exhaustive solver and the per-state
/// bounds in [`crate::bounds`]; for `u64` it compiles to the same
/// trailing-zeros loop the pre-refactor single-word version used.
#[inline]
pub fn mask_iter<M: StateMask>(mask: M) -> impl Iterator<Item = NodeId> {
    let mut bits = mask;
    std::iter::from_fn(move || {
        let i = bits.lowest_set()?;
        bits = bits.clear(i);
        Some(NodeId(i as u32))
    })
}

/// Total weight of the nodes named by a mask: `Σ_{v ∈ mask} weights[v]`.
///
/// `weights` is indexed by node id; bits at or above `weights.len()` must be
/// clear.
#[inline]
pub fn mask_weight<M: StateMask>(
    mask: M,
    weights: &[crate::graph::Weight],
) -> crate::graph::Weight {
    mask_iter(mask).map(|v| weights[v.index()]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_fast_path_matches_manual_bit_ops() {
        let m: u64 = 0b1011_0100;
        assert!(m.get(2) && !m.get(0));
        assert_eq!(m.set(0), 0b1011_0101);
        assert_eq!(m.clear(2), 0b1011_0000);
        assert_eq!(m.lowest_set(), Some(2));
        assert_eq!(u64::bit(7), 0b1000_0000);
        assert!(u64::empty().is_empty());
        assert_eq!(m.word(0), m);
        assert!(m.contains_all(0b0011_0100));
        assert!(!m.contains_all(0b0000_0011));
    }

    #[test]
    fn words_bit_ops_cross_word_boundaries() {
        type M = Words<3>;
        let m = M::bit(0) | M::bit(64) | M::bit(191);
        assert!(m.get(64) && !m.get(63));
        assert_eq!(m.word(0), 1);
        assert_eq!(m.word(1), 1);
        assert_eq!(m.word(2), 1u64 << 63);
        assert_eq!(m.clear(64).lowest_set(), Some(0));
        assert_eq!(m.clear(0).lowest_set(), Some(64));
        assert!((m & !m).is_empty());
        assert!(m.contains_all(M::bit(191)));
        assert!(!M::bit(191).contains_all(m));
    }

    #[test]
    fn words_order_is_numeric_msw_first() {
        type M = Words<2>;
        // bit 64 (high word) outranks any low-word value.
        assert!(M::bit(64) > M::bit(63));
        assert!(M::bit(1) > M::bit(0));
        // On the shared low word, Words<2> agrees with u64 for every pair.
        let samples = [0u64, 1, 2, 3, 0x80, u64::MAX, 0xdead_beef];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Words::<2>([a, 0]).cmp(&Words([b, 0])), a.cmp(&b));
            }
        }
    }

    #[test]
    fn mask_iter_is_ascending_for_both_widths() {
        let ids = |m: u64| mask_iter(m).map(|v| v.index()).collect::<Vec<_>>();
        assert_eq!(ids(0b1010_0001), vec![0, 5, 7]);
        let wide = Words::<2>::bit(3) | Words::bit(64) | Words::bit(100);
        let got: Vec<usize> = mask_iter(wide).map(|v| v.index()).collect();
        assert_eq!(got, vec![3, 64, 100]);
        assert_eq!(mask_iter(Words::<2>::empty()).count(), 0);
    }

    #[test]
    fn mask_weight_sums_member_weights() {
        let weights = [10, 20, 30, 40];
        assert_eq!(mask_weight(0b1010u64, &weights), 60);
        let wide = Words::<2>::bit(1) | Words::bit(3);
        assert_eq!(mask_weight(wide, &weights), 60);
    }
}
