//! Independent schedule replayer: enforces every game rule and the weighted
//! red-pebble constraint at each step.
//!
//! Every scheduler in the workspace is checked against this replayer — the
//! cost the scheduler claims must equal the cost measured here, and every
//! intermediate snapshot must respect Definition 2.1.

use crate::error::ValidityError;
use crate::graph::{Cdag, Weight};
use crate::moves::Move;
use crate::redset::RedSet;
use crate::schedule::Schedule;

/// Statistics reported by a successful validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Weighted schedule cost (Definition 2.2) as replayed.
    pub cost: Weight,
    /// Weighted input (M1) cost.
    pub input_cost: Weight,
    /// Weighted output (M2) cost.
    pub output_cost: Weight,
    /// Maximum total red weight observed across all snapshots — the smallest
    /// budget under which this exact schedule is valid.
    pub peak_red_weight: Weight,
    /// Number of M3 (compute) moves.
    pub computes: usize,
    /// Number of moves in the schedule.
    pub moves: usize,
}

/// Replay `schedule` on `graph` under budget `budget`, checking:
///
/// 1. **M1** targets a node with a blue pebble,
/// 2. **M2** targets a node with a red pebble,
/// 3. **M3** targets a non-source node whose predecessors are all red,
/// 4. **M4** targets a node with a red pebble,
/// 5. after every move, `Σ_{v red} w_v ≤ budget` (Definition 2.1),
/// 6. at the end, every sink carries a blue pebble (stopping condition).
///
/// The starting condition (sources blue, all else unpebbled) is implicit.
/// On success, returns exact [`ScheduleStats`].
pub fn validate_schedule(
    graph: &Cdag,
    budget: Weight,
    schedule: &Schedule,
) -> Result<ScheduleStats, ValidityError> {
    validate_moves(graph, budget, schedule.iter())
}

/// Streaming form of [`validate_schedule`]: replays any move sequence
/// without materializing it.
///
/// The schedule never needs to exist as a `Vec` — moves can come straight
/// off a generator, a parser, or a [`crate::MoveStream`] iterator.  State
/// is two bitsets and a handful of counters; nothing is allocated per move.
pub fn validate_moves(
    graph: &Cdag,
    budget: Weight,
    moves: impl IntoIterator<Item = Move>,
) -> Result<ScheduleStats, ValidityError> {
    let mut red = RedSet::new(graph.len());
    let mut blue = RedSet::new(graph.len());
    for &v in graph.sources() {
        blue.insert(v, graph.weight(v));
    }
    let mut stats = ScheduleStats {
        cost: 0,
        input_cost: 0,
        output_cost: 0,
        peak_red_weight: 0,
        computes: 0,
        moves: 0,
    };

    for (step, mv) in moves.into_iter().enumerate() {
        let v = mv.node();
        let w = graph.weight(v);
        stats.moves += 1;
        match mv {
            Move::Load(_) => {
                if !blue.contains(v) {
                    return Err(ValidityError::LoadWithoutBlue { step, mv });
                }
                stats.input_cost += w;
                red.insert(v, w);
            }
            Move::Store(_) => {
                if !red.contains(v) {
                    return Err(ValidityError::StoreWithoutRed { step, mv });
                }
                stats.output_cost += w;
                blue.insert(v, w);
            }
            Move::Compute(_) => {
                if graph.is_source(v) {
                    return Err(ValidityError::ComputeSource { step, mv });
                }
                if let Some(&missing) = graph.preds(v).iter().find(|&&p| !red.contains(p)) {
                    return Err(ValidityError::ComputeWithoutOperands { step, mv, missing });
                }
                stats.computes += 1;
                red.insert(v, w);
            }
            Move::Delete(_) => {
                if !red.remove(v, w) {
                    return Err(ValidityError::DeleteWithoutRed { step, mv });
                }
            }
        }
        if red.weight() > budget {
            return Err(ValidityError::BudgetExceeded {
                step,
                mv,
                used: red.weight(),
                budget,
            });
        }
        stats.peak_red_weight = stats.peak_red_weight.max(red.weight());
    }

    if let Some(&sink) = graph.sinks().iter().find(|&&v| !blue.contains(v)) {
        return Err(ValidityError::StoppingConditionUnmet { sink });
    }

    stats.cost = stats.input_cost + stats.output_cost;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CdagBuilder, NodeId};

    /// x, y -> s  (16-bit inputs, 32-bit sum)
    fn add_graph() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        b.edge(x, s);
        b.edge(y, s);
        b.build().unwrap()
    }

    fn good_schedule() -> Schedule {
        Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
            Move::Delete(NodeId(0)),
            Move::Delete(NodeId(1)),
            Move::Delete(NodeId(2)),
        ])
    }

    #[test]
    fn accepts_valid_schedule_and_reports_stats() {
        let g = add_graph();
        let stats = validate_schedule(&g, 64, &good_schedule()).unwrap();
        assert_eq!(stats.cost, 16 + 16 + 32);
        assert_eq!(stats.input_cost, 32);
        assert_eq!(stats.output_cost, 32);
        assert_eq!(stats.peak_red_weight, 64);
        assert_eq!(stats.computes, 1);
        assert_eq!(stats.moves, 7);
    }

    #[test]
    fn rejects_budget_violation() {
        let g = add_graph();
        let err = validate_schedule(&g, 63, &good_schedule()).unwrap_err();
        assert!(matches!(
            err,
            ValidityError::BudgetExceeded {
                used: 64,
                budget: 63,
                ..
            }
        ));
    }

    #[test]
    fn rejects_load_without_blue() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![Move::Load(NodeId(2))]);
        assert!(matches!(
            validate_schedule(&g, 100, &s).unwrap_err(),
            ValidityError::LoadWithoutBlue { step: 0, .. }
        ));
    }

    #[test]
    fn rejects_store_without_red() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![Move::Store(NodeId(0))]);
        assert!(matches!(
            validate_schedule(&g, 100, &s).unwrap_err(),
            ValidityError::StoreWithoutRed { .. }
        ));
    }

    #[test]
    fn rejects_compute_on_source() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![Move::Compute(NodeId(0))]);
        assert!(matches!(
            validate_schedule(&g, 100, &s).unwrap_err(),
            ValidityError::ComputeSource { .. }
        ));
    }

    #[test]
    fn rejects_compute_with_missing_operand() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![Move::Load(NodeId(0)), Move::Compute(NodeId(2))]);
        let err = validate_schedule(&g, 100, &s).unwrap_err();
        assert!(matches!(
            err,
            ValidityError::ComputeWithoutOperands {
                missing: NodeId(1),
                ..
            }
        ));
    }

    #[test]
    fn rejects_delete_without_red() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![Move::Delete(NodeId(0))]);
        assert!(matches!(
            validate_schedule(&g, 100, &s).unwrap_err(),
            ValidityError::DeleteWithoutRed { .. }
        ));
    }

    #[test]
    fn rejects_unmet_stopping_condition() {
        let g = add_graph();
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
        ]);
        assert!(matches!(
            validate_schedule(&g, 100, &s).unwrap_err(),
            ValidityError::StoppingConditionUnmet { sink: NodeId(2) }
        ));
    }

    #[test]
    fn empty_schedule_fails_unless_sinks_prepebbled() {
        let g = add_graph();
        assert!(validate_schedule(&g, 100, &Schedule::new()).is_err());
    }

    #[test]
    fn recompute_is_legal() {
        // Computing a node twice (rematerialization) is allowed by the rules.
        let g = add_graph();
        let s = Schedule::from_moves(vec![
            Move::Load(NodeId(0)),
            Move::Load(NodeId(1)),
            Move::Compute(NodeId(2)),
            Move::Delete(NodeId(2)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
        ]);
        let stats = validate_schedule(&g, 64, &s).unwrap();
        assert_eq!(stats.computes, 2);
    }
}
