//! Struct-of-arrays storage for move sequences.
//!
//! A [`crate::Schedule`] is logically a list of [`Move`]s, but storing it as
//! `Vec<Move>` interleaves the 1-byte discriminant with the 4-byte node id
//! (8 bytes per move after padding) and forces every consumer to branch on
//! the enum.  [`MoveStream`] splits the sequence into two parallel arrays —
//! one of [`MoveTag`]s, one of [`NodeId`]s — so scans that only care about
//! one aspect (cost accounting reads tags, replay reads both) stream
//! through dense, homogeneous memory.  Iteration still yields the familiar
//! `Move` enum, reassembled on the fly at zero cost.

use crate::graph::NodeId;
use crate::moves::Move;

/// The kind of a move, detached from its target node.
///
/// Discriminants match the paper's M1–M4 numbering (0-based).
#[repr(u8)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MoveTag {
    /// *M1* — copy from slow to fast memory.
    Load = 0,
    /// *M2* — copy from fast to slow memory.
    Store = 1,
    /// *M3* — compute into fast memory.
    Compute = 2,
    /// *M4* — evict from fast memory.
    Delete = 3,
}

impl MoveTag {
    /// Reassemble a [`Move`] from this tag and a target node.
    #[inline]
    pub fn with_node(self, v: NodeId) -> Move {
        match self {
            MoveTag::Load => Move::Load(v),
            MoveTag::Store => Move::Store(v),
            MoveTag::Compute => Move::Compute(v),
            MoveTag::Delete => Move::Delete(v),
        }
    }

    /// `true` for the two cost-bearing transfer moves (M1/M2).
    #[inline]
    pub fn is_io(self) -> bool {
        matches!(self, MoveTag::Load | MoveTag::Store)
    }
}

impl From<Move> for MoveTag {
    #[inline]
    fn from(mv: Move) -> Self {
        match mv {
            Move::Load(_) => MoveTag::Load,
            Move::Store(_) => MoveTag::Store,
            Move::Compute(_) => MoveTag::Compute,
            Move::Delete(_) => MoveTag::Delete,
        }
    }
}

/// A move sequence in struct-of-arrays form: parallel tag and node arrays.
///
/// Invariant: `tags.len() == nodes.len()`; entry `i` of both arrays
/// describes the `i`-th move.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct MoveStream {
    tags: Vec<MoveTag>,
    nodes: Vec<NodeId>,
}

impl MoveStream {
    /// The empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stream with room for `n` moves.
    pub fn with_capacity(n: usize) -> Self {
        MoveStream {
            tags: Vec::with_capacity(n),
            nodes: Vec::with_capacity(n),
        }
    }

    /// Number of moves.
    #[inline]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when the stream contains no moves.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Append one move.
    #[inline]
    pub fn push(&mut self, mv: Move) {
        self.tags.push(mv.into());
        self.nodes.push(mv.node());
    }

    /// The `i`-th move, reassembled from the parallel arrays.
    #[inline]
    pub fn get(&self, i: usize) -> Move {
        self.tags[i].with_node(self.nodes[i])
    }

    /// The tag column.
    #[inline]
    pub fn tags(&self) -> &[MoveTag] {
        &self.tags
    }

    /// The node column.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Append all moves of `other`.
    pub fn extend_from(&mut self, other: &MoveStream) {
        self.tags.extend_from_slice(&other.tags);
        self.nodes.extend_from_slice(&other.nodes);
    }

    /// Remove all moves, keeping the allocations.
    pub fn clear(&mut self) {
        self.tags.clear();
        self.nodes.clear();
    }

    /// Drop the moves at and after index `at`.
    pub fn truncate(&mut self, at: usize) {
        self.tags.truncate(at);
        self.nodes.truncate(at);
    }

    /// The last move, if any.
    #[inline]
    pub fn last(&self) -> Option<Move> {
        self.tags
            .last()
            .map(|&t| t.with_node(*self.nodes.last().unwrap()))
    }

    /// Remove and return the last move, if any.
    pub fn pop(&mut self) -> Option<Move> {
        let t = self.tags.pop()?;
        Some(t.with_node(self.nodes.pop().unwrap()))
    }

    /// Iterate over the moves, yielding the [`Move`] enum.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Move> + '_ {
        self.tags
            .iter()
            .zip(&self.nodes)
            .map(|(&t, &v)| t.with_node(v))
    }
}

impl FromIterator<Move> for MoveStream {
    fn from_iter<T: IntoIterator<Item = Move>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut s = MoveStream::with_capacity(it.size_hint().0);
        for mv in it {
            s.push(mv);
        }
        s
    }
}

impl Extend<Move> for MoveStream {
    fn extend<T: IntoIterator<Item = Move>>(&mut self, iter: T) {
        for mv in iter {
            self.push(mv);
        }
    }
}

impl std::fmt::Debug for MoveStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoveStream")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Move> {
        vec![
            Move::Load(NodeId(0)),
            Move::Compute(NodeId(2)),
            Move::Store(NodeId(2)),
            Move::Delete(NodeId(0)),
        ]
    }

    #[test]
    fn round_trips_moves() {
        let s: MoveStream = sample().into_iter().collect();
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), sample());
        assert_eq!(s.get(2), Move::Store(NodeId(2)));
        assert_eq!(s.tags()[3], MoveTag::Delete);
        assert_eq!(s.nodes()[1], NodeId(2));
    }

    #[test]
    fn extend_concatenates_columns() {
        let mut a: MoveStream = sample().into_iter().collect();
        let b: MoveStream = sample().into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 8);
        assert_eq!(a.get(4), Move::Load(NodeId(0)));
        a.truncate(5);
        assert_eq!(a.len(), 5);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn tags_match_paper_numbering() {
        assert!(MoveTag::Load.is_io() && MoveTag::Store.is_io());
        assert!(!MoveTag::Compute.is_io() && !MoveTag::Delete.is_io());
        assert_eq!(MoveTag::from(Move::Compute(NodeId(1))), MoveTag::Compute);
        assert_eq!(MoveTag::Store.with_node(NodeId(9)), Move::Store(NodeId(9)));
    }
}
