//! Property tests for the peephole schedule optimizer: on arbitrary valid
//! schedules — including ones salted with redundant moves — every rewrite
//! must preserve validity and final state while never increasing cost or
//! peak occupancy.

use pebblyn_core::{
    peephole, validate_schedule, Cdag, CdagBuilder, Move, NodeId, Schedule, Weight,
};
use proptest::prelude::*;

/// A small fixed DAG with reuse (diamond + tail) for schedule fuzzing.
fn fixture() -> Cdag {
    let mut b = CdagBuilder::new();
    let a = b.node(3, "a");
    let x = b.node(5, "x");
    let c = b.node(4, "c");
    let d = b.node(2, "d");
    let e = b.node(6, "e");
    b.edge(a, c);
    b.edge(x, c);
    b.edge(x, d);
    b.edge(c, e);
    b.edge(d, e);
    b.build().unwrap()
}

/// A canonical valid schedule for the fixture.
fn base_schedule() -> Vec<Move> {
    let (a, x, c, d, e) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4));
    vec![
        Move::Load(a),
        Move::Load(x),
        Move::Compute(c),
        Move::Delete(a),
        Move::Compute(d),
        Move::Delete(x),
        Move::Compute(e),
        Move::Store(e),
        Move::Delete(c),
        Move::Delete(d),
        Move::Delete(e),
    ]
}

/// Salt the base schedule with redundancies at given positions: after the
/// move at position `p`, insert a (Store, Delete+Load, or redundant-Load)
/// blob targeting that move's node when legal-ish.  Not all insertions stay
/// valid; the property filters to valid results.
fn salted(positions: &[usize], kinds: &[u8]) -> Schedule {
    let base = base_schedule();
    let mut out: Vec<Move> = Vec::new();
    for (i, mv) in base.iter().enumerate() {
        out.push(*mv);
        for (p, k) in positions.iter().zip(kinds) {
            if *p == i {
                let v = mv.node();
                match k % 3 {
                    0 => {
                        // Redundant store of whatever is red right now.
                        out.push(Move::Store(v));
                    }
                    1 => {
                        // Evict and immediately reload.
                        out.push(Move::Store(v));
                        out.push(Move::Delete(v));
                        out.push(Move::Load(v));
                    }
                    _ => {
                        // Redundant double store.
                        out.push(Move::Store(v));
                        out.push(Move::Store(v));
                    }
                }
            }
        }
    }
    Schedule::from_moves(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn peephole_is_safe_on_salted_schedules(
        positions in proptest::collection::vec(0usize..11, 0..4),
        kinds in proptest::collection::vec(0u8..3, 4),
    ) {
        let g = fixture();
        let budget: Weight = g.total_weight();
        let sched = salted(&positions, &kinds);
        // Only analyse salts that kept the schedule valid.
        let Ok(before) = validate_schedule(&g, budget, &sched) else {
            return Ok(());
        };
        let (opt, stats) = peephole(&g, &sched);
        let after = validate_schedule(&g, budget, &opt)
            .expect("peephole output must stay valid");
        prop_assert!(after.cost <= before.cost);
        prop_assert!(after.peak_red_weight <= before.peak_red_weight);
        prop_assert_eq!(opt.len() + stats.removed(), sched.len());
        // Deterministic and idempotent.
        let (opt2, stats2) = peephole(&g, &opt);
        prop_assert_eq!(opt2.moves(), opt.moves());
        prop_assert_eq!(stats2.removed(), 0);
    }

    #[test]
    fn peephole_recovers_base_cost(
        positions in proptest::collection::vec(0usize..11, 1..4),
    ) {
        // Delete+Load salts (kind 1) are always fully removable: the
        // optimized schedule must cost no more than the unsalted base.
        let g = fixture();
        let budget: Weight = g.total_weight();
        let kinds = vec![1u8; positions.len()];
        let sched = salted(&positions, &kinds);
        let Ok(_) = validate_schedule(&g, budget, &sched) else {
            return Ok(());
        };
        let base_cost = Schedule::from_moves(base_schedule()).cost(&g);
        let (opt, _) = peephole(&g, &sched);
        prop_assert_eq!(opt.cost(&g), base_cost);
    }
}
