//! The §4.3 connection: the tiling scheduler's per-tile costs are exactly
//! what the Eq. (8) memory-state DP predicts when fed the tile's
//! initial/reuse states.
//!
//! The paper derives the MVM tiling *from* `P_m` — "for each tile, our
//! algorithm uses the k-ary tree procedure (for k = 2) with initial/reuse
//! memory states".  These tests close that loop in code: extract one output
//! row's accumulation tree from the MVM graph, describe the tile context as
//! memory states, and check `P_m` against the tiling's analytic cost.

use pebblyn_core::{Cdag, NodeId, Weight};
use pebblyn_graphs::{MvmGraph, WeightScheme};
use pebblyn_schedulers::memstate::{self, MemoryStates};
use pebblyn_schedulers::mvm_tiling::{self, TilingConfig};

/// The subgraph feeding one output row: its accumulation caterpillar with
/// products, matrix entries and the vector.  This set is closed (vector
/// nodes' other consumers are excluded, so we must drop cross-row edges) —
/// instead of an induced subgraph we rebuild the row tree explicitly.
fn row_tree(m: usize, n: usize, scheme: WeightScheme) -> (Cdag, Vec<NodeId>, NodeId) {
    let _ = m;
    let mut b = pebblyn_core::CdagBuilder::new();
    let mut vector = Vec::with_capacity(n);
    let mut prev: Option<NodeId> = None;
    let mut prods = Vec::with_capacity(n);
    for c in 0..n {
        let x = b.node(scheme.input_weight(), format!("x{c}"));
        vector.push(x);
        let a = b.node(scheme.input_weight(), format!("a{c}"));
        let p = b.node(scheme.compute_weight(), format!("p{c}"));
        b.edge(x, p);
        b.edge(a, p);
        prods.push(p);
        prev = Some(match prev {
            None => p,
            Some(acc) => {
                let s = b.node(scheme.compute_weight(), format!("s{c}"));
                b.edge(acc, s);
                b.edge(p, s);
                s
            }
        });
    }
    let root = prev.unwrap();
    (b.build().unwrap(), vector, root)
}

/// With the whole vector initially resident and reused, computing a row
/// costs exactly the matrix loads — the tiling's vector-resident marginal
/// cost.
#[test]
fn resident_vector_row_cost() {
    for scheme in WeightScheme::paper_configs() {
        let n = 6;
        let (tree, vector, root) = row_tree(96, n, scheme);
        let states = MemoryStates::new(vector.clone(), vector.clone());
        let budget = tree.total_weight();
        let pm = memstate::min_cost_for(&tree, root, budget, &states).unwrap();
        assert_eq!(
            pm,
            n as Weight * scheme.input_weight(),
            "row cost = matrix loads only ({scheme})"
        );
    }
}

/// With nothing resident, the row costs vector + matrix loads — the
/// tall-tile (first row of a fresh pass) marginal cost.
#[test]
fn cold_row_cost() {
    for scheme in WeightScheme::paper_configs() {
        let n = 5;
        let (tree, _vector, root) = row_tree(96, n, scheme);
        let budget = tree.total_weight();
        let pm = memstate::min_cost_for(&tree, root, budget, &MemoryStates::none()).unwrap();
        assert_eq!(pm, 2 * n as Weight * scheme.input_weight());
    }
}

/// The memory-state budget accounting matches the tiling peak formula: a
/// resident vector plus the working set must fit, and one lattice step
/// below that `P_m` reports infeasible.
#[test]
fn budget_accounting_matches_tiling_peak() {
    let scheme = WeightScheme::DoubleAccumulator(16);
    let n = 6;
    let (tree, vector, root) = row_tree(96, n, scheme);
    let states = MemoryStates::new(vector.clone(), vector.clone());
    // The corresponding tiling config: one row, fully resident vector.
    let mvm = MvmGraph::new(96, n, scheme).unwrap();
    let peak = mvm_tiling::config_peak(&mvm, &TilingConfig::new(1, n, n));
    assert!(
        memstate::min_cost_for(&tree, root, peak, &states).is_some(),
        "P_m feasible at the tiling peak"
    );
    // P_m's occupancy check (R ∪ H ∪ v) is necessarily looser than the
    // step-exact peak, but far below it everything must fail.
    let floor = vector.len() as Weight * scheme.input_weight();
    assert!(
        memstate::min_cost_for(&tree, root, floor, &states).is_none(),
        "holding only the vector cannot compute anything"
    );
}

/// Whole-tile accounting: summing `P_m` row costs over a tile of height h
/// with the vector resident reproduces `config_cost` minus the vector and
/// output terms.
#[test]
fn tile_cost_decomposes_into_pm_rows() {
    let scheme = WeightScheme::Equal(16);
    let (m, n) = (8usize, 5usize);
    let mvm = MvmGraph::new(m, n, scheme).unwrap();
    let cfg = TilingConfig::new(m, n, n); // one tile, resident vector
    let total = mvm_tiling::config_cost(&mvm, &cfg);

    let (tree, vector, root) = row_tree(m, n, scheme);
    let states = MemoryStates::new(vector.clone(), vector.clone());
    let per_row = memstate::min_cost_for(&tree, root, tree.total_weight(), &states).unwrap();

    let vector_loads = n as Weight * scheme.input_weight();
    let output_stores = m as Weight * scheme.compute_weight();
    assert_eq!(
        total,
        vector_loads + m as Weight * per_row + output_stores,
        "tile cost = vector once + P_m per row + outputs once"
    );
}
