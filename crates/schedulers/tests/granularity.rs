//! Operation-granularity comparison — quantifying §3.1.1's "we opt for
//! finer granularities given our extreme resource constraints".
//!
//! The fine-grained DWT graph computes averages and coefficients as
//! separate nodes; the coarse-grained variant fuses each pair into one
//! butterfly holding both results.  Both compute the same transform and
//! share the same algorithmic lower bound, but the butterfly pins twice
//! the weight in fast memory whenever only its average half is live — so
//! fine granularity reaches the lower bound with strictly less memory.

use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule, Weight};
use pebblyn_exact::ExactSolver;
use pebblyn_graphs::dwt_coarse::CoarseDwtGraph;
use pebblyn_graphs::{DwtGraph, WeightScheme};
use pebblyn_schedulers::{dwt_opt, greedy_belady, layer_by_layer, min_memory, MinMemoryOptions};

/// Exact minimum memory of the coarse DWT(4,2) exceeds the fine one.
#[test]
fn fine_beats_coarse_exactly_on_small_instance() {
    let scheme = WeightScheme::Equal(2);
    let fine = DwtGraph::new(4, 2, scheme).unwrap();
    let coarse = CoarseDwtGraph::new(4, 2, scheme).unwrap();
    let lb = algorithmic_lower_bound(fine.cdag());
    assert_eq!(lb, algorithmic_lower_bound(coarse.cdag()));

    let solver = ExactSolver::with_max_states(30_000_000);
    let find_min = |g: &pebblyn_core::Cdag| -> Weight {
        let mut b = min_feasible_budget(g);
        loop {
            if solver.min_cost(g, b).unwrap() == Some(lb) {
                return b;
            }
            b += 2;
        }
    };
    let fine_min = find_min(fine.cdag());
    let coarse_min = find_min(coarse.cdag());
    assert!(
        fine_min < coarse_min,
        "fine granularity min memory {fine_min} must beat coarse {coarse_min}"
    );
}

/// At scale, the fine-grained optimum needs a fraction of what any
/// scheduler can achieve on the coarse graph.
#[test]
fn fine_beats_coarse_at_scale() {
    let scheme = WeightScheme::Equal(16);
    let fine = DwtGraph::new(64, 6, scheme).unwrap();
    let coarse = CoarseDwtGraph::new(64, 6, scheme).unwrap();
    let lb = algorithmic_lower_bound(fine.cdag());

    let fine_min = min_memory(
        |b| dwt_opt::min_cost(&fine, b),
        lb,
        MinMemoryOptions::for_graph(fine.cdag()).monotone(true),
    )
    .unwrap();
    // Best-effort coarse schedulers: Belady and layer-by-layer.
    let coarse_belady = min_memory(
        |b| greedy_belady::cost(coarse.cdag(), b),
        lb,
        MinMemoryOptions::for_graph(coarse.cdag()),
    );
    let coarse_lbl = min_memory(
        |b| layer_by_layer::cost(&coarse, b, Default::default()),
        lb,
        MinMemoryOptions::for_graph(coarse.cdag()),
    );
    let coarse_best = [coarse_belady, coarse_lbl]
        .into_iter()
        .flatten()
        .min()
        .expect("some coarse scheduler reaches the LB");
    assert!(
        2 * fine_min <= coarse_best,
        "fine {fine_min} bits should be at most half of coarse {coarse_best} bits"
    );
}

/// The coarse graph is still schedulable and correct — the comparison is
/// about memory, not feasibility.
#[test]
fn coarse_schedules_validate() {
    let scheme = WeightScheme::DoubleAccumulator(16);
    let coarse = CoarseDwtGraph::new(16, 4, scheme).unwrap();
    let g = coarse.cdag();
    let minb = min_feasible_budget(g);
    for b in [minb, minb + 64, g.total_weight()] {
        if let Some(s) = greedy_belady::schedule(g, b) {
            let stats = validate_schedule(g, b, &s).unwrap();
            assert!(stats.cost >= algorithmic_lower_bound(g));
        }
        if let Some(s) = layer_by_layer::schedule(&coarse, b, Default::default()) {
            validate_schedule(g, b, &s).unwrap();
        }
    }
}
