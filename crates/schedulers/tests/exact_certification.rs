//! Certify the dataflow-specific dynamic programs against the exhaustive
//! optimal solver on small instances.
//!
//! These tests are the practical counterpart of the paper's optimality
//! proofs (Theorem 3.5 for DWT, Lemma 3.7 for k-ary trees): on every small
//! graph and every budget on the weight lattice, the DP's cost must equal
//! the global optimum found by uniform-cost search over complete game
//! states.

use pebblyn_core::{min_feasible_budget, Cdag, Weight};
use pebblyn_exact::ExactSolver;
use pebblyn_graphs::tree::{caterpillar, chain, full_kary, random_weighted_tree};
use pebblyn_graphs::{DwtGraph, WeightScheme};
use pebblyn_schedulers::{dwt_opt, kary};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn budgets(g: &Cdag) -> Vec<Weight> {
    let minb = min_feasible_budget(g);
    let maxb = g.total_weight();
    let step = g.weight_gcd().max(1);
    let mut out = vec![minb.saturating_sub(step), minb];
    let mut b = minb + step;
    while b <= maxb {
        out.push(b);
        b += step;
    }
    out
}

fn certify_dwt(dwt: &DwtGraph) {
    let solver = ExactSolver::with_max_states(30_000_000);
    for b in budgets(dwt.cdag()) {
        let exact = solver
            .min_cost(dwt.cdag(), b)
            .expect("exact search within state cap");
        let dp = dwt_opt::min_cost(dwt, b);
        assert_eq!(
            dp,
            exact,
            "DWT({}, {}) {} at budget {b}: DP {dp:?} vs exact {exact:?}",
            dwt.n(),
            dwt.d(),
            dwt.scheme()
        );
    }
}

fn certify_tree(tree: &Cdag, label: &str) {
    let solver = ExactSolver::with_max_states(30_000_000);
    for b in budgets(tree) {
        let exact = solver.min_cost(tree, b).expect("exact search within cap");
        let dp = kary::min_cost(tree, b);
        assert_eq!(dp, exact, "{label} at budget {b}");
    }
}

#[test]
fn dwt_4_1_equal_is_optimal() {
    certify_dwt(&DwtGraph::new(4, 1, WeightScheme::Equal(2)).unwrap());
}

#[test]
fn dwt_4_1_double_accumulator_is_optimal() {
    certify_dwt(&DwtGraph::new(4, 1, WeightScheme::DoubleAccumulator(2)).unwrap());
}

#[test]
fn dwt_4_2_equal_is_optimal() {
    certify_dwt(&DwtGraph::new(4, 2, WeightScheme::Equal(2)).unwrap());
}

#[test]
fn dwt_4_2_double_accumulator_is_optimal() {
    certify_dwt(&DwtGraph::new(4, 2, WeightScheme::DoubleAccumulator(2)).unwrap());
}

#[test]
fn dwt_4_2_custom_weights_is_optimal() {
    // Coefficients equal to averages is required by Lemma 3.2; exercise an
    // asymmetric input/compute split.
    certify_dwt(
        &DwtGraph::new(
            4,
            2,
            WeightScheme::Custom {
                input: 3,
                compute: 5,
            },
        )
        .unwrap(),
    );
}

#[test]
fn binary_tree_depth_2_is_optimal() {
    certify_tree(
        &full_kary(2, 2, WeightScheme::Equal(2)).unwrap(),
        "full binary depth 2",
    );
    certify_tree(
        &full_kary(2, 2, WeightScheme::DoubleAccumulator(1)).unwrap(),
        "full binary depth 2 (DA)",
    );
}

#[test]
fn ternary_tree_depth_1_is_optimal() {
    certify_tree(
        &full_kary(3, 1, WeightScheme::Equal(3)).unwrap(),
        "ternary depth 1",
    );
}

#[test]
fn quaternary_tree_depth_1_is_optimal() {
    certify_tree(
        &full_kary(
            4,
            1,
            WeightScheme::Custom {
                input: 2,
                compute: 3,
            },
        )
        .unwrap(),
        "4-ary depth 1",
    );
}

#[test]
fn caterpillars_are_optimal() {
    certify_tree(
        &caterpillar(4, WeightScheme::Equal(2)).unwrap(),
        "caterpillar 4",
    );
    certify_tree(
        &caterpillar(4, WeightScheme::DoubleAccumulator(2)).unwrap(),
        "caterpillar 4 (DA)",
    );
}

#[test]
fn chains_are_optimal() {
    certify_tree(&chain(6, WeightScheme::Equal(2)).unwrap(), "chain 6");
    certify_tree(
        &chain(
            5,
            WeightScheme::Custom {
                input: 4,
                compute: 2,
            },
        )
        .unwrap(),
        "chain 5 custom",
    );
}

#[test]
fn random_weighted_trees_are_optimal() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mut certified = 0;
    while certified < 8 {
        let t = random_weighted_tree(3, 3, 1..=4, &mut rng).unwrap();
        if t.len() > 9 {
            continue; // keep the exact search cheap
        }
        certify_tree(&t, &format!("random tree #{certified}"));
        certified += 1;
    }
}
