//! Certify the asymmetric-cost (energy-weighted) DWT DP against the
//! exhaustive solver: the paper's cost model "minimizes the total data
//! transferred, and by extension, the energy cost" — here we minimise the
//! energy *directly* when loads and stores have different per-bit prices
//! (embedded-Flash writes cost ~10× reads), and prove the DP stays exact.

use pebblyn_core::{min_feasible_budget, validate_schedule, Weight};
use pebblyn_exact::ExactSolver;
use pebblyn_graphs::{DwtGraph, WeightScheme};
use pebblyn_schedulers::dwt_opt::{self, IoCosts};
use pebblyn_schedulers::kary;

fn certify(dwt: &DwtGraph, costs: IoCosts) {
    let g = dwt.cdag();
    let solver = ExactSolver::with_max_states(30_000_000).with_io_scales(costs.load, costs.store);
    let minb = min_feasible_budget(g);
    let step = g.weight_gcd().max(1);
    let mut b = minb;
    while b <= g.total_weight() {
        let exact = solver.min_cost(g, b).expect("within state cap");
        let dp = dwt_opt::min_cost_with_costs(dwt, b, costs);
        assert_eq!(
            dp,
            exact,
            "scaled DP vs exact at b={b}, costs={costs:?}, {}",
            dwt.scheme()
        );
        // The emitted schedule's scaled cost must equal the DP's claim.
        if let Some(c) = dp {
            let s = dwt_opt::schedule_with_costs(dwt, b, costs).unwrap();
            validate_schedule(g, b, &s).expect("valid");
            assert_eq!(s.scaled_io_cost(g, costs.load, costs.store), c);
        }
        b += step;
    }
}

#[test]
fn flash_write_asymmetry_10x() {
    let costs = IoCosts { load: 1, store: 10 };
    certify(&DwtGraph::new(4, 2, WeightScheme::Equal(2)).unwrap(), costs);
    certify(
        &DwtGraph::new(4, 1, WeightScheme::DoubleAccumulator(2)).unwrap(),
        costs,
    );
}

#[test]
fn read_dominant_asymmetry() {
    let costs = IoCosts { load: 5, store: 2 };
    certify(&DwtGraph::new(4, 2, WeightScheme::Equal(2)).unwrap(), costs);
}

/// The k-ary DP under scales is certified against the scaled exhaustive
/// solver too, on trees beyond the DWT family.
#[test]
fn kary_scaled_is_optimal() {
    use pebblyn_graphs::tree::{caterpillar, full_kary};
    let costs = IoCosts { load: 2, store: 7 };
    for tree in [
        full_kary(2, 2, WeightScheme::Equal(2)).unwrap(),
        full_kary(3, 1, WeightScheme::DoubleAccumulator(1)).unwrap(),
        caterpillar(4, WeightScheme::Equal(2)).unwrap(),
    ] {
        let solver =
            ExactSolver::with_max_states(30_000_000).with_io_scales(costs.load, costs.store);
        let minb = min_feasible_budget(&tree);
        let step = tree.weight_gcd().max(1);
        let mut b = minb;
        while b <= tree.total_weight() {
            let exact = solver.min_cost(&tree, b).expect("within cap");
            let dp = kary::min_cost_with_costs(&tree, b, costs);
            assert_eq!(dp, exact, "kary scaled at b={b}");
            if let Some(c) = dp {
                let s = kary::schedule_with_costs(&tree, b, costs).unwrap();
                validate_schedule(&tree, b, &s).expect("valid");
                assert_eq!(s.scaled_io_cost(&tree, costs.load, costs.store), c);
            }
            b += step;
        }
    }
}

#[test]
fn unit_costs_recover_bit_counts() {
    let dwt = DwtGraph::new(8, 3, WeightScheme::Equal(4)).unwrap();
    let g = dwt.cdag();
    let mut b = min_feasible_budget(g);
    while b <= g.total_weight() {
        assert_eq!(
            dwt_opt::min_cost(&dwt, b),
            dwt_opt::min_cost_with_costs(&dwt, b, IoCosts::default()),
        );
        b += 4;
    }
}

/// A structure theorem the scaled DP exposes: in tree schedules every
/// value is consumed once, so every reload is paired with exactly one
/// store — the optimal cost decomposes as
/// `α·inputs + β·outputs + (α+β)·spills`, where `spills` is the same
/// quantity the unit-cost optimum minimises.  Consequently asymmetric
/// prices change the optimal *cost* but never the optimal *structure*.
#[test]
fn scaled_cost_decomposition_on_trees() {
    let dwt = DwtGraph::new(16, 4, WeightScheme::Equal(4)).unwrap();
    let g = dwt.cdag();
    let inputs: Weight = g.sources().iter().map(|&v| g.weight(v)).sum();
    let outputs: Weight = g.sinks().iter().map(|&v| g.weight(v)).sum();
    let costs = IoCosts { load: 1, store: 20 };
    let mut b = min_feasible_budget(g);
    while b <= g.total_weight() {
        let unit = dwt_opt::min_cost(&dwt, b).unwrap();
        let spills = (unit - inputs - outputs) / 2;
        let scaled = dwt_opt::min_cost_with_costs(&dwt, b, costs).unwrap();
        assert_eq!(
            scaled,
            costs.load * inputs + costs.store * outputs + (costs.load + costs.store) * spills,
            "decomposition fails at b={b}"
        );
        // The energy-aware schedule replays to exactly that energy.
        let s = dwt_opt::schedule_with_costs(&dwt, b, costs).unwrap();
        validate_schedule(g, b, &s).unwrap();
        assert_eq!(s.scaled_io_cost(g, costs.load, costs.store), scaled);
        b += 4;
    }
}

/// Scaled costs interact with weights: a cheap-store regime can prefer
/// spilling the *heavier* parent if that frees more budget per store bit.
#[test]
fn scaled_min_memory_unchanged() {
    // Minimum memory (Def 2.6) is about *which* transfers happen, not
    // their price: with any positive scales the scaled LB is reached at
    // the same budget as the unit LB.
    let dwt = DwtGraph::new(16, 4, WeightScheme::Equal(4)).unwrap();
    let g = dwt.cdag();
    let unit_lb: Weight = pebblyn_core::algorithmic_lower_bound(g);
    let costs = IoCosts { load: 3, store: 7 };
    // scaled LB = 3·(input bits) + 7·(output bits).
    let inputs: Weight = g.sources().iter().map(|&v| g.weight(v)).sum();
    let outputs: Weight = g.sinks().iter().map(|&v| g.weight(v)).sum();
    let scaled_lb = 3 * inputs + 7 * outputs;
    assert_eq!(unit_lb, inputs + outputs);

    let mut unit_min = None;
    let mut scaled_min = None;
    let mut b = min_feasible_budget(g);
    while b <= g.total_weight() {
        if unit_min.is_none() && dwt_opt::min_cost(&dwt, b) == Some(unit_lb) {
            unit_min = Some(b);
        }
        if scaled_min.is_none() && dwt_opt::min_cost_with_costs(&dwt, b, costs) == Some(scaled_lb) {
            scaled_min = Some(b);
        }
        b += 4;
    }
    assert_eq!(unit_min, scaled_min);
    assert!(unit_min.is_some());
}
