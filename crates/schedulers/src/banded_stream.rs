//! Streaming scheduler for banded (structured-sparse) MVM.
//!
//! The §4.3 tiling specialised to a banded matrix: the vector window slides
//! exactly as in [`crate::conv_stream`], while the band entries stream
//! through fast memory once (they have no reuse, like the dense MVM's
//! matrix).  Both residency strategies from the FIR case carry over:
//!
//! * **window-resident** — hold the `b` vector entries of the current row,
//! * **partial-interleaved** — hold one partial per open row and only two
//!   vector entries.
//!
//! Every input is read once and every output written once, so both
//! strategies meet the algorithmic lower bound; [`schedule`] picks the one
//! that fits the budget.

use pebblyn_core::{Move, PebbleState, Schedule, Weight};
use pebblyn_graphs::banded::BandedMvmGraph;

pub use crate::conv_stream::Strategy;

/// Weighted cost of any streaming schedule: the algorithmic lower bound.
pub fn cost(g: &BandedMvmGraph) -> Weight {
    let w_in = g.scheme().input_weight();
    let w_c = g.scheme().compute_weight();
    let vector = g.n() as Weight * w_in;
    let band = (g.rows() * g.bandwidth()) as Weight * w_in;
    let outputs = g.rows() as Weight * w_c;
    vector + band + outputs
}

/// Emit the schedule for a given residency strategy.
pub fn schedule_with_strategy(g: &BandedMvmGraph, strategy: Strategy) -> Schedule {
    match strategy {
        Strategy::WindowResident => window_resident(g),
        Strategy::PartialInterleaved => partial_interleaved(g),
    }
}

/// Exact peak occupancy of a strategy, measured by replay.
pub fn strategy_peak(g: &BandedMvmGraph, strategy: Strategy) -> Weight {
    let sched = schedule_with_strategy(g, strategy);
    let cdag = g.cdag();
    let mut state = PebbleState::initial(cdag);
    let mut peak = 0;
    for mv in sched.iter() {
        state.apply(cdag, mv);
        peak = peak.max(state.red_weight());
    }
    peak
}

/// The streaming family's minimum fast memory size (Definition 2.6).
pub fn min_memory(g: &BandedMvmGraph) -> Weight {
    strategy_peak(g, Strategy::WindowResident).min(strategy_peak(g, Strategy::PartialInterleaved))
}

/// Budgeted cost, on the same shape as every other scheduler's
/// `min_cost(g, budget)`: the streaming cost when some strategy fits in
/// `budget`, `None` otherwise.
pub fn min_cost(g: &BandedMvmGraph, budget: Weight) -> Option<Weight> {
    (budget >= min_memory(g)).then(|| cost(g))
}

/// The cheapest-footprint streaming schedule fitting `budget`, or `None`.
pub fn schedule(g: &BandedMvmGraph, budget: Weight) -> Option<Schedule> {
    [Strategy::PartialInterleaved, Strategy::WindowResident]
        .into_iter()
        .find(|&s| strategy_peak(g, s) <= budget)
        .map(|s| schedule_with_strategy(g, s))
}

fn window_resident(g: &BandedMvmGraph) -> Schedule {
    let (b, rows) = (g.bandwidth(), g.rows());
    let mut mv = Vec::new();
    for t in 1..=b {
        mv.push(Move::Load(g.vector(t)));
    }
    for r in 1..=rows {
        // Accumulate the row: product j=0, then (product, partial) pairs.
        for j in 0..b {
            mv.push(Move::Load(g.band(r, j)));
            mv.push(Move::Compute(g.product(r, j)));
            mv.push(Move::Delete(g.band(r, j)));
            if j >= 1 {
                mv.push(Move::Compute(g.partial(r, j)));
                mv.push(Move::Delete(g.product(r, j)));
                let prev = if j == 1 {
                    g.product(r, 0)
                } else {
                    g.partial(r, j - 1)
                };
                mv.push(Move::Delete(prev));
            }
        }
        let y = g.output(r);
        mv.push(Move::Store(y));
        mv.push(Move::Delete(y));
        if r < rows {
            mv.push(Move::Delete(g.vector(r)));
            mv.push(Move::Load(g.vector(r + b)));
        }
    }
    for t in rows..=g.n() {
        mv.push(Move::Delete(g.vector(t)));
    }
    Schedule::from_moves(mv)
}

fn partial_interleaved(g: &BandedMvmGraph) -> Schedule {
    let (n, b, rows) = (g.n(), g.bandwidth(), g.rows());
    let mut mv = Vec::new();
    for s in 1..=n {
        mv.push(Move::Load(g.vector(s)));
        // Rows where x_s is the (j = s − r)-th band position, 0 <= j < b.
        let r_hi = s.min(rows);
        let r_lo = s.saturating_sub(b - 1).max(1);
        // Ascending r finishes the oldest row first (fewest live partials).
        for r in r_lo..=r_hi {
            let j = s - r;
            mv.push(Move::Load(g.band(r, j)));
            mv.push(Move::Compute(g.product(r, j)));
            mv.push(Move::Delete(g.band(r, j)));
            if j >= 1 {
                mv.push(Move::Compute(g.partial(r, j)));
                mv.push(Move::Delete(g.product(r, j)));
                let prev = if j == 1 {
                    g.product(r, 0)
                } else {
                    g.partial(r, j - 1)
                };
                mv.push(Move::Delete(prev));
            }
            if j == b - 1 {
                let y = g.output(r);
                mv.push(Move::Store(y));
                mv.push(Move::Delete(y));
            }
        }
        if s >= 2 {
            mv.push(Move::Delete(g.vector(s - 1)));
        }
    }
    mv.push(Move::Delete(g.vector(n)));
    Schedule::from_moves(mv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, validate_schedule};
    use pebblyn_exact::exact_min_cost;
    use pebblyn_graphs::WeightScheme;

    fn check(n: usize, b: usize, scheme: WeightScheme) {
        let g = BandedMvmGraph::new(n, b, scheme).unwrap();
        let cdag = g.cdag();
        let lb = algorithmic_lower_bound(cdag);
        for strategy in [Strategy::WindowResident, Strategy::PartialInterleaved] {
            let peak = strategy_peak(&g, strategy);
            let s = schedule_with_strategy(&g, strategy);
            let stats = validate_schedule(cdag, peak, &s)
                .unwrap_or_else(|e| panic!("Banded({n},{b}) {scheme} {strategy:?}: {e}"));
            assert_eq!(stats.cost, lb);
            assert_eq!(stats.peak_red_weight, peak);
        }
        let bmin = min_memory(&g);
        assert!(schedule(&g, bmin).is_some());
        assert!(schedule(&g, bmin - 1).is_none());
        assert_eq!(cost(&g), lb);
    }

    #[test]
    fn small_bands_all_schemes() {
        for scheme in WeightScheme::paper_configs() {
            for (n, b) in [(4, 2), (5, 3), (8, 4), (6, 6), (16, 5)] {
                check(n, b, scheme);
            }
        }
    }

    #[test]
    fn custom_weights() {
        check(
            10,
            3,
            WeightScheme::Custom {
                input: 5,
                compute: 9,
            },
        );
    }

    #[test]
    fn bci_scale_band() {
        // Tridiagonal-ish smoothing over a 96-channel frame.
        check(96, 3, WeightScheme::Equal(16));
    }

    /// Unlike the FIR case, the streamed band entry occupies one transient
    /// slot in *both* strategies, which erases interleaving's one-word
    /// advantage: the strategies tie under Equal weights and the window
    /// wins outright under Double Accumulator.
    #[test]
    fn residency_tradeoff_differs_from_fir() {
        let eq = BandedMvmGraph::new(16, 6, WeightScheme::Equal(16)).unwrap();
        assert_eq!(
            strategy_peak(&eq, Strategy::PartialInterleaved),
            strategy_peak(&eq, Strategy::WindowResident)
        );
        let da = BandedMvmGraph::new(16, 6, WeightScheme::DoubleAccumulator(16)).unwrap();
        assert!(
            strategy_peak(&da, Strategy::WindowResident)
                < strategy_peak(&da, Strategy::PartialInterleaved)
        );
    }

    #[test]
    fn min_memory_close_to_fundamental() {
        let g = BandedMvmGraph::new(3, 2, WeightScheme::Equal(1)).unwrap();
        let cdag = g.cdag();
        let lb = algorithmic_lower_bound(cdag);
        let fam = min_memory(&g);
        assert_eq!(exact_min_cost(cdag, fam), Some(lb));
        // The exhaustive optimum may shave a little more via wavefront
        // scheduling (as in the FIR case); it can never need more than the
        // family, and within two lattice units below the family minimum the
        // lower bound becomes unreachable.
        assert_ne!(exact_min_cost(cdag, fam - 3), Some(lb));
    }
}
