//! Tree scheduling under fast-memory *states* — Eq. (8), §4.1.
//!
//! `P_m(v, b, I, R)` is the minimum weighted cost of computing `v` when
//!
//! * the **initial state** `I` lists nodes already resident in fast memory
//!   (with blue copies in slow memory, so they are never recomputed), and
//! * the **reuse state** `R` lists nodes that must be resident in fast
//!   memory once `v` has been computed (and, per the paper's assumption,
//!   stay resident from the moment they are produced).
//!
//! Both sets are projected onto each subtree as `X_u = X ∩ (pred(u) ∪ {u})`;
//! the projections are what appear in the recursion's budget adjustments:
//! the parent computed *first* gives up budget for the other subtree's
//! initial-state nodes (they occupy fast memory the whole time), and the
//! parent computed *second* gives up budget for the first subtree's reuse
//! nodes (they must stay resident).
//!
//! Beyond the cost recursion ([`min_cost`]), [`plan`] emits the move
//! sequence realising `P_m` as a [`ContextSchedule`] — not a standalone
//! WRBPG game (the initial-state nodes carry red pebbles before the first
//! move) but exactly the building block §4.3 stitches into full tiling
//! schedules; the test suite performs that stitching on a real MVM graph
//! and validates the result with the ordinary validator.

use crate::stack::with_large_stack;
use pebblyn_core::{pack_key, Cdag, FastHashMap, NodeId, Weight};
use std::collections::BTreeSet;

/// User-provided initial and reuse fast-memory states.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryStates {
    /// Nodes already resident in fast memory before the computation starts.
    pub initial: BTreeSet<NodeId>,
    /// Nodes that must be resident in fast memory after the computation.
    pub reuse: BTreeSet<NodeId>,
}

impl MemoryStates {
    /// The empty states: `P_m` then coincides with the plain tree DP.
    pub fn none() -> Self {
        Self::default()
    }

    /// Construct from iterators.
    pub fn new(
        initial: impl IntoIterator<Item = NodeId>,
        reuse: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        MemoryStates {
            initial: initial.into_iter().collect(),
            reuse: reuse.into_iter().collect(),
        }
    }
}

/// Per-node projections of the global `I`/`R` sets onto subtrees.
struct Projections {
    /// Σ weights of `I ∩ (pred(v) ∪ {v})`.
    i_weight: Vec<Weight>,
    /// Σ weights of `R ∩ (pred(v) ∪ {v})`.
    r_weight: Vec<Weight>,
    /// Σ weights of `(R \ I) ∩ (pred(v) ∪ {v})`.
    r_minus_i_weight: Vec<Weight>,
    in_i: Vec<bool>,
    in_r: Vec<bool>,
}

fn project(tree: &Cdag, states: &MemoryStates) -> Projections {
    let n = tree.len();
    let mut p = Projections {
        i_weight: vec![0; n],
        r_weight: vec![0; n],
        r_minus_i_weight: vec![0; n],
        in_i: vec![false; n],
        in_r: vec![false; n],
    };
    for &v in &states.initial {
        p.in_i[v.index()] = true;
    }
    for &v in &states.reuse {
        p.in_r[v.index()] = true;
    }
    // In an in-tree, pred(v) ∪ {v} is the disjoint union of the children's
    // subtrees plus v itself, so the projected weights accumulate in
    // topological order.
    for &v in tree.topo_order() {
        let i = v.index();
        let w = tree.weight(v);
        let mut iw = if p.in_i[i] { w } else { 0 };
        let mut rw = if p.in_r[i] { w } else { 0 };
        let mut rmiw = if p.in_r[i] && !p.in_i[i] { w } else { 0 };
        for &c in tree.preds(v) {
            iw += p.i_weight[c.index()];
            rw += p.r_weight[c.index()];
            rmiw += p.r_minus_i_weight[c.index()];
        }
        p.i_weight[i] = iw;
        p.r_weight[i] = rw;
        p.r_minus_i_weight[i] = rmiw;
    }
    p
}

struct Dp<'a> {
    tree: &'a Cdag,
    proj: Projections,
    /// Keyed by [`pack_key`]`(node, budget)` — one `u128` per state.
    memo: FastHashMap<u128, Option<Weight>>,
}

impl<'a> Dp<'a> {
    /// `P_m(v, b, I_v, R_v)` — Eq. (8).
    fn pm(&mut self, v: NodeId, b: Weight) -> Option<Weight> {
        let key = pack_key(v.index() as u64, b);
        if let Some(&hit) = self.memo.get(&key) {
            return hit;
        }
        let result = self.compute(v, b);
        self.memo.insert(key, result);
        result
    }

    fn compute(&mut self, v: NodeId, b: Weight) -> Option<Weight> {
        let t = self.tree;
        let i = v.index();
        // Budget feasibility: R_v ∪ H(v) ∪ {v} must fit simultaneously.
        let mut occupancy = self.proj.r_weight[i];
        if !self.proj.in_r[i] {
            occupancy += t.weight(v);
        }
        for &p in t.preds(v) {
            if !self.proj.in_r[p.index()] {
                occupancy += t.weight(p);
            }
        }
        if occupancy > b {
            return None;
        }

        // Case: v already resident — only the reuse nodes missing from the
        // initial state must be brought in.
        if self.proj.in_i[i] {
            return Some(self.proj.r_minus_i_weight[i]);
        }
        let preds = t.preds(v);
        // Case: input node.
        if preds.is_empty() {
            return Some(t.weight(v));
        }
        if preds.len() != 2 {
            // The paper writes Eq. (8) for k = 2 and notes the k-ary
            // procedure extends; the general case runs the same subset DP
            // as the Eq. (6) scheduler with the memory-state budget
            // adjustments.
            let preds = preds.to_vec();
            return self.compute_kary(v, b, &preds);
        }
        let (p1, p2) = (preds[0], preds[1]);
        let (w1, w2) = (t.weight(p1), t.weight(p2));
        let i1 = self.proj.i_weight[p1.index()];
        let i2 = self.proj.i_weight[p2.index()];
        let r1 = self.proj.r_weight[p1.index()];
        let r2 = self.proj.r_weight[p2.index()];
        // `R_{p} ∪ {p}`: add p's weight unless p is already in R.
        let r1p = r1 + if self.proj.in_r[p1.index()] { 0 } else { w1 };
        let r2p = r2 + if self.proj.in_r[p2.index()] { 0 } else { w2 };

        let mut best: Option<Weight> = None;
        let consider = |c: Option<Weight>, best: &mut Option<Weight>| {
            if let Some(c) = c {
                if best.is_none_or(|b| c < b) {
                    *best = Some(c);
                }
            }
        };

        // p1 first, spilled (blue): 2·w_p1 round trip.
        consider(self.two_phase(p1, p2, b, i2, r1, 2 * w1), &mut best);
        // p1 first, kept red.
        consider(self.two_phase(p1, p2, b, i2, r1p, 0), &mut best);
        // p2 first, spilled.
        consider(self.two_phase(p2, p1, b, i1, r2, 2 * w2), &mut best);
        // p2 first, kept red.
        consider(self.two_phase(p2, p1, b, i1, r2p, 0), &mut best);
        best
    }

    /// The Eq. (8) recursion generalised to in-degree `k`: a Held–Karp
    /// subset DP over (processed parents, held weight), where
    ///
    /// * an *unprocessed* parent's subtree contributes its initial-state
    ///   weight (those nodes sit in fast memory until consumed), and
    /// * a *processed* parent's subtree contributes its reuse weight, plus
    ///   the parent itself when kept red (`δ = 1`); spilling (`δ = 0`)
    ///   costs a round trip `2·w`.
    fn compute_kary(&mut self, _v: NodeId, b: Weight, preds: &[NodeId]) -> Option<Weight> {
        let k = preds.len();
        assert!(k <= 20, "k-ary memory-state DP supports in-degree <= 20");
        let t = self.tree;
        let total_initial: Weight = preds.iter().map(|&p| self.proj.i_weight[p.index()]).sum();

        // frontier: pack_key(mask, held weight) -> best cost.
        let mut frontier: FastHashMap<u128, Weight> = FastHashMap::default();
        frontier.insert(pack_key(0, 0), 0);
        let full = (1u64 << k) - 1;
        let mut processed_initial: FastHashMap<u64, Weight> = FastHashMap::default();
        processed_initial.insert(0, 0);
        for _ in 0..k {
            let mut next: FastHashMap<u128, Weight> = FastHashMap::default();
            for (&state, &cost) in &frontier {
                let (mask, held) = ((state >> 64) as u64, state as u64 as Weight);
                let done_initial = processed_initial[&mask];
                for (i, &p) in preds.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        continue;
                    }
                    let pi = p.index();
                    // Other unprocessed parents' initial nodes stay
                    // resident while p's subtree is computed.
                    let other_initial = total_initial - done_initial - self.proj.i_weight[pi];
                    let Some(sub_budget) = b.checked_sub(other_initial + held) else {
                        continue;
                    };
                    let Some(sub_cost) = self.pm(p, sub_budget) else {
                        continue;
                    };
                    let nmask = mask | (1 << i);
                    processed_initial
                        .entry(nmask)
                        .or_insert(done_initial + self.proj.i_weight[pi]);
                    let keep_extra = if self.proj.in_r[pi] { 0 } else { t.weight(p) };
                    for (delta_held, extra) in [
                        // keep the parent red for the remaining parents
                        (self.proj.r_weight[pi] + keep_extra, 0),
                        // spill it: store + reload
                        (self.proj.r_weight[pi], 2 * t.weight(p)),
                    ] {
                        let key = pack_key(nmask, held + delta_held);
                        let ncost = cost + sub_cost + extra;
                        let slot = next.entry(key).or_insert(Weight::MAX);
                        if ncost < *slot {
                            *slot = ncost;
                        }
                    }
                }
            }
            frontier = next;
        }
        frontier
            .iter()
            .filter(|(&state, _)| (state >> 64) as u64 == full)
            .map(|(_, &c)| c)
            .min()
    }

    /// Cost of computing `first` with the other subtree's initial nodes
    /// resident, then `second` with `held` weight (first subtree's reuse
    /// nodes, possibly plus the first parent) resident, plus `extra`.
    fn two_phase(
        &mut self,
        first: NodeId,
        second: NodeId,
        b: Weight,
        other_initial: Weight,
        held: Weight,
        extra: Weight,
    ) -> Option<Weight> {
        let b1 = b.checked_sub(other_initial)?;
        let b2 = b.checked_sub(held)?;
        let c1 = self.pm(first, b1)?;
        let c2 = self.pm(second, b2)?;
        Some(c1 + c2 + extra)
    }
}

/// A context schedule produced by [`plan`]: a move sequence that computes
/// the subtree root *given* the initial state already resident.
///
/// It is not a standalone WRBPG game (the initial-state nodes carry red
/// pebbles before the first move), so it is validated with
/// [`validate_in_context`] — or by embedding it into a larger schedule
/// that established the context, which is exactly how §4.3 stitches tile
/// schedules together.
#[derive(Debug, Clone)]
pub struct ContextSchedule {
    /// The moves, starting from "initial-state nodes red, sources blue".
    pub schedule: pebblyn_core::Schedule,
    /// The DP-certified cost (equals the replayed M1/M2 weight).
    pub cost: Weight,
}

/// Plan-carrying variant of the binary Eq. (8) DP: memoises decisions and
/// emits the move sequence.
/// Memoised planner entry: certified cost plus the decision tree.
type PlanEntry = Option<(Weight, std::rc::Rc<MPlan>)>;

struct Planner<'a> {
    tree: &'a Cdag,
    proj: Projections,
    /// Keyed by [`pack_key`]`(node, budget)` — one `u128` per state.
    memo: FastHashMap<u128, PlanEntry>,
}

#[derive(Debug)]
enum MPlan {
    /// `v ∈ I`: nothing to compute; bring in the reuse nodes missing from
    /// the initial state.
    Resident { v: NodeId },
    /// Input node: load it.
    Leaf { v: NodeId },
    /// Internal node: compute `first` then `second` (optionally spilling
    /// the first parent in between), then `v`; release parents not in `R`.
    Node {
        v: NodeId,
        first: std::rc::Rc<MPlan>,
        second: std::rc::Rc<MPlan>,
        parents: (NodeId, NodeId),
        spill_first: bool,
    },
}

impl<'a> Planner<'a> {
    fn pm(&mut self, v: NodeId, b: Weight) -> Option<(Weight, std::rc::Rc<MPlan>)> {
        let key = pack_key(v.index() as u64, b);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let result = self.compute(v, b);
        self.memo.insert(key, result.clone());
        result
    }

    fn compute(&mut self, v: NodeId, b: Weight) -> Option<(Weight, std::rc::Rc<MPlan>)> {
        use std::rc::Rc;
        let t = self.tree;
        let i = v.index();
        let mut occupancy = self.proj.r_weight[i];
        if !self.proj.in_r[i] {
            occupancy += t.weight(v);
        }
        for &p in t.preds(v) {
            if !self.proj.in_r[p.index()] {
                occupancy += t.weight(p);
            }
        }
        if occupancy > b {
            return None;
        }
        if self.proj.in_i[i] {
            return Some((
                self.proj.r_minus_i_weight[i],
                Rc::new(MPlan::Resident { v }),
            ));
        }
        let preds = t.preds(v);
        if preds.is_empty() {
            return Some((t.weight(v), Rc::new(MPlan::Leaf { v })));
        }
        if preds.len() == 1 {
            // Unary node: compute the parent, then v.
            let p = preds[0];
            let (c, pl) = self.pm(p, b)?;
            return Some((
                c,
                Rc::new(MPlan::Node {
                    v,
                    first: pl.clone(),
                    second: pl,
                    parents: (p, p),
                    spill_first: false,
                }),
            ));
        }
        assert_eq!(preds.len(), 2, "plan emission covers trees with k <= 2");
        let (p1, p2) = (preds[0], preds[1]);
        let (w1, w2) = (t.weight(p1), t.weight(p2));
        let i1 = self.proj.i_weight[p1.index()];
        let i2 = self.proj.i_weight[p2.index()];
        let r1 = self.proj.r_weight[p1.index()];
        let r2 = self.proj.r_weight[p2.index()];
        let r1p = r1 + if self.proj.in_r[p1.index()] { 0 } else { w1 };
        let r2p = r2 + if self.proj.in_r[p2.index()] { 0 } else { w2 };

        let mut best: Option<(Weight, Rc<MPlan>)> = None;
        // Keep-red strategies first so spills never win ties (a spill of a
        // reuse-state parent would violate the R semantics on emission).
        for (first, second, parents, held, extra, spill) in [
            (p1, p2, (p1, p2), r1p, 0, false),
            (p2, p1, (p2, p1), r2p, 0, false),
            (p1, p2, (p1, p2), r1, 2 * w1, true),
            (p2, p1, (p2, p1), r2, 2 * w2, true),
        ] {
            let other_initial = if first == p1 { i2 } else { i1 };
            let Some(b1) = b.checked_sub(other_initial) else {
                continue;
            };
            let Some(b2) = b.checked_sub(held) else {
                continue;
            };
            let (Some((c1, pl1)), Some((c2, pl2))) = (self.pm(first, b1), self.pm(second, b2))
            else {
                continue;
            };
            let cost = c1 + c2 + extra;
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((
                    cost,
                    Rc::new(MPlan::Node {
                        v,
                        first: pl1,
                        second: pl2,
                        parents,
                        spill_first: spill,
                    }),
                ));
            }
        }
        best
    }

    fn emit(&self, plan: &MPlan, out: &mut Vec<pebblyn_core::Move>) {
        use pebblyn_core::Move;
        match plan {
            MPlan::Resident { v } => {
                // Bring in the reuse nodes of this subtree that the initial
                // state does not already hold.
                for r in self.subtree_reuse_missing(*v) {
                    out.push(Move::Load(r));
                }
            }
            MPlan::Leaf { v } => out.push(Move::Load(*v)),
            MPlan::Node {
                v,
                first,
                second,
                parents,
                spill_first,
            } => {
                let unary = parents.0 == parents.1;
                self.emit(first, out);
                if *spill_first {
                    out.push(Move::Store(parents.0));
                    out.push(Move::Delete(parents.0));
                }
                if !unary {
                    self.emit(second, out);
                }
                if *spill_first {
                    out.push(Move::Load(parents.0));
                }
                out.push(Move::Compute(*v));
                let to_release: &[NodeId] = if unary {
                    &[parents.0]
                } else {
                    &[parents.0, parents.1]
                };
                for &p in to_release {
                    if !self.proj.in_r[p.index()] {
                        out.push(Move::Delete(p));
                    }
                }
            }
        }
    }

    /// Nodes of `pred(v) ∪ {v}` that are in `R` but not in `I`, in
    /// discovery order.
    fn subtree_reuse_missing(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(u) = stack.pop() {
            if self.proj.in_r[u.index()] && !self.proj.in_i[u.index()] {
                out.push(u);
            }
            stack.extend_from_slice(self.tree.preds(u));
        }
        out
    }
}

/// Generate a context schedule realising `P_m(root, budget, I, R)`
/// (binary trees only), or `None` when infeasible.
///
/// The schedule assumes every node of `states.initial` is already red
/// (with a blue copy) when it starts; on completion the root is red and
/// every node of `states.reuse` (projected onto the tree) is red.
pub fn plan(tree: &Cdag, budget: Weight, states: &MemoryStates) -> Option<ContextSchedule> {
    assert!(tree.is_in_tree(), "memory-state DP requires an in-tree");
    let root = tree.sinks()[0];
    with_large_stack(|| {
        let mut planner = Planner {
            tree,
            proj: project(tree, states),
            memo: FastHashMap::default(),
        };
        let (cost, mplan) = planner.pm(root, budget)?;
        let mut moves = Vec::new();
        planner.emit(&mplan, &mut moves);
        Some(ContextSchedule {
            schedule: pebblyn_core::Schedule::from_moves(moves),
            cost,
        })
    })
}

/// Replay a context schedule under the memory-state semantics: the
/// initial-state nodes start red (and blue), sources start blue, and at
/// the end the root plus all projected reuse nodes must be red.  Checks
/// the weighted budget after every move and returns the replayed I/O cost.
pub fn validate_in_context(
    tree: &Cdag,
    budget: Weight,
    states: &MemoryStates,
    ctx: &ContextSchedule,
) -> Result<Weight, String> {
    use pebblyn_core::Move;
    let root = tree.sinks()[0];
    let mut red = vec![false; tree.len()];
    let mut blue: Vec<bool> = tree.nodes().map(|v| tree.is_source(v)).collect();
    let mut used: Weight = 0;
    for &v in &states.initial {
        red[v.index()] = true;
        blue[v.index()] = true;
        used += tree.weight(v);
    }
    // Reuse-state nodes are assumed to have blue copies (§4.1: "we assume
    // that these nodes have blue pebbles and do not need to be
    // recomputed").
    for &v in &states.reuse {
        blue[v.index()] = true;
    }
    let mut cost = 0;
    for (step, mv) in ctx.schedule.iter().enumerate() {
        let v = mv.node();
        let i = v.index();
        match mv {
            Move::Load(_) => {
                if !blue[i] {
                    return Err(format!("step {step}: load of non-blue {v}"));
                }
                if !red[i] {
                    red[i] = true;
                    used += tree.weight(v);
                }
                cost += tree.weight(v);
            }
            Move::Store(_) => {
                if !red[i] {
                    return Err(format!("step {step}: store of non-red {v}"));
                }
                blue[i] = true;
                cost += tree.weight(v);
            }
            Move::Compute(_) => {
                if tree.is_source(v) {
                    return Err(format!("step {step}: compute of source {v}"));
                }
                for &p in tree.preds(v) {
                    if !red[p.index()] {
                        return Err(format!("step {step}: operand {p} not red for {v}"));
                    }
                }
                if !red[i] {
                    red[i] = true;
                    used += tree.weight(v);
                }
            }
            Move::Delete(_) => {
                if !red[i] {
                    return Err(format!("step {step}: delete of non-red {v}"));
                }
                red[i] = false;
                used -= tree.weight(v);
            }
        }
        if used > budget {
            return Err(format!("step {step}: budget exceeded ({used} > {budget})"));
        }
    }
    if !red[root.index()] {
        return Err("root not red at end".into());
    }
    for v in tree.nodes() {
        let in_r = states.reuse.contains(&v);
        if in_r && !red[v.index()] {
            return Err(format!("reuse node {v} not red at end"));
        }
    }
    Ok(cost)
}

/// Minimum weighted cost of computing the tree's root under `budget` with
/// the given memory-state semantics, or `None` when infeasible.
///
/// With `states = MemoryStates::none()` this equals the k-ary tree optimum
/// (for binary trees) *without* the final root store: the stopping condition
/// used by Eq. (8), like Eq. (2), is "root red".
pub fn min_cost(tree: &Cdag, budget: Weight, states: &MemoryStates) -> Option<Weight> {
    assert!(tree.is_in_tree(), "memory-state DP requires an in-tree");
    let root = tree.sinks()[0];
    min_cost_for(tree, root, budget, states)
}

/// As [`min_cost`] but for an arbitrary subtree root `v`.
pub fn min_cost_for(
    tree: &Cdag,
    v: NodeId,
    budget: Weight,
    states: &MemoryStates,
) -> Option<Weight> {
    with_large_stack(|| {
        let mut dp = Dp {
            tree,
            proj: project(tree, states),
            memo: FastHashMap::default(),
        };
        dp.pm(v, budget)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kary;
    use pebblyn_core::{min_feasible_budget, Move, Schedule};
    use pebblyn_graphs::tree::{caterpillar, full_kary};
    use pebblyn_graphs::WeightScheme;

    /// Without states, P_m must match the k-ary optimum minus the final
    /// root store (Eq. (8) stops at "root red").
    #[test]
    fn empty_states_match_kary() {
        for tree in [
            full_kary(2, 2, WeightScheme::Equal(3)).unwrap(),
            full_kary(2, 3, WeightScheme::DoubleAccumulator(2)).unwrap(),
            caterpillar(5, WeightScheme::Equal(2)).unwrap(),
        ] {
            let root = tree.sinks()[0];
            let minb = min_feasible_budget(&tree);
            for b in [minb, minb + 2, minb + 7, tree.total_weight()] {
                let pm = min_cost(&tree, b, &MemoryStates::none());
                let kt = kary::min_cost(&tree, b).map(|c| c - tree.weight(root));
                assert_eq!(pm, kt, "budget {b}");
            }
        }
    }

    #[test]
    fn initial_root_is_free_except_reuse() {
        let tree = full_kary(2, 2, WeightScheme::Equal(4)).unwrap();
        let root = tree.sinks()[0];
        let states = MemoryStates::new([root], []);
        assert_eq!(min_cost(&tree, 100, &states), Some(0));
        // Reuse of a leaf not initially resident costs its load.
        let leaf = tree.sources()[0];
        let states = MemoryStates::new([root], [leaf]);
        assert_eq!(min_cost(&tree, 100, &states), Some(4));
    }

    #[test]
    fn initial_leaves_reduce_cost() {
        // x, y -> s: with x resident, only y needs loading.
        let tree = pebblyn_graphs::testgraphs::single_add(WeightScheme::Equal(16));
        let x = tree.sources()[0];
        let none = MemoryStates::none();
        let with_x = MemoryStates::new([x], []);
        let b = 48;
        assert_eq!(min_cost(&tree, b, &none), Some(32));
        assert_eq!(min_cost(&tree, b, &with_x), Some(16));
    }

    #[test]
    fn reuse_reserves_budget() {
        // Caterpillar with reuse of a leaf: budget must cover the held leaf
        // while the rest of the tree is computed.
        let tree = caterpillar(4, WeightScheme::Equal(1)).unwrap();
        let leaf = tree.sources()[3]; // consumed last
        let states = MemoryStates::new([], [leaf]);
        let none_cost = min_cost(&tree, 4, &MemoryStates::none());
        let reuse_cost = min_cost(&tree, 4, &states);
        // Keeping the leaf resident cannot make the schedule cheaper, and at
        // a tight budget it may force spills.
        assert!(reuse_cost >= none_cost);
    }

    #[test]
    fn infeasible_when_reuse_exceeds_budget() {
        let tree = full_kary(2, 2, WeightScheme::Equal(10)).unwrap();
        let leaves = tree.sources();
        let states = MemoryStates::new([], leaves.iter().copied().take(3));
        // 3 held leaves (30) + root and parents don't fit in 35.
        assert_eq!(min_cost(&tree, 35, &states), None);
        assert!(min_cost(&tree, 100, &states).is_some());
    }

    /// The k-ary generalisation with empty states matches the Eq. (6)
    /// scheduler on trees of any arity.
    #[test]
    fn kary_empty_states_match_eq6() {
        for tree in [
            full_kary(3, 2, WeightScheme::Equal(3)).unwrap(),
            full_kary(4, 1, WeightScheme::DoubleAccumulator(2)).unwrap(),
            full_kary(
                3,
                2,
                WeightScheme::Custom {
                    input: 2,
                    compute: 5,
                },
            )
            .unwrap(),
        ] {
            let root = tree.sinks()[0];
            let minb = min_feasible_budget(&tree);
            for b in [minb, minb + 3, minb + 11, tree.total_weight()] {
                let pm = min_cost(&tree, b, &MemoryStates::none());
                let kt = kary::min_cost(&tree, b).map(|c| c - tree.weight(root));
                assert_eq!(pm, kt, "k-ary P_m vs Eq. (6) at budget {b}");
            }
        }
    }

    /// Initial leaves reduce a ternary tree's cost by exactly their loads.
    #[test]
    fn kary_initial_leaves_reduce_cost() {
        let tree = full_kary(3, 1, WeightScheme::Equal(4)).unwrap();
        let leaves = tree.sources();
        let b = tree.total_weight();
        let base = min_cost(&tree, b, &MemoryStates::none()).unwrap();
        for taken in 1..=3 {
            let states = MemoryStates::new(leaves.iter().copied().take(taken), []);
            let cost = min_cost(&tree, b, &states).unwrap();
            assert_eq!(cost, base - 4 * taken as Weight);
        }
    }

    /// Reuse states reserve budget in the k-ary case too: holding two
    /// leaves of a ternary join forces infeasibility at a tight budget.
    #[test]
    fn kary_reuse_reserves_budget() {
        let tree = full_kary(3, 1, WeightScheme::Equal(10)).unwrap();
        let leaves = tree.sources();
        // minimum feasible = 3 leaves + root = 40.
        assert_eq!(min_feasible_budget(&tree), 40);
        let states = MemoryStates::new([], leaves.iter().copied().take(2));
        // R ∪ H ∪ {v} still 40 — feasible at exactly 40, like the plain DP.
        assert!(min_cost(&tree, 40, &states).is_some());
        assert!(min_cost(&tree, 39, &states).is_none());
    }

    use pebblyn_core::Weight;

    /// The planner's cost always equals the cost-only DP, and its emitted
    /// context schedule replays to the same cost under the memory-state
    /// semantics.
    #[test]
    fn plans_match_costs_and_validate() {
        let tree = full_kary(2, 3, WeightScheme::DoubleAccumulator(2)).unwrap();
        let leaves = tree.sources();
        let cases = [
            MemoryStates::none(),
            MemoryStates::new(leaves.iter().copied().take(2), []),
            MemoryStates::new(
                leaves.iter().copied().take(1),
                leaves.iter().copied().take(1),
            ),
            MemoryStates::new([], leaves.iter().copied().take(2)),
        ];
        let minb = min_feasible_budget(&tree);
        for states in &cases {
            for b in [minb, minb + 4, minb + 10, tree.total_weight()] {
                let cost = min_cost(&tree, b, states);
                let ctx = plan(&tree, b, states);
                assert_eq!(cost, ctx.as_ref().map(|c| c.cost), "budget {b}");
                if let Some(ctx) = ctx {
                    let replayed = validate_in_context(&tree, b, states, &ctx)
                        .unwrap_or_else(|e| panic!("budget {b}, states {states:?}: {e}"));
                    assert_eq!(replayed, ctx.cost);
                }
            }
        }
    }

    /// §4.3 end to end: tile schedules generated *by the memory-state DP*
    /// stitch into a complete, validator-approved MVM schedule whose cost
    /// matches the hand-built tiling scheduler.
    #[test]
    fn pm_generated_tiles_stitch_into_full_mvm_schedule() {
        use crate::mvm_tiling::{self, TilingConfig};
        use pebblyn_graphs::MvmGraph;

        let scheme = WeightScheme::DoubleAccumulator(16);
        let (m, n) = (5usize, 4usize);
        let mvm = MvmGraph::new(m, n, scheme).unwrap();
        let g = mvm.cdag();

        // Build one row's in-tree with node ids remembered so the context
        // schedule can be remapped onto the real MVM graph.
        fn row_tree(
            mvm: &MvmGraph,
            r: usize,
            n: usize,
            scheme: WeightScheme,
        ) -> (Cdag, Vec<NodeId>, Vec<NodeId>) {
            let mut b = pebblyn_core::CdagBuilder::new();
            let mut map: Vec<NodeId> = Vec::new();
            fn node(
                b: &mut pebblyn_core::CdagBuilder,
                map: &mut Vec<NodeId>,
                orig: NodeId,
                w: Weight,
            ) -> NodeId {
                map.push(orig);
                b.node(w, format!("{orig}"))
            }
            let w_in = scheme.input_weight();
            let w_c = scheme.compute_weight();
            let mut acc = None;
            let mut vector_local = Vec::new();
            for c in 1..=n {
                let x = node(&mut b, &mut map, mvm.vector(c), w_in);
                vector_local.push(x);
                let a = node(&mut b, &mut map, mvm.matrix(r, c), w_in);
                let p = node(&mut b, &mut map, mvm.product(r, c), w_c);
                b.edge(x, p);
                b.edge(a, p);
                acc = Some(match acc {
                    None => p,
                    Some(prev) => {
                        let s = node(&mut b, &mut map, mvm.partial(r, c), w_c);
                        b.edge(prev, s);
                        b.edge(p, s);
                        s
                    }
                });
            }
            (b.build().unwrap(), map, vector_local)
        }

        // The stitched schedule: load the vector once; per row, emit the
        // P_m plan with I = R = vector, then store/evict the output.
        let mut stitched: Vec<Move> = (1..=n).map(|c| Move::Load(mvm.vector(c))).collect();
        let budget = mvm_tiling::config_peak(&mvm, &TilingConfig::new(1, n, n));
        for r in 1..=m {
            let (tree, map, vector_local) = row_tree(&mvm, r, n, scheme);
            let states = MemoryStates::new(vector_local.clone(), vector_local);
            let ctx = plan(&tree, budget, &states).expect("tile plan exists");
            let remapped = ctx.schedule.map_nodes(|v| map[v.index()]);
            stitched.extend(remapped.iter());
            stitched.push(Move::Store(mvm.output(r)));
            stitched.push(Move::Delete(mvm.output(r)));
        }
        for c in 1..=n {
            stitched.push(Move::Delete(mvm.vector(c)));
        }
        let stitched = Schedule::from_moves(stitched);

        // The stitched whole is a plain valid WRBPG schedule on the real
        // MVM graph, with the tiling scheduler's exact cost.
        let stats = pebblyn_core::validate_schedule(g, budget, &stitched)
            .unwrap_or_else(|e| panic!("stitched schedule invalid: {e}"));
        let reference = mvm_tiling::config_cost(&mvm, &TilingConfig::new(1, n, n));
        assert_eq!(stats.cost, reference);
        assert_eq!(stats.cost, pebblyn_core::algorithmic_lower_bound(g));
    }

    /// Cross-check against a hand-built schedule: MVM-style tile step where
    /// the vector entry is initially resident and stays resident (reuse).
    #[test]
    fn resident_operand_costs_only_the_streamed_side() {
        // a (matrix entry), x (vector) -> p; x initially resident + reused.
        let mut b = pebblyn_core::CdagBuilder::new();
        let x = b.node(16, "x");
        let a = b.node(16, "a");
        let p = b.node(32, "p");
        b.edge(x, p);
        b.edge(a, p);
        let tree = b.build().unwrap();
        let states = MemoryStates::new([x], [x]);
        // Only `a` must be loaded: cost 16.
        assert_eq!(min_cost(&tree, 64, &states), Some(16));
        // Sanity: the corresponding real schedule (x already red is emulated
        // by loading it first, outside the measured window).
        let sched = Schedule::from_moves(vec![Move::Load(x), Move::Load(a), Move::Compute(p)]);
        let stats = pebblyn_core::validate_schedule(
            &{
                // p is a sink; bypass stopping condition by storing it.
                tree.clone()
            },
            64,
            &Schedule::from_moves(sched.iter().chain([Move::Store(p)]).collect::<Vec<_>>()),
        )
        .unwrap();
        assert_eq!(stats.cost - 16 /* x load */ - 32 /* p store */, 16);
    }
}
