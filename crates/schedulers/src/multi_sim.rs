//! The shared multiprocessor schedule simulator.
//!
//! Both multiprocessor schedulers ([`crate::multi`]) are *assignment
//! policies*: they decide which processor computes each node and in what
//! global order.  This module turns such an `(assignment, order)` pair
//! into a concrete, rule-respecting [`MultiSchedule`]:
//!
//! * each processor runs **Belady eviction** over its own future use
//!   positions (the furthest-next-use policy of
//!   [`crate::greedy_belady`], per red set),
//! * a needed operand is acquired by the cheapest legal means: already
//!   red on the processor → free; blue → a load; red only on another
//!   processor → a [`MultiMove::Comm`] from the least-loaded holder
//!   (communication-aware source selection under the timing model),
//! * evicting a dirty value stores it first exactly when it is needed
//!   again on *some* processor (or is an unstored sink) and no other
//!   processor still holds it red — the invariant that every
//!   still-needed value stays recoverable (blue or red somewhere) is
//!   maintained, since recomputation is not a move of the game.
//!
//! Returns `None` when some node's operand set cannot fit inside its
//! assigned processor's budget — the multiprocessor analogue of the
//! single-processor schedulers' infeasibility.

use pebblyn_core::{Cdag, MachineSpec, MultiMove, MultiSchedule, NodeId, RedSet, Weight};
use std::collections::BinaryHeap;

/// Simulate per-processor Belady scheduling of `order` (a topological
/// order of the non-source nodes) with node-to-processor `assignment`
/// (indexed by `NodeId::index`; entries of source nodes are ignored).
///
/// Only processors `0..active` of `spec` are used; `assignment` entries
/// must be `< active`.
pub(crate) fn simulate(
    graph: &Cdag,
    spec: &MachineSpec,
    active: usize,
    assignment: &[usize],
    order: &[NodeId],
) -> Option<MultiSchedule> {
    debug_assert!(active >= 1 && active <= spec.num_procs());
    let n = graph.len();
    // use_positions[q][v] = positions in `order` where processor q's
    // computes consume v, ascending.
    let mut use_positions: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; active];
    for (pos, &v) in order.iter().enumerate() {
        let q = assignment[v.index()];
        debug_assert!(q < active, "assignment targets an inactive processor");
        for &u in graph.preds(v) {
            use_positions[q][u.index()].push(pos);
        }
    }

    let mut blue = RedSet::new(n);
    for &v in graph.sources() {
        blue.insert(v, graph.weight(v));
    }
    let mut st = Sim {
        graph,
        spec,
        active,
        moves: MultiSchedule::new(),
        red: (0..active).map(|_| RedSet::new(n)).collect(),
        blue,
        clock: vec![0; active],
        pinned: vec![false; n],
        next_use_cursor: vec![vec![0; n]; active],
        use_positions,
        victims: (0..active).map(|_| BinaryHeap::new()).collect(),
    };

    for (pos, &v) in order.iter().enumerate() {
        debug_assert!(!graph.is_source(v), "order lists computed nodes only");
        if !st.compute(pos, v, assignment[v.index()]) {
            return None;
        }
    }
    // Stopping condition: every sink needs a blue copy.  A red-only sink
    // is stored from whichever processor still holds it (there is always
    // one — eviction never drops the last copy of a dirty sink).
    for &v in graph.sinks() {
        if st.blue.contains(v) {
            continue;
        }
        let holder = (0..active).find(|&q| st.red[q].contains(v))?;
        st.store(holder, v);
    }
    Some(st.moves)
}

struct Sim<'a> {
    graph: &'a Cdag,
    spec: &'a MachineSpec,
    active: usize,
    moves: MultiSchedule,
    red: Vec<RedSet>,
    blue: RedSet,
    /// Per-processor finish-time estimates under the timing model; used
    /// to pick the cheapest communication source, not for validity.
    clock: Vec<Weight>,
    pinned: Vec<bool>,
    next_use_cursor: Vec<Vec<usize>>,
    use_positions: Vec<Vec<Vec<usize>>>,
    /// Per-processor max-heaps of (next_use, node) victim candidates;
    /// entries may be stale and are re-validated on pop (lazy deletion).
    victims: Vec<BinaryHeap<(usize, NodeId)>>,
}

impl<'a> Sim<'a> {
    /// The next position at which `v` is consumed by processor `q`'s
    /// computes, from `now` onward; `usize::MAX` when never again.
    fn next_use(&mut self, q: usize, v: NodeId, now: usize) -> usize {
        let uses = &self.use_positions[q][v.index()];
        let cur = &mut self.next_use_cursor[q][v.index()];
        while *cur < uses.len() && uses[*cur] < now {
            *cur += 1;
        }
        uses.get(*cur).copied().unwrap_or(usize::MAX)
    }

    /// The next position at which any processor consumes `v`.
    fn next_use_anywhere(&mut self, v: NodeId, now: usize) -> usize {
        (0..self.active)
            .map(|q| self.next_use(q, v, now))
            .min()
            .unwrap_or(usize::MAX)
    }

    fn insert_resident(&mut self, q: usize, v: NodeId, now: usize) {
        self.red[q].insert(v, self.graph.weight(v));
        let nu = self.next_use(q, v, now);
        self.victims[q].push((nu, v));
    }

    fn store(&mut self, q: usize, v: NodeId) {
        let w = self.graph.weight(v);
        self.moves.push(MultiMove::Store { proc: q, node: v });
        self.blue.insert(v, w);
        self.clock[q] += w;
    }

    fn make_room(&mut self, q: usize, extra: Weight, now: usize) -> bool {
        while self.red[q].weight() + extra > self.spec.proc_budget(q) {
            // Pop until a live, unpinned resident entry with a current key
            // surfaces (lazy revalidation); pinned entries are parked and
            // re-inserted so they stay evictable later.
            let mut parked: Vec<(usize, NodeId)> = Vec::new();
            let victim = loop {
                let Some((key, v)) = self.victims[q].pop() else {
                    self.victims[q].extend(parked);
                    return false;
                };
                if !self.red[q].contains(v) {
                    continue; // stale entry for an already-evicted node
                }
                if self.pinned[v.index()] {
                    parked.push((key, v));
                    continue;
                }
                let fresh = self.next_use(q, v, now);
                if fresh != key {
                    self.victims[q].push((fresh, v));
                    continue;
                }
                break v;
            };
            self.victims[q].extend(parked);
            let dirty = !self.blue.contains(victim);
            let red_elsewhere = (0..self.active).any(|r| r != q && self.red[r].contains(victim));
            let needed_again = self.next_use_anywhere(victim, now) != usize::MAX
                || (self.graph.is_sink(victim) && dirty);
            if dirty && needed_again && !red_elsewhere {
                self.store(q, victim);
            }
            self.moves.push(MultiMove::Delete {
                proc: q,
                node: victim,
            });
            self.red[q].remove(victim, self.graph.weight(victim));
        }
        true
    }

    /// Make `v` red on processor `q`: free if already resident, a load if
    /// blue, otherwise a communication from the least-loaded holder.
    fn make_red(&mut self, q: usize, v: NodeId, now: usize) -> bool {
        if self.red[q].contains(v) {
            return true;
        }
        let w = self.graph.weight(v);
        if !self.make_room(q, w, now) {
            return false;
        }
        if self.blue.contains(v) {
            self.moves.push(MultiMove::Load { proc: q, node: v });
            self.clock[q] += w;
            self.insert_resident(q, v, now);
            return true;
        }
        // Red on some other processor (the recoverability invariant).
        // Choose the sender with the smallest clock: the communication
        // synchronizes both endpoints, so the cheapest source is the one
        // that least delays the receiver.
        let sender = (0..self.active)
            .filter(|&r| r != q && self.red[r].contains(v))
            .min_by_key(|&r| (self.clock[r], r));
        let Some(r) = sender else {
            debug_assert!(false, "value {v} neither blue nor red anywhere");
            return false;
        };
        self.moves.push(MultiMove::Comm {
            from: r,
            to: q,
            node: v,
        });
        let t = self.clock[r].max(self.clock[q]) + self.spec.comm_price() * w;
        self.clock[r] = t;
        self.clock[q] = t;
        self.insert_resident(q, v, now);
        true
    }

    fn compute(&mut self, now: usize, v: NodeId, q: usize) -> bool {
        for &u in self.graph.preds(v) {
            self.pinned[u.index()] = true;
        }
        let ok = self
            .graph
            .preds(v)
            .to_vec()
            .into_iter()
            .all(|u| self.make_red(q, u, now))
            && self.make_room(q, self.graph.weight(v), now);
        for &u in self.graph.preds(v) {
            self.pinned[u.index()] = false;
        }
        if !ok {
            return false;
        }
        self.moves.push(MultiMove::Compute { proc: q, node: v });
        self.clock[q] += self.graph.weight(v);
        self.insert_resident(q, v, now + 1);
        // Re-key the parents on q: their just-consumed use is gone, so
        // their next-use keys grew; grown keys must be pushed eagerly
        // (lazy revalidation on pop can only shrink stale priorities).
        for &u in self.graph.preds(v) {
            if self.red[q].contains(u) {
                let nu = self.next_use(q, u, now + 1);
                self.victims[q].push((nu, u));
            }
        }
        true
    }
}
