//! Dataflow-specific tiling for Matrix-Vector Multiplication — §4.3.
//!
//! The scheduler holds a *tile* of `tile_height` output rows in fast memory
//! and streams the matrix column by column.  Two residency resources trade
//! off against each other:
//!
//! * **accumulators** — one live partial sum per tile row; a taller tile
//!   means the vector is re-read fewer times (`⌈m / h⌉` passes), and
//! * **vector entries** — a `resident_vector` prefix of `x` pinned in fast
//!   memory is read once instead of once per pass.
//!
//! With arbitrary node weights the relative cost of an accumulator versus a
//! vector word decides which resource wins: in the *Equal* configuration
//! `MVM(96, 120)` favours a full-height tile (99 words), while *Double
//! Accumulator* favours a fully resident vector (126 words) — Table 1.
//!
//! [`best_config`] searches the whole `(height, residency)` family under a
//! budget; `tile_width < n` (spilling accumulators between column chunks)
//! is supported for the ablation study and is never chosen by the search
//! because it adds I/O without lowering peak occupancy.

use pebblyn_core::{Move, Schedule, Weight};
use pebblyn_graphs::MvmGraph;

/// One point of the tiling family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingConfig {
    /// Number of output rows processed concurrently (`1..=m`).
    pub tile_height: usize,
    /// Number of leading vector entries pinned in fast memory (`0..=n`).
    pub resident_vector: usize,
    /// Columns accumulated before spilling the tile's partial sums
    /// (`1..=n`; `n` means never spill — the default).
    pub tile_width: usize,
}

impl TilingConfig {
    /// The default configuration family member: full width, given height
    /// and residency.
    pub fn new(tile_height: usize, resident_vector: usize, n: usize) -> Self {
        TilingConfig {
            tile_height,
            resident_vector,
            tile_width: n,
        }
    }
}

/// Analytic weighted I/O cost of a config (equals the emitted schedule's
/// replayed cost; asserted in tests).
pub fn config_cost(mvm: &MvmGraph, cfg: &TilingConfig) -> Weight {
    let (m, n) = (mvm.m() as Weight, mvm.n() as Weight);
    let w_in = mvm.scheme().input_weight();
    let w_c = mvm.scheme().compute_weight();
    let h = cfg.tile_height as Weight;
    let vr = cfg.resident_vector as Weight;
    let passes = m.div_ceil(h);
    let chunks = n.div_ceil(cfg.tile_width as Weight);
    let matrix = m * n * w_in;
    let vector = (vr + passes * (n - vr)) * w_in;
    let outputs = m * w_c;
    let acc_spills = m * (chunks - 1) * 2 * w_c;
    matrix + vector + outputs + acc_spills
}

/// Analytic peak fast-memory occupancy of a config in bits (equals the
/// emitted schedule's replayed peak; asserted in tests).
pub fn config_peak(mvm: &MvmGraph, cfg: &TilingConfig) -> Weight {
    let n = mvm.n();
    let w_in = mvm.scheme().input_weight();
    let w_c = mvm.scheme().compute_weight();
    let h = cfg.tile_height as Weight;
    let vr = cfg.resident_vector as Weight;
    let transient_x = if cfg.resident_vector < n { w_in } else { 0 };
    if n == 1 {
        // No accumulators: x + a + p.
        return vr * w_in + transient_x + w_in + w_c;
    }
    // Column c >= 2, any row: (h−1) waiting accumulators + the row's current
    // accumulator, plus max(product + matrix entry, product + new
    // accumulator) transient.
    vr * w_in + transient_x + (h + 1) * w_c + w_in.max(w_c)
}

/// The largest resident-vector prefix that fits beside a height-`h` tile
/// under `budget`, or `None` when even `resident_vector = 0` does not fit.
fn max_residency(mvm: &MvmGraph, h: usize, budget: Weight) -> Option<usize> {
    let n = mvm.n();
    let w_in = mvm.scheme().input_weight();
    // Full residency drops the transient vector slot; try it first.
    let full = TilingConfig::new(h, n, n);
    if config_peak(mvm, &full) <= budget {
        return Some(n);
    }
    let zero = TilingConfig::new(h, 0, n);
    let fixed = config_peak(mvm, &zero);
    if fixed > budget {
        return None;
    }
    Some((((budget - fixed) / w_in) as usize).min(n - 1))
}

/// Search the `(tile_height, resident_vector)` family for the cheapest
/// config that fits under `budget`.
pub fn best_config(mvm: &MvmGraph, budget: Weight) -> Option<TilingConfig> {
    let mut best: Option<(Weight, TilingConfig)> = None;
    for h in 1..=mvm.m() {
        let Some(vr) = max_residency(mvm, h, budget) else {
            // Peak grows with h; taller tiles cannot fit either...
            // unless full residency flips the transient term, so keep
            // scanning (cheap) rather than break.
            continue;
        };
        let cfg = TilingConfig::new(h, vr, mvm.n());
        let cost = config_cost(mvm, &cfg);
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, cfg));
        }
    }
    best.map(|(_, cfg)| cfg)
}

/// Minimum weighted schedule cost the tiling family achieves under
/// `budget`, or `None` when no config fits.
pub fn min_cost(mvm: &MvmGraph, budget: Weight) -> Option<Weight> {
    best_config(mvm, budget).map(|cfg| config_cost(mvm, &cfg))
}

/// Generate the best tiling schedule under `budget`.
pub fn schedule(mvm: &MvmGraph, budget: Weight) -> Option<Schedule> {
    best_config(mvm, budget).map(|cfg| schedule_with_config(mvm, &cfg))
}

/// The smallest budget at which the tiling family reaches the algorithmic
/// lower bound (Definition 2.6) — the closed form behind Table 1's MVM
/// rows.
///
/// The cost hits the lower bound exactly when the vector is read once:
/// either the whole vector is resident (`resident_vector = n`, minimised at
/// `tile_height = 1`) or there is a single pass (`tile_height = m`,
/// minimised at `resident_vector = 0`).
pub fn min_memory(mvm: &MvmGraph) -> Weight {
    let n = mvm.n();
    let vector_resident = config_peak(mvm, &TilingConfig::new(1, n, n));
    let full_height = config_peak(mvm, &TilingConfig::new(mvm.m(), 0, n));
    vector_resident.min(full_height)
}

/// Emit the concrete move sequence for a configuration.
///
/// The caller is responsible for checking [`config_peak`] against the
/// intended budget; the emitted schedule's replayed peak equals it exactly.
pub fn schedule_with_config(mvm: &MvmGraph, cfg: &TilingConfig) -> Schedule {
    let (m, n) = (mvm.m(), mvm.n());
    assert!((1..=m).contains(&cfg.tile_height), "tile height in 1..=m");
    assert!(cfg.resident_vector <= n, "resident vector in 0..=n");
    assert!((1..=n).contains(&cfg.tile_width), "tile width in 1..=n");
    let mut mv = Vec::new();

    // Pin the resident vector prefix for the whole schedule.
    for c in 1..=cfg.resident_vector {
        mv.push(Move::Load(mvm.vector(c)));
    }

    let mut row0 = 1;
    while row0 <= m {
        let rows = row0..=(row0 + cfg.tile_height - 1).min(m);
        let mut col0 = 1;
        while col0 <= n {
            let cols = col0..=(col0 + cfg.tile_width - 1).min(n);
            // Reload spilled accumulators at an interior chunk boundary.
            if col0 > 1 {
                for r in rows.clone() {
                    mv.push(Move::Load(acc_node(mvm, r, col0 - 1)));
                }
            }
            for c in cols.clone() {
                if c > cfg.resident_vector {
                    mv.push(Move::Load(mvm.vector(c)));
                }
                for r in rows.clone() {
                    mv.push(Move::Load(mvm.matrix(r, c)));
                    mv.push(Move::Compute(mvm.product(r, c)));
                    mv.push(Move::Delete(mvm.matrix(r, c)));
                    if c > 1 {
                        mv.push(Move::Compute(mvm.partial(r, c)));
                        mv.push(Move::Delete(mvm.product(r, c)));
                        mv.push(Move::Delete(acc_node(mvm, r, c - 1)));
                    }
                    if c == n {
                        let out = mvm.output(r);
                        mv.push(Move::Store(out));
                        mv.push(Move::Delete(out));
                    }
                }
                if c > cfg.resident_vector {
                    mv.push(Move::Delete(mvm.vector(c)));
                }
            }
            // Spill live accumulators at an interior chunk boundary.
            if *cols.end() < n {
                for r in rows.clone() {
                    let acc = acc_node(mvm, r, *cols.end());
                    mv.push(Move::Store(acc));
                    mv.push(Move::Delete(acc));
                }
            }
            col0 = *cols.end() + 1;
        }
        row0 = *rows.end() + 1;
    }

    for c in 1..=cfg.resident_vector {
        mv.push(Move::Delete(mvm.vector(c)));
    }
    Schedule::from_moves(mv)
}

/// The node holding row `r`'s running sum after column `c`:
/// the column-1 product for `c = 1`, else `partial(r, c)`.
fn acc_node(mvm: &MvmGraph, r: usize, c: usize) -> pebblyn_core::NodeId {
    if c == 1 {
        mvm.product(r, 1)
    } else {
        mvm.partial(r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, validate_schedule};
    use pebblyn_graphs::WeightScheme;

    fn check_config(mvm: &MvmGraph, cfg: TilingConfig) {
        let s = schedule_with_config(mvm, &cfg);
        let peak = config_peak(mvm, &cfg);
        let stats =
            validate_schedule(mvm.cdag(), peak, &s).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        assert_eq!(
            stats.cost,
            config_cost(mvm, &cfg),
            "analytic cost mismatch for {cfg:?}"
        );
        assert_eq!(
            stats.peak_red_weight, peak,
            "analytic peak mismatch for {cfg:?}"
        );
    }

    #[test]
    fn all_heights_and_residencies_validate() {
        for scheme in WeightScheme::paper_configs() {
            let mvm = MvmGraph::new(5, 4, scheme).unwrap();
            for h in 1..=5 {
                for vr in 0..=4 {
                    check_config(&mvm, TilingConfig::new(h, vr, 4));
                }
            }
        }
    }

    #[test]
    fn narrow_tiles_validate_and_cost_more() {
        let mvm = MvmGraph::new(4, 6, WeightScheme::Equal(8)).unwrap();
        let wide = TilingConfig::new(2, 0, 6);
        for w in 1..6 {
            let cfg = TilingConfig {
                tile_width: w,
                ..wide
            };
            check_config(&mvm, cfg);
            assert!(
                config_cost(&mvm, &cfg) > config_cost(&mvm, &wide),
                "spilling accumulators must cost extra (width {w})"
            );
        }
    }

    #[test]
    fn single_column_mvm() {
        let mvm = MvmGraph::new(4, 1, WeightScheme::DoubleAccumulator(16)).unwrap();
        for h in 1..=4 {
            for vr in 0..=1 {
                check_config(&mvm, TilingConfig::new(h, vr, 1));
            }
        }
    }

    #[test]
    fn uneven_tiles_validate() {
        // m not divisible by tile height.
        let mvm = MvmGraph::new(7, 3, WeightScheme::Equal(4)).unwrap();
        for h in [2, 3, 4, 5, 6] {
            check_config(&mvm, TilingConfig::new(h, 1, 3));
        }
    }

    #[test]
    fn best_config_reaches_lower_bound_with_ample_budget() {
        for scheme in WeightScheme::paper_configs() {
            let mvm = MvmGraph::new(6, 5, scheme).unwrap();
            let lb = algorithmic_lower_bound(mvm.cdag());
            let b = mvm.cdag().total_weight();
            assert_eq!(min_cost(&mvm, b), Some(lb));
            let s = schedule(&mvm, b).unwrap();
            let stats = validate_schedule(mvm.cdag(), b, &s).unwrap();
            assert_eq!(stats.cost, lb);
        }
    }

    #[test]
    fn cost_is_monotone_in_budget() {
        let mvm = MvmGraph::new(6, 5, WeightScheme::DoubleAccumulator(16)).unwrap();
        let mut prev: Option<Weight> = None;
        let mut b = 0;
        while b <= mvm.cdag().total_weight() {
            if let Some(c) = min_cost(&mvm, b) {
                let s = schedule(&mvm, b).unwrap();
                let stats = validate_schedule(mvm.cdag(), b, &s).unwrap();
                assert_eq!(stats.cost, c);
                if let Some(p) = prev {
                    assert!(c <= p, "tiling cost increased with budget at b={b}");
                }
                prev = Some(c);
            }
            b += 16;
        }
        assert!(prev.is_some(), "tiling never became feasible");
    }

    #[test]
    fn min_memory_matches_paper_table_1() {
        // Equal MVM(96,120): 99 words of 16 bits.
        let mvm = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
        assert_eq!(min_memory(&mvm), 99 * 16);
        // DA MVM(96,120): 126 words.
        let mvm = MvmGraph::new(96, 120, WeightScheme::DoubleAccumulator(16)).unwrap();
        assert_eq!(min_memory(&mvm), 126 * 16);
    }

    #[test]
    fn min_memory_is_tight() {
        for scheme in WeightScheme::paper_configs() {
            let mvm = MvmGraph::new(8, 6, scheme).unwrap();
            let lb = algorithmic_lower_bound(mvm.cdag());
            let b = min_memory(&mvm);
            assert_eq!(min_cost(&mvm, b), Some(lb));
            assert_ne!(
                min_cost(&mvm, b - mvm.cdag().weight_gcd()),
                Some(lb),
                "min_memory must be the smallest lattice budget reaching LB"
            );
        }
    }

    #[test]
    fn equal_prefers_tall_tiles_da_prefers_resident_vector() {
        let eq = MvmGraph::new(96, 120, WeightScheme::Equal(16)).unwrap();
        let cfg = best_config(&eq, 99 * 16).unwrap();
        assert_eq!(cfg.tile_height, 96);
        assert_eq!(cfg.resident_vector, 0);

        let da = MvmGraph::new(96, 120, WeightScheme::DoubleAccumulator(16)).unwrap();
        let cfg = best_config(&da, 126 * 16).unwrap();
        assert_eq!(cfg.resident_vector, 120);
        assert_eq!(cfg.tile_height, 1);
    }

    #[test]
    fn below_family_minimum_returns_none() {
        let mvm = MvmGraph::new(4, 3, WeightScheme::Equal(16)).unwrap();
        let least = config_peak(&mvm, &TilingConfig::new(1, 0, 3));
        assert!(min_cost(&mvm, least).is_some());
        assert!(min_cost(&mvm, least - 1).is_none());
    }
}
