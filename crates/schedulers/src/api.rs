//! The unified [`Scheduler`] trait — every algorithm in this crate behind
//! one object-safe interface.
//!
//! The free functions in the sibling modules remain the primary,
//! fully-typed API (they accept the concrete graph types and expose
//! algorithm-specific knobs like [`crate::dwt_opt::IoCosts`]).  This module
//! adapts them to a single dynamic surface so the CLI, the sweep engine and
//! the benches can hold a `&dyn Scheduler` and iterate over
//! [`registry`] without a per-call match on (workload, algorithm).
//!
//! Typed schedulers (the DWT DP, the MVM tiling, the streaming families)
//! need structural metadata a bare [`Cdag`](pebblyn_core::Cdag) does not
//! carry, so the trait takes
//! [`AnyGraph`] — the workload-erased graph from
//! `pebblyn-graphs` — and advertises applicability through
//! [`Scheduler::supports`].  Graph-generic algorithms (layer-by-layer,
//! Belady, naive, k-ary on in-trees) support every variant, including
//! [`AnyGraph::Custom`] wrappers around arbitrary CDAGs.

use crate::{
    banded_stream, conv_stream, dwt_opt, greedy_belady, kary, layer_by_layer, mvm_tiling, naive,
};
use pebblyn_core::{validate_schedule, Schedule, Weight};
use pebblyn_graphs::AnyGraph;

/// One scheduling algorithm, workload-erased.
///
/// Implementations are zero-sized unit structs; dispatch over them with
/// `&dyn Scheduler` (they are all `Send + Sync`, so sweeps may share them
/// across threads).  Calling [`schedule`](Scheduler::schedule) or
/// [`min_cost`](Scheduler::min_cost) on an unsupported graph returns
/// `None`; check [`supports`](Scheduler::supports) first to distinguish
/// "not applicable" from "budget too small".
pub trait Scheduler: Send + Sync {
    /// Stable machine-readable name (registry key, sweep-row label).
    fn name(&self) -> &str;

    /// Whether this algorithm applies to `g` at all.
    fn supports(&self, g: &AnyGraph) -> bool;

    /// A concrete schedule within `budget`, or `None` when the graph is
    /// unsupported or the budget too small.
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule>;

    /// The scheduler's cost at `budget`.
    ///
    /// The default generates the schedule and replays it through
    /// [`validate_schedule`]; DP-based schedulers override this with their
    /// direct cost recurrences (no move materialization).
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        let s = self.schedule(g, budget)?;
        validate_schedule(g.cdag(), budget, &s)
            .ok()
            .map(|st| st.cost)
    }

    /// Whether `min_cost` is non-increasing in the budget, which lets
    /// minimum-memory searches bisect instead of scanning linearly
    /// (see [`crate::min_memory`](mod@crate::min_memory)).
    fn monotone(&self) -> bool {
        false
    }
}

/// Algorithm 1 — the provably optimal DWT dynamic program.
#[derive(Debug, Clone, Copy, Default)]
pub struct DwtOpt;

impl Scheduler for DwtOpt {
    fn name(&self) -> &str {
        "dwt-opt"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Dwt(d) if d.satisfies_pruning_condition())
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        match g {
            AnyGraph::Dwt(d) if d.satisfies_pruning_condition() => dwt_opt::schedule(d, budget),
            _ => None,
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match g {
            AnyGraph::Dwt(d) if d.satisfies_pruning_condition() => dwt_opt::min_cost(d, budget),
            _ => None,
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// Theorem 3.8 — the k-ary (in-tree) dynamic program.  Optimal within
/// contiguous subtree evaluations; certifiably globally optimal when
/// [`kary::contiguous_evaluation_safe`] holds (see the module docs for the
/// counterexample the conformance fuzzer found outside that regime).
#[derive(Debug, Clone, Copy, Default)]
pub struct Kary;

impl Scheduler for Kary {
    fn name(&self) -> &str {
        "kary"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        g.cdag().is_in_tree()
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        let cdag = g.cdag();
        cdag.is_in_tree()
            .then(|| kary::schedule(cdag, budget))
            .flatten()
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        let cdag = g.cdag();
        cdag.is_in_tree()
            .then(|| kary::min_cost(cdag, budget))
            .flatten()
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4.3 — the MVM tiling with accumulator/vector residency search.
#[derive(Debug, Clone, Copy, Default)]
pub struct MvmTiling;

impl Scheduler for MvmTiling {
    fn name(&self) -> &str {
        "mvm-tiling"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Mvm(_))
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        match g {
            AnyGraph::Mvm(m) => mvm_tiling::schedule(m, budget),
            _ => None,
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match g {
            AnyGraph::Mvm(m) => mvm_tiling::min_cost(m, budget),
            _ => None,
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4 — sliding-window streaming for FIR convolution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvStream;

impl Scheduler for ConvStream {
    fn name(&self) -> &str {
        "conv-stream"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Conv(_))
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        match g {
            AnyGraph::Conv(c) => conv_stream::schedule(c, budget),
            _ => None,
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match g {
            AnyGraph::Conv(c) => conv_stream::min_cost(c, budget),
            _ => None,
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4.3 specialised to banded matrices — streaming banded MVM.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandedStream;

impl Scheduler for BandedStream {
    fn name(&self) -> &str {
        "banded-stream"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Banded { .. })
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        match g {
            AnyGraph::Banded { graph, .. } => banded_stream::schedule(graph, budget),
            _ => None,
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Option<Weight> {
        match g {
            AnyGraph::Banded { graph, .. } => banded_stream::min_cost(graph, budget),
            _ => None,
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §5.1 — the layer-by-layer heuristic baseline (boustrophedon + FIFO).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerByLayer;

impl Scheduler for LayerByLayer {
    fn name(&self) -> &str {
        "layer-by-layer"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        layer_by_layer::schedule(g, budget, layer_by_layer::LayerByLayerOptions::default())
    }
}

/// Greedy scheduler with Belady (furthest-next-use) eviction.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBelady;

impl Scheduler for GreedyBelady {
    fn name(&self) -> &str {
        "greedy-belady"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        greedy_belady::schedule(g.cdag(), budget)
    }
}

/// Proposition 2.3 — the trivial topological-order schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Scheduler for Naive {
    fn name(&self) -> &str {
        "naive"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Option<Schedule> {
        naive::schedule(g.cdag(), budget)
    }
}

/// Every scheduler in the crate, as trait objects.
pub static REGISTRY: &[&dyn Scheduler] = &[
    &DwtOpt,
    &Kary,
    &MvmTiling,
    &ConvStream,
    &BandedStream,
    &LayerByLayer,
    &GreedyBelady,
    &Naive,
];

/// All registered schedulers (registration order is stable — sweep output
/// depends on it).
pub fn registry() -> &'static [&'static dyn Scheduler] {
    REGISTRY
}

/// Look a scheduler up by its [`Scheduler::name`].
pub fn by_name(name: &str) -> Option<&'static dyn Scheduler> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::min_feasible_budget;
    use pebblyn_graphs::{testgraphs, WeightScheme, Workload};

    fn instances() -> Vec<AnyGraph> {
        let scheme = WeightScheme::Equal(4);
        let mut out: Vec<AnyGraph> = [
            Workload::Dwt { n: 16, d: 4 },
            Workload::Mvm { m: 4, n: 5 },
            Workload::Conv { n: 12, k: 3 },
            Workload::Dwt2d { n: 8, levels: 2 },
            Workload::Banded {
                n: 12,
                bandwidth: 2,
            },
        ]
        .into_iter()
        .map(|w| AnyGraph::build(w, scheme).unwrap())
        .collect();
        out.push(AnyGraph::custom(
            "diamond",
            testgraphs::diamond(WeightScheme::Equal(8)),
        ));
        out
    }

    /// Every registered scheduler, on every graph it supports, produces a
    /// schedule that validates at a generous budget, and the trait-level
    /// `min_cost` agrees with the replayed cost.
    #[test]
    fn registry_schedules_validate_everywhere() {
        for g in instances() {
            let budget = 4 * g.cdag().total_weight();
            for s in registry() {
                if !s.supports(&g) {
                    assert!(
                        s.schedule(&g, budget).is_none(),
                        "{} must refuse unsupported {}",
                        s.name(),
                        g.name()
                    );
                    continue;
                }
                let sched = s.schedule(&g, budget).unwrap_or_else(|| {
                    panic!("{} infeasible on {} at ample budget", s.name(), g.name())
                });
                let stats = validate_schedule(g.cdag(), budget, &sched)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), g.name()));
                let cost = s
                    .min_cost(&g, budget)
                    .unwrap_or_else(|| panic!("{} min_cost on {}", s.name(), g.name()));
                assert!(
                    cost <= stats.cost,
                    "{} on {}: min_cost {cost} exceeds replay {}",
                    s.name(),
                    g.name(),
                    stats.cost
                );
            }
        }
    }

    #[test]
    fn below_feasibility_every_scheduler_declines() {
        for g in instances() {
            let too_small = min_feasible_budget(g.cdag()) - 1;
            for s in registry() {
                assert!(s.schedule(&g, too_small).is_none(), "{}", s.name());
                assert!(s.min_cost(&g, too_small).is_none(), "{}", s.name());
            }
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for s in registry() {
            let found = by_name(s.name()).expect("every name resolves");
            assert_eq!(found.name(), s.name());
        }
        let mut names: Vec<_> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
        assert!(by_name("no-such-scheduler").is_none());
    }

    #[test]
    fn typed_specialists_match_the_trait_surface() {
        let g = AnyGraph::build(Workload::Dwt { n: 32, d: 5 }, WeightScheme::Equal(16)).unwrap();
        let AnyGraph::Dwt(ref d) = g else {
            unreachable!()
        };
        let budget = 24 * 16;
        assert_eq!(DwtOpt.min_cost(&g, budget), dwt_opt::min_cost(d, budget));
        assert!(DwtOpt.monotone());
    }
}
