//! The unified [`Scheduler`] trait — every algorithm in this crate behind
//! one object-safe interface.
//!
//! The free functions in the sibling modules remain the primary,
//! fully-typed API (they accept the concrete graph types and expose
//! algorithm-specific knobs like [`crate::dwt_opt::IoCosts`]).  This module
//! adapts them to a single dynamic surface so the CLI, the sweep engine and
//! the benches can hold a `&dyn Scheduler` and iterate over
//! [`registry`] without a per-call match on (workload, algorithm).
//!
//! Typed schedulers (the DWT DP, the MVM tiling, the streaming families)
//! need structural metadata a bare [`Cdag`](pebblyn_core::Cdag) does not
//! carry, so the trait takes
//! [`AnyGraph`] — the workload-erased graph from
//! `pebblyn-graphs` — and advertises applicability through
//! [`Scheduler::supports`].  Graph-generic algorithms (layer-by-layer,
//! Belady, naive, k-ary on in-trees) support every variant, including
//! [`AnyGraph::Custom`] wrappers around arbitrary CDAGs.
//!
//! # The trait contract (sealed)
//!
//! [`Scheduler::schedule`] and [`Scheduler::min_cost`] return
//! `Result<_, ScheduleError>`, distinguishing three outcomes the older
//! `Option` surface conflated behind one `None`:
//!
//! - [`ScheduleError::Unsupported`] — wrong graph family; equivalently,
//!   [`Scheduler::supports`] is `false`.
//! - [`ScheduleError::InfeasibleBudget`] — the budget is too small for
//!   this algorithm, with an optional `min_feasible` hint when the budget
//!   is below the game-level minimum of Proposition 2.3 (no algorithm
//!   can succeed there).
//! - [`ScheduleError::ValidationFailed`] — the schedule was produced but
//!   failed [`validate_schedule`]; always a scheduler bug, never an input
//!   error.
//!
//! The deprecated Option-typed `schedule_opt`/`min_cost_opt` shims kept
//! for one release after that migration are gone.  The trait is also now
//! **sealed** behind the `#[doc(hidden)]` [`sealed::Sealed`] marker:
//! downstream crates cannot implement `Scheduler` accidentally, so the
//! trait can grow defaulted methods without breaking anyone.  Test-only
//! implementations (the conformance mutants, harness fakes) opt in
//! explicitly with `impl api::sealed::Sealed for MyFake {}` — the escape
//! hatch is public but undocumented, marking every implementor outside
//! this module as deliberate.
//!
//! # Request execution
//!
//! The typed request surface ([`ScheduleRequest`]/[`ScheduleResponse`]
//! from `pebblyn-core`) is executed here: [`execute`] resolves the
//! requested scheduler name against the [`registry`] and answers the
//! request; [`execute_with`] skips resolution for callers that already
//! hold a trait object (the engine's sweep series).  The CLI, the engine,
//! and the `pebblyn serve` daemon all funnel through these two functions.

use crate::{
    banded_stream, conv_stream, dwt_opt, greedy_belady, kary, layer_by_layer, multi, mvm_tiling,
    naive,
};
use pebblyn_core::{
    min_feasible_budget, validate_multi_schedule, validate_schedule, MachineSpec, MultiSchedule,
    MultiValidityError, Schedule, ScheduleRequest, ScheduleResponse, ValidityError, Weight,
};
use pebblyn_graphs::AnyGraph;
use pebblyn_telemetry as telemetry;
use std::borrow::Borrow;

/// The private-in-spirit marker module sealing [`Scheduler`].
///
/// Hidden from docs: implementing [`sealed::Sealed`] outside this crate is
/// reserved for test doubles (the conformance harness's fault-injection
/// mutants).  Production schedulers live in this crate and are listed in
/// [`REGISTRY`].
#[doc(hidden)]
pub mod sealed {
    /// Marker supertrait restricting who may implement `Scheduler`.
    pub trait Sealed {}
}

/// Why a [`Scheduler`] call produced no schedule or cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The algorithm does not apply to this graph family at all
    /// (equivalently, [`Scheduler::supports`] is `false`).
    Unsupported,
    /// The graph is supported but the fast-memory budget is too small for
    /// this algorithm.
    InfeasibleBudget {
        /// The game-level minimum feasible budget (Proposition 2.3) when
        /// the requested budget is below it — no algorithm can schedule
        /// the graph there.  `None` means only that *this* algorithm
        /// failed; a stronger one may still succeed at this budget.
        min_feasible: Option<Weight>,
    },
    /// The algorithm produced a schedule that failed replay validation.
    /// This is a scheduler bug, never an input error.
    ValidationFailed(ValidityError),
    /// A multiprocessor schedule failed replay under
    /// [`validate_multi_schedule`].  Like [`ScheduleError::ValidationFailed`],
    /// always a scheduler bug.
    MultiValidationFailed(MultiValidityError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Unsupported => write!(f, "scheduler does not support this graph"),
            ScheduleError::InfeasibleBudget { min_feasible: None } => {
                write!(f, "budget too small for this scheduler")
            }
            ScheduleError::InfeasibleBudget {
                min_feasible: Some(m),
            } => write!(f, "budget below game-level minimum ({m} bits required)"),
            ScheduleError::ValidationFailed(e) => write!(f, "schedule failed validation: {e}"),
            ScheduleError::MultiValidationFailed(e) => {
                write!(f, "multiprocessor schedule failed validation: {e}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The [`ScheduleError::InfeasibleBudget`] for `g` at `budget`, with the
/// Proposition 2.3 hint filled in when the budget is below the game-level
/// minimum.
fn infeasible(g: &AnyGraph, budget: Weight) -> ScheduleError {
    let game_min = min_feasible_budget(g.cdag());
    ScheduleError::InfeasibleBudget {
        min_feasible: (budget < game_min).then_some(game_min),
    }
}

/// Record a successful schedule's move count in telemetry and pass the
/// schedule through (free when telemetry is disabled).
fn emit(s: Schedule) -> Schedule {
    telemetry::add(telemetry::Counter::MovesEmitted, s.len() as u64);
    s
}

/// One scheduling algorithm, workload-erased.
///
/// Implementations are zero-sized unit structs; dispatch over them with
/// `&dyn Scheduler` (they are all `Send + Sync`, so sweeps may share them
/// across threads).  Calling [`schedule`](Scheduler::schedule) or
/// [`min_cost`](Scheduler::min_cost) on an unsupported graph returns
/// [`ScheduleError::Unsupported`]; a supported graph with too small a
/// budget returns [`ScheduleError::InfeasibleBudget`].
///
/// The trait is sealed (see the module docs): implementors outside this
/// crate must opt in through the hidden [`sealed::Sealed`] marker.
pub trait Scheduler: sealed::Sealed + Send + Sync {
    /// Stable machine-readable name (registry key, sweep-row label).
    fn name(&self) -> &str;

    /// Whether this algorithm applies to `g` at all.
    fn supports(&self, g: &AnyGraph) -> bool;

    /// A concrete schedule within `budget`.
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError>;

    /// The scheduler's cost at `budget`.
    ///
    /// The default generates the schedule and replays it through
    /// [`validate_schedule`], surfacing a replay rejection as
    /// [`ScheduleError::ValidationFailed`]; DP-based schedulers override
    /// this with their direct cost recurrences (no move materialization).
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let s = self.schedule(g, budget)?;
        validate_schedule(g.cdag(), budget, &s)
            .map(|st| st.cost)
            .map_err(ScheduleError::ValidationFailed)
    }

    /// Whether `min_cost` is non-increasing in the budget, which lets
    /// minimum-memory searches bisect instead of scanning linearly
    /// (see [`crate::min_memory`](mod@crate::min_memory)).
    fn monotone(&self) -> bool {
        false
    }

    /// Whether this algorithm can schedule `g` on the machine `spec`.
    ///
    /// The default confines single-processor algorithms to uniprocessor
    /// machines; the multiprocessor schedulers ([`PartitionBelady`],
    /// [`CommList`]) override it.  Sealing the trait is what lets this
    /// method (and [`schedule_multi`](Scheduler::schedule_multi)) be added
    /// without breaking any implementor.
    fn supports_machine(&self, g: &AnyGraph, spec: &MachineSpec) -> bool {
        spec.is_uniprocessor() && self.supports(g)
    }

    /// A concrete multiprocessor schedule for `g` on `spec`.
    ///
    /// The default answers uniprocessor machines by lifting
    /// [`schedule`](Scheduler::schedule) onto processor 0 — byte-identical
    /// moves, one processor — and declines genuine multiprocessor machines
    /// with [`ScheduleError::Unsupported`].
    fn schedule_multi(
        &self,
        g: &AnyGraph,
        spec: &MachineSpec,
    ) -> Result<MultiSchedule, ScheduleError> {
        match spec.uniprocessor_budget() {
            Some(b) => Ok(MultiSchedule::from_single(&self.schedule(g, b)?)),
            None => Err(ScheduleError::Unsupported),
        }
    }
}

/// Why [`execute`] produced no [`ScheduleResponse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecuteError {
    /// The request named a scheduler the [`registry`] does not know.
    UnknownScheduler {
        /// The name the request asked for.
        requested: String,
        /// Every valid registry name, in registration order.
        valid: Vec<&'static str>,
    },
    /// The scheduler was found but declined or failed (see
    /// [`ScheduleError`]).
    Schedule(ScheduleError),
}

impl std::fmt::Display for ExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecuteError::UnknownScheduler { requested, valid } => {
                write!(
                    f,
                    "unknown scheduler {requested:?} (valid: {})",
                    valid.join(", ")
                )
            }
            ExecuteError::Schedule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecuteError {}

impl From<ScheduleError> for ExecuteError {
    fn from(e: ScheduleError) -> Self {
        ExecuteError::Schedule(e)
    }
}

/// Answer a [`ScheduleRequest`], resolving the scheduler by name.
///
/// The single entry point behind the CLI `schedule`/`trace` commands and
/// the `pebblyn serve` daemon's miss path.  An unknown scheduler name is
/// rejected with the full list of valid names so every surface (CLI usage
/// errors, daemon reject frames) can echo it.
pub fn execute<G: Borrow<AnyGraph>>(
    req: &ScheduleRequest<G>,
) -> Result<ScheduleResponse, ExecuteError> {
    let s = by_name(req.scheduler()).ok_or_else(|| ExecuteError::UnknownScheduler {
        requested: req.scheduler().to_string(),
        valid: registry().iter().map(|s| s.name()).collect(),
    })?;
    execute_with(s, req).map_err(ExecuteError::Schedule)
}

/// Answer a [`ScheduleRequest`] with an already-resolved scheduler,
/// ignoring the request's name field.
///
/// The engine's sweep series use this: a [`crate::api`] trait object is
/// already in hand (possibly one that is not in the registry), and the
/// cost-only flag routes to [`Scheduler::min_cost`] so DP schedulers
/// answer from their recurrences without materializing moves.
///
/// Full-schedule answers are replay-validated here, so a response's cost
/// is always the *replayed* cost — the daemon caches and serves it as
/// ground truth.
pub fn execute_with<G: Borrow<AnyGraph>>(
    s: &dyn Scheduler,
    req: &ScheduleRequest<G>,
) -> Result<ScheduleResponse, ScheduleError> {
    let _span = telemetry::span("request");
    let g: &AnyGraph = req.graph().borrow();
    // Uniprocessor requests take the classic single-processor path
    // unchanged — a `MachineSpec::uniprocessor(b)` request is answered
    // byte-for-byte like the pre-multiprocessor API answered `budget: b`.
    if let Some(budget) = req.machine().uniprocessor_budget() {
        if req.is_cost_only() {
            let cost = s.min_cost(g, budget)?;
            return Ok(ScheduleResponse::cost_only(s.name(), cost));
        }
        let schedule = s.schedule(g, budget)?;
        let stats = validate_schedule(g.cdag(), budget, &schedule)
            .map_err(ScheduleError::ValidationFailed)?;
        return Ok(ScheduleResponse::scheduled(s.name(), stats.cost, schedule));
    }
    let spec = req.machine();
    if !s.supports_machine(g, spec) {
        return Err(ScheduleError::Unsupported);
    }
    let multi = s.schedule_multi(g, spec)?;
    let stats = validate_multi_schedule(g.cdag(), spec, &multi)
        .map_err(ScheduleError::MultiValidationFailed)?;
    telemetry::incr(telemetry::Counter::MultiRequests);
    telemetry::add(telemetry::Counter::CommMoves, stats.comm_moves);
    telemetry::add(telemetry::Counter::MovesEmitted, multi.len() as u64);
    telemetry::gauge_max(telemetry::Gauge::MultiProcsUsed, stats.procs_used() as u64);
    if req.is_cost_only() {
        return Ok(ScheduleResponse::cost_only(s.name(), stats.total_cost())
            .with_multi_metrics(stats.makespan, stats.comm_cost));
    }
    Ok(ScheduleResponse::multi_scheduled(
        s.name(),
        stats.total_cost(),
        stats.makespan,
        stats.comm_cost,
        multi,
    ))
}

/// Algorithm 1 — the provably optimal DWT dynamic program.
#[derive(Debug, Clone, Copy, Default)]
pub struct DwtOpt;

impl Scheduler for DwtOpt {
    fn name(&self) -> &str {
        "dwt-opt"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Dwt(d) if d.satisfies_pruning_condition())
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        match g {
            AnyGraph::Dwt(d) if d.satisfies_pruning_condition() => dwt_opt::schedule(d, budget)
                .map(emit)
                .ok_or_else(|| infeasible(g, budget)),
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        match g {
            AnyGraph::Dwt(d) if d.satisfies_pruning_condition() => {
                dwt_opt::min_cost(d, budget).ok_or_else(|| infeasible(g, budget))
            }
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// Theorem 3.8 — the k-ary (in-tree) dynamic program.  Optimal within
/// contiguous subtree evaluations; certifiably globally optimal when
/// [`kary::contiguous_evaluation_safe`] holds (see the module docs for the
/// counterexample the conformance fuzzer found outside that regime).
#[derive(Debug, Clone, Copy, Default)]
pub struct Kary;

impl Scheduler for Kary {
    fn name(&self) -> &str {
        "kary"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        g.cdag().is_in_tree()
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        let cdag = g.cdag();
        if !cdag.is_in_tree() {
            return Err(ScheduleError::Unsupported);
        }
        kary::schedule(cdag, budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        let cdag = g.cdag();
        if !cdag.is_in_tree() {
            return Err(ScheduleError::Unsupported);
        }
        kary::min_cost(cdag, budget).ok_or_else(|| infeasible(g, budget))
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4.3 — the MVM tiling with accumulator/vector residency search.
#[derive(Debug, Clone, Copy, Default)]
pub struct MvmTiling;

impl Scheduler for MvmTiling {
    fn name(&self) -> &str {
        "mvm-tiling"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Mvm(_))
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        match g {
            AnyGraph::Mvm(m) => mvm_tiling::schedule(m, budget)
                .map(emit)
                .ok_or_else(|| infeasible(g, budget)),
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        match g {
            AnyGraph::Mvm(m) => {
                mvm_tiling::min_cost(m, budget).ok_or_else(|| infeasible(g, budget))
            }
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4 — sliding-window streaming for FIR convolution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvStream;

impl Scheduler for ConvStream {
    fn name(&self) -> &str {
        "conv-stream"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Conv(_))
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        match g {
            AnyGraph::Conv(c) => conv_stream::schedule(c, budget)
                .map(emit)
                .ok_or_else(|| infeasible(g, budget)),
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        match g {
            AnyGraph::Conv(c) => {
                conv_stream::min_cost(c, budget).ok_or_else(|| infeasible(g, budget))
            }
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §4.3 specialised to banded matrices — streaming banded MVM.
#[derive(Debug, Clone, Copy, Default)]
pub struct BandedStream;

impl Scheduler for BandedStream {
    fn name(&self) -> &str {
        "banded-stream"
    }
    fn supports(&self, g: &AnyGraph) -> bool {
        matches!(g, AnyGraph::Banded { .. })
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        match g {
            AnyGraph::Banded { graph, .. } => banded_stream::schedule(graph, budget)
                .map(emit)
                .ok_or_else(|| infeasible(g, budget)),
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn min_cost(&self, g: &AnyGraph, budget: Weight) -> Result<Weight, ScheduleError> {
        match g {
            AnyGraph::Banded { graph, .. } => {
                banded_stream::min_cost(graph, budget).ok_or_else(|| infeasible(g, budget))
            }
            _ => Err(ScheduleError::Unsupported),
        }
    }
    fn monotone(&self) -> bool {
        true
    }
}

/// §5.1 — the layer-by-layer heuristic baseline (boustrophedon + FIFO).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerByLayer;

impl Scheduler for LayerByLayer {
    fn name(&self) -> &str {
        "layer-by-layer"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        layer_by_layer::schedule(g, budget, layer_by_layer::LayerByLayerOptions::default())
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
}

/// Greedy scheduler with Belady (furthest-next-use) eviction.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBelady;

impl Scheduler for GreedyBelady {
    fn name(&self) -> &str {
        "greedy-belady"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        greedy_belady::schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
}

/// Streaming topological-window greedy with Belady eviction
/// (`pebblyn-streaming`): a single O(E) pass for graphs too large for the
/// resident-graph schedulers, with next-use knowledge bounded by a
/// lookahead window.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoWindow;

impl Scheduler for TopoWindow {
    fn name(&self) -> &str {
        "topo-window"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        pebblyn_streaming::window_schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
}

/// Streaming layered slab partitioner with reload-aware cuts
/// (`pebblyn-streaming`): slices the topological order into
/// budget-feasible slabs and emits load/compute/store/flush phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlabPartition;

impl Scheduler for SlabPartition {
    fn name(&self) -> &str {
        "slab-partition"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        pebblyn_streaming::slab_schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
}

/// Proposition 2.3 — the trivial topological-order schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Scheduler for Naive {
    fn name(&self) -> &str {
        "naive"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        naive::schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
}

/// Multiprocessor level partitioning with per-processor Belady eviction
/// and best-of-`q` machine-prefix selection ([`multi::partition_schedule`]).
/// On a uniprocessor machine this *is* [`GreedyBelady`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionBelady;

impl Scheduler for PartitionBelady {
    fn name(&self) -> &str {
        "partition-belady"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        greedy_belady::schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
    fn supports_machine(&self, _g: &AnyGraph, _spec: &MachineSpec) -> bool {
        true
    }
    fn schedule_multi(
        &self,
        g: &AnyGraph,
        spec: &MachineSpec,
    ) -> Result<MultiSchedule, ScheduleError> {
        multi::partition_schedule(g.cdag(), spec)
            .ok_or_else(|| infeasible(g, spec.max_proc_budget()))
    }
}

/// Work-conserving communication-aware multiprocessor list scheduling
/// ([`multi::comm_list_schedule`]).  On a uniprocessor machine this *is*
/// [`GreedyBelady`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CommList;

impl Scheduler for CommList {
    fn name(&self) -> &str {
        "comm-list"
    }
    fn supports(&self, _g: &AnyGraph) -> bool {
        true
    }
    fn schedule(&self, g: &AnyGraph, budget: Weight) -> Result<Schedule, ScheduleError> {
        greedy_belady::schedule(g.cdag(), budget)
            .map(emit)
            .ok_or_else(|| infeasible(g, budget))
    }
    fn supports_machine(&self, _g: &AnyGraph, _spec: &MachineSpec) -> bool {
        true
    }
    fn schedule_multi(
        &self,
        g: &AnyGraph,
        spec: &MachineSpec,
    ) -> Result<MultiSchedule, ScheduleError> {
        multi::comm_list_schedule(g.cdag(), spec)
            .ok_or_else(|| infeasible(g, spec.max_proc_budget()))
    }
}

impl sealed::Sealed for DwtOpt {}
impl sealed::Sealed for Kary {}
impl sealed::Sealed for MvmTiling {}
impl sealed::Sealed for ConvStream {}
impl sealed::Sealed for BandedStream {}
impl sealed::Sealed for LayerByLayer {}
impl sealed::Sealed for GreedyBelady {}
impl sealed::Sealed for TopoWindow {}
impl sealed::Sealed for SlabPartition {}
impl sealed::Sealed for Naive {}
impl sealed::Sealed for PartitionBelady {}
impl sealed::Sealed for CommList {}

/// Every scheduler in the crate, as trait objects.
pub static REGISTRY: &[&dyn Scheduler] = &[
    &DwtOpt,
    &Kary,
    &MvmTiling,
    &ConvStream,
    &BandedStream,
    &LayerByLayer,
    &GreedyBelady,
    &TopoWindow,
    &SlabPartition,
    &Naive,
    &PartitionBelady,
    &CommList,
];

/// All registered schedulers (registration order is stable — sweep output
/// depends on it).
pub fn registry() -> &'static [&'static dyn Scheduler] {
    REGISTRY
}

/// Look a scheduler up by its [`Scheduler::name`].
pub fn by_name(name: &str) -> Option<&'static dyn Scheduler> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::min_feasible_budget;
    use pebblyn_graphs::{testgraphs, WeightScheme, Workload};

    fn instances() -> Vec<AnyGraph> {
        let scheme = WeightScheme::Equal(4);
        let mut out: Vec<AnyGraph> = [
            Workload::Dwt { n: 16, d: 4 },
            Workload::Mvm { m: 4, n: 5 },
            Workload::Conv { n: 12, k: 3 },
            Workload::Dwt2d { n: 8, levels: 2 },
            Workload::Banded {
                n: 12,
                bandwidth: 2,
            },
        ]
        .into_iter()
        .map(|w| AnyGraph::build(w, scheme).unwrap())
        .collect();
        out.push(AnyGraph::custom(
            "diamond",
            testgraphs::diamond(WeightScheme::Equal(8)),
        ));
        out
    }

    /// Every registered scheduler, on every graph it supports, produces a
    /// schedule that validates at a generous budget, and the trait-level
    /// `min_cost` agrees with the replayed cost.
    #[test]
    fn registry_schedules_validate_everywhere() {
        for g in instances() {
            let budget = 4 * g.cdag().total_weight();
            for s in registry() {
                if !s.supports(&g) {
                    assert_eq!(
                        s.schedule(&g, budget).unwrap_err(),
                        ScheduleError::Unsupported,
                        "{} must refuse unsupported {}",
                        s.name(),
                        g.name()
                    );
                    assert_eq!(
                        s.min_cost(&g, budget).unwrap_err(),
                        ScheduleError::Unsupported,
                        "{} min_cost must refuse unsupported {}",
                        s.name(),
                        g.name()
                    );
                    continue;
                }
                let sched = s.schedule(&g, budget).unwrap_or_else(|e| {
                    panic!("{} on {} at ample budget: {e}", s.name(), g.name())
                });
                let stats = validate_schedule(g.cdag(), budget, &sched)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), g.name()));
                let cost = s
                    .min_cost(&g, budget)
                    .unwrap_or_else(|e| panic!("{} min_cost on {}: {e}", s.name(), g.name()));
                assert!(
                    cost <= stats.cost,
                    "{} on {}: min_cost {cost} exceeds replay {}",
                    s.name(),
                    g.name(),
                    stats.cost
                );
            }
        }
    }

    /// Below the Proposition 2.3 game-level minimum every supported call
    /// reports `InfeasibleBudget` with the minimum as its hint, and
    /// unsupported calls still report `Unsupported`.
    #[test]
    fn below_feasibility_every_scheduler_declines() {
        for g in instances() {
            let game_min = min_feasible_budget(g.cdag());
            let too_small = game_min - 1;
            for s in registry() {
                let expected = if s.supports(&g) {
                    ScheduleError::InfeasibleBudget {
                        min_feasible: Some(game_min),
                    }
                } else {
                    ScheduleError::Unsupported
                };
                assert_eq!(
                    s.schedule(&g, too_small).unwrap_err(),
                    expected,
                    "{} schedule on {}",
                    s.name(),
                    g.name()
                );
                assert_eq!(
                    s.min_cost(&g, too_small).unwrap_err(),
                    expected,
                    "{} min_cost on {}",
                    s.name(),
                    g.name()
                );
            }
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        for s in registry() {
            let found = by_name(s.name()).expect("every name resolves");
            assert_eq!(found.name(), s.name());
        }
        let mut names: Vec<_> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry().len());
        assert!(by_name("no-such-scheduler").is_none());
    }

    #[test]
    fn typed_specialists_match_the_trait_surface() {
        let g = AnyGraph::build(Workload::Dwt { n: 32, d: 5 }, WeightScheme::Equal(16)).unwrap();
        let AnyGraph::Dwt(ref d) = g else {
            unreachable!()
        };
        let budget = 24 * 16;
        assert_eq!(
            DwtOpt.min_cost(&g, budget).ok(),
            dwt_opt::min_cost(d, budget)
        );
        assert!(DwtOpt.monotone());
    }

    /// The `min_cost` default surfaces a replay rejection as
    /// `ValidationFailed` instead of swallowing it (the old `.ok()` bug
    /// mapped scheduler bugs to "infeasible").
    #[test]
    fn min_cost_default_reports_validation_failures() {
        struct EmptyScheduler;
        impl sealed::Sealed for EmptyScheduler {}
        impl Scheduler for EmptyScheduler {
            fn name(&self) -> &str {
                "empty"
            }
            fn supports(&self, _g: &AnyGraph) -> bool {
                true
            }
            fn schedule(&self, _g: &AnyGraph, _budget: Weight) -> Result<Schedule, ScheduleError> {
                Ok(Schedule::new())
            }
        }
        let g = AnyGraph::custom("diamond", testgraphs::diamond(WeightScheme::Equal(8)));
        let budget = 4 * g.cdag().total_weight();
        match EmptyScheduler.min_cost(&g, budget) {
            Err(ScheduleError::ValidationFailed(_)) => {}
            other => panic!("expected ValidationFailed, got {other:?}"),
        }
    }

    /// `execute` resolves by registry name, answers the request, and
    /// rejects unknown names with the full valid list.
    #[test]
    fn execute_resolves_and_answers_requests() {
        let g = AnyGraph::build(Workload::Dwt { n: 16, d: 4 }, WeightScheme::Equal(16)).unwrap();
        let budget = 10 * 16;
        let full = execute(&pebblyn_core::ScheduleRequest::new(&g, budget, "dwt-opt")).unwrap();
        assert_eq!(full.scheduler(), "dwt-opt");
        assert_eq!(Some(full.cost()), DwtOpt.min_cost(&g, budget).ok());
        let replay =
            validate_schedule(g.cdag(), budget, full.schedule().expect("full answer")).unwrap();
        assert_eq!(replay.cost, full.cost());

        let cost_only = execute(
            &pebblyn_core::ScheduleRequest::new(&g, budget, "dwt-opt").with_cost_only(true),
        )
        .unwrap();
        assert_eq!(cost_only.cost(), full.cost());
        assert!(cost_only.schedule().is_none());

        match execute(&pebblyn_core::ScheduleRequest::new(&g, budget, "no-such")) {
            Err(ExecuteError::UnknownScheduler { requested, valid }) => {
                assert_eq!(requested, "no-such");
                assert_eq!(valid.len(), registry().len());
                assert!(valid.contains(&"naive"));
            }
            other => panic!("expected UnknownScheduler, got {other:?}"),
        }
    }

    /// `execute_with` surfaces scheduler declines as typed errors and
    /// validates full answers before reporting their cost.
    #[test]
    fn execute_with_validates_and_propagates_errors() {
        let g = AnyGraph::custom("diamond", testgraphs::diamond(WeightScheme::Equal(8)));
        let budget = 4 * g.cdag().total_weight();
        let req = pebblyn_core::ScheduleRequest::new(&g, budget, "ignored");
        assert_eq!(
            execute_with(&DwtOpt, &req).unwrap_err(),
            ScheduleError::Unsupported
        );
        let ok = execute_with(&Naive, &req).unwrap();
        assert_eq!(ok.scheduler(), "naive");
        assert_eq!(Some(ok.cost()), Naive.min_cost(&g, budget).ok());
    }
}
