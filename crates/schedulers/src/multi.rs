//! Multiprocessor schedulers: assignment policies over the shared
//! per-processor Belady simulator ([`crate::multi_sim`]).
//!
//! Two policies, mirroring the federated-scheduling and critical-path
//! idioms of DAG-task multicore simulators (ROADMAP item 3):
//!
//! * [`partition_schedule`] — **level partitioning**: nodes are grouped by
//!   topological level; within a level they are distributed across
//!   processors longest-processing-time-first (heaviest remaining
//!   critical path first, to the least-loaded processor).  Because raw
//!   list-style makespans suffer Graham anomalies (more processors can
//!   *lengthen* a schedule), the policy internally tries every machine
//!   prefix `q ∈ {1..p}` and keeps the best `(makespan, I/O)` — so its
//!   reported objectives are monotone in `p` **by construction**, which
//!   the conformance MULTI regime asserts.  The `q = 1` candidate *is*
//!   [`crate::greedy_belady`] lifted onto processor 0, making p=1
//!   byte-identical to the single-processor scheduler.
//!
//! * [`comm_list_schedule`] — a **work-conserving list scheduler** with
//!   communication-aware placement: ready nodes (all predecessors
//!   assigned) are dispatched one at a time to the processor with the
//!   smallest finish-time estimate, choosing the ready node that best
//!   trades critical-path priority (bottom level) against the estimated
//!   communication cost of fetching its operands onto that processor.
//!   Dispatching to the least-loaded processor first makes occupancy
//!   work-conserving by construction: with `c` computed nodes, at least
//!   `min(p, c)` processors receive work (asserted by the MULTI regime).

use crate::{greedy_belady, multi_sim};
use pebblyn_core::{
    validate_multi_schedule, Cdag, MachineSpec, MultiSchedule, MultiStats, NodeId, Weight,
};

/// Topological level of every node (sources at level 0).
fn topo_levels(graph: &Cdag) -> Vec<usize> {
    let mut level = vec![0usize; graph.len()];
    for &v in graph.topo_order() {
        level[v.index()] = graph
            .preds(v)
            .iter()
            .map(|&u| level[u.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    level
}

/// Bottom level of every node: `w(v)` plus the heaviest compute-weight
/// path from `v` to a sink (the critical-path priority of list
/// scheduling; source weights excluded since sources are never computed).
fn bottom_levels(graph: &Cdag) -> Vec<Weight> {
    let mut bl = vec![0 as Weight; graph.len()];
    for &v in graph.topo_order().iter().rev() {
        let down = graph
            .succs(v)
            .iter()
            .map(|&s| bl[s.index()])
            .max()
            .unwrap_or(0);
        let own = if graph.is_source(v) {
            0
        } else {
            graph.weight(v)
        };
        bl[v.index()] = own + down;
    }
    bl
}

/// The non-source nodes in topological order.
fn computed_nodes(graph: &Cdag) -> Vec<NodeId> {
    graph
        .topo_order()
        .iter()
        .copied()
        .filter(|&v| !graph.is_source(v))
        .collect()
}

/// The best `(schedule, stats)` under lexicographic `(makespan,
/// total_cost)` between `best` and a `candidate`.
fn better(
    best: Option<(MultiSchedule, MultiStats)>,
    candidate: Option<(MultiSchedule, MultiStats)>,
) -> Option<(MultiSchedule, MultiStats)> {
    match (best, candidate) {
        (None, c) => c,
        (b, None) => b,
        (Some(b), Some(c)) => {
            let key = |s: &MultiStats| (s.makespan, s.total_cost());
            if key(&c.1) < key(&b.1) {
                Some(c)
            } else {
                Some(b)
            }
        }
    }
}

/// Validate a candidate and pair it with its replayed stats; a candidate
/// that fails replay is a policy bug and is dropped (debug builds assert).
fn replayed(
    graph: &Cdag,
    spec: &MachineSpec,
    candidate: Option<MultiSchedule>,
) -> Option<(MultiSchedule, MultiStats)> {
    let s = candidate?;
    match validate_multi_schedule(graph, spec, &s) {
        Ok(stats) => Some((s, stats)),
        Err(e) => {
            debug_assert!(false, "multiprocessor candidate failed replay: {e}");
            None
        }
    }
}

/// The greedy-Belady schedule lifted onto processor 0 — the `q = 1`
/// candidate of both policies, and the whole answer for uniprocessor
/// machines (keeping p=1 byte-identical to [`crate::greedy_belady`]).
fn single_proc_candidate(graph: &Cdag, spec: &MachineSpec) -> Option<MultiSchedule> {
    greedy_belady::schedule(graph, spec.proc_budget(0)).map(|s| MultiSchedule::from_single(&s))
}

/// Level-partitioned multiprocessor scheduling (see the module docs).
///
/// Returns `None` when no machine prefix admits a feasible schedule —
/// in particular `None` whenever processor 0's budget cannot hold the
/// largest operand set.
pub fn partition_schedule(graph: &Cdag, spec: &MachineSpec) -> Option<MultiSchedule> {
    Some(partition_schedule_with_stats(graph, spec)?.0)
}

/// As [`partition_schedule`], also returning the replayed [`MultiStats`]
/// of the winning candidate (the bench sweep uses both).
pub fn partition_schedule_with_stats(
    graph: &Cdag,
    spec: &MachineSpec,
) -> Option<(MultiSchedule, MultiStats)> {
    let p = spec.num_procs();
    let order_all = computed_nodes(graph);
    let levels = topo_levels(graph);
    let bottoms = bottom_levels(graph);

    let mut best = replayed(graph, spec, single_proc_candidate(graph, spec));
    for q in 2..=p {
        // LPT assignment level by level: within each level, heaviest
        // bottom level first, each to the least-loaded active processor.
        let mut load: Vec<Weight> = vec![0; q];
        let mut assignment = vec![0usize; graph.len()];
        let mut by_level: Vec<NodeId> = order_all.clone();
        by_level.sort_by_key(|&v| {
            (
                levels[v.index()],
                std::cmp::Reverse(bottoms[v.index()]),
                v.index(),
            )
        });
        for &v in &by_level {
            let target = (0..q).min_by_key(|&r| (load[r], r)).unwrap_or(0);
            assignment[v.index()] = target;
            load[target] += graph.weight(v);
        }
        // Global order: level-major, processor-minor, so each processor's
        // slice of a level runs contiguously.
        let mut order = order_all.clone();
        order.sort_by_key(|&v| (levels[v.index()], assignment[v.index()], v.index()));
        let candidate = multi_sim::simulate(graph, spec, q, &assignment, &order);
        best = better(best, replayed(graph, spec, candidate));
    }
    best
}

/// Work-conserving communication-aware list scheduling (see the module
/// docs).  Returns `None` when infeasible under the per-processor budgets.
pub fn comm_list_schedule(graph: &Cdag, spec: &MachineSpec) -> Option<MultiSchedule> {
    Some(comm_list_schedule_with_stats(graph, spec)?.0)
}

/// As [`comm_list_schedule`], also returning the replayed [`MultiStats`].
pub fn comm_list_schedule_with_stats(
    graph: &Cdag,
    spec: &MachineSpec,
) -> Option<(MultiSchedule, MultiStats)> {
    let p = spec.num_procs();
    if p == 1 {
        return replayed(graph, spec, single_proc_candidate(graph, spec));
    }
    let n = graph.len();
    let bottoms = bottom_levels(graph);

    // Readiness = all predecessors assigned (sources are born assigned).
    let mut missing: Vec<usize> = (0..n)
        .map(|i| {
            graph
                .preds(NodeId(i as u32))
                .iter()
                .filter(|&&u| !graph.is_source(u))
                .count()
        })
        .collect();
    let mut ready: Vec<NodeId> = computed_nodes(graph)
        .into_iter()
        .filter(|&v| missing[v.index()] == 0)
        .collect();

    let mut clock: Vec<Weight> = vec![0; p];
    // Processor currently holding each value's freshest red copy
    // (usize::MAX = only blue / source).
    let mut home: Vec<usize> = vec![usize::MAX; n];
    let mut assignment = vec![0usize; n];
    let mut order: Vec<NodeId> = Vec::new();

    while !ready.is_empty() {
        // Work conservation: dispatch to the least-loaded processor.
        let q = (0..p).min_by_key(|&r| (clock[r], r)).expect("p >= 1");
        // Fetch estimate for running v on q: free for operands homed on
        // q, a load for blue-only operands, a priced communication for
        // operands homed elsewhere.
        let fetch = |v: NodeId, home: &[usize]| -> Weight {
            graph
                .preds(v)
                .iter()
                .map(|&u| {
                    if home[u.index()] == q {
                        0
                    } else if home[u.index()] == usize::MAX {
                        graph.weight(u)
                    } else {
                        spec.comm_price() * graph.weight(u)
                    }
                })
                .sum()
        };
        // Choose the ready node that best trades critical-path priority
        // against communication onto q.
        let (slot, _) = ready
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| {
                let f = fetch(v, &home);
                (
                    bottoms[v.index()].saturating_sub(f),
                    bottoms[v.index()],
                    std::cmp::Reverse(v.index()),
                )
            })
            .expect("ready set non-empty");
        let v = ready.swap_remove(slot);
        let f = fetch(v, &home);
        assignment[v.index()] = q;
        clock[q] += f + graph.weight(v);
        home[v.index()] = q;
        order.push(v);
        for &s in graph.succs(v) {
            missing[s.index()] -= 1;
            if missing[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    // `order` is topological by construction (a node is dispatched only
    // after all its predecessors were).
    let candidate = multi_sim::simulate(graph, spec, p, &assignment, &order);
    replayed(graph, spec, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{min_feasible_budget, validate_schedule, CdagBuilder};
    use pebblyn_graphs::testgraphs::{diamond, fft_butterfly, random_layered_dag};
    use pebblyn_graphs::WeightScheme;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graphs() -> Vec<Cdag> {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let mut out = vec![
            diamond(WeightScheme::Equal(8)),
            fft_butterfly(3, WeightScheme::Equal(8)).unwrap(),
        ];
        for _ in 0..4 {
            out.push(random_layered_dag(4, 5, 1..=6, &mut rng).unwrap());
        }
        out
    }

    #[test]
    fn p1_is_byte_identical_to_greedy_belady() {
        for g in graphs() {
            let b = min_feasible_budget(&g) + 16;
            let spec = MachineSpec::uniprocessor(b);
            let expected = greedy_belady::schedule(&g, b).expect("feasible");
            for (label, got) in [
                ("partition", partition_schedule(&g, &spec)),
                ("comm-list", comm_list_schedule(&g, &spec)),
            ] {
                let ms = got.unwrap_or_else(|| panic!("{label} infeasible at p=1"));
                assert_eq!(
                    ms.project_single().expect("p=1 projects"),
                    expected,
                    "{label} p=1 must match greedy-belady"
                );
            }
        }
    }

    #[test]
    fn multi_schedules_validate_on_their_machines() {
        for g in graphs() {
            let b = min_feasible_budget(&g) + 24;
            for p in [2usize, 4] {
                let spec = MachineSpec::symmetric(p, b);
                for (label, got) in [
                    ("partition", partition_schedule_with_stats(&g, &spec)),
                    ("comm-list", comm_list_schedule_with_stats(&g, &spec)),
                ] {
                    let (_, stats) = got.unwrap_or_else(|| panic!("{label} infeasible p={p}"));
                    for (q, &peak) in stats.peak_red.iter().enumerate() {
                        assert!(peak <= spec.proc_budget(q), "{label} p{q} over budget");
                    }
                }
            }
        }
    }

    #[test]
    fn partition_objectives_monotone_in_p() {
        for g in graphs() {
            let b = min_feasible_budget(&g) + 24;
            let mut prev: Option<(Weight, Weight)> = None;
            for p in 1..=4usize {
                let spec = MachineSpec::symmetric(p, b);
                let (_, stats) =
                    partition_schedule_with_stats(&g, &spec).expect("feasible at generous budget");
                let key = (stats.makespan, stats.total_cost());
                if let Some(prev) = prev {
                    assert!(
                        key <= prev,
                        "partition best-of-q must be monotone: p={p} {key:?} vs {prev:?}"
                    );
                }
                prev = Some(key);
            }
        }
    }

    #[test]
    fn comm_list_is_work_conserving_in_dispatch() {
        for g in graphs() {
            let b = g.total_weight(); // ample budget
            let computes = g.nodes().filter(|&v| !g.is_source(v)).count();
            for p in [2usize, 4] {
                let spec = MachineSpec::symmetric(p, b);
                let (_, stats) =
                    comm_list_schedule_with_stats(&g, &spec).expect("feasible at ample budget");
                assert!(
                    stats.procs_used() >= p.min(computes),
                    "comm-list used {} of {p} procs ({computes} computes)",
                    stats.procs_used()
                );
            }
        }
    }

    /// Two independent heavy chains: with 2 processors the partition
    /// scheduler should roughly halve the makespan.
    #[test]
    fn independent_chains_speed_up() {
        let mut b = CdagBuilder::new();
        let chain = |b: &mut CdagBuilder, tag: &str| {
            let mut prev = b.node(16, format!("{tag}0"));
            for i in 1..8 {
                let next = b.node(16, format!("{tag}{i}"));
                b.edge(prev, next);
                prev = next;
            }
        };
        chain(&mut b, "a");
        chain(&mut b, "x");
        let g = b.build().unwrap();
        let spec1 = MachineSpec::uniprocessor(64);
        let spec2 = MachineSpec::symmetric(2, 64);
        let (_, s1) = partition_schedule_with_stats(&g, &spec1).unwrap();
        let (_, s2) = partition_schedule_with_stats(&g, &spec2).unwrap();
        assert!(
            s2.makespan * 10 <= s1.makespan * 7,
            "expected parallel speedup: {} vs {}",
            s2.makespan,
            s1.makespan
        );
        assert_eq!(s2.procs_used(), 2);
    }

    /// The projected p=1 schedule replays cleanly on the classic validator
    /// with the same cost the multi validator reports.
    #[test]
    fn p1_projection_agrees_with_classic_validator() {
        for g in graphs() {
            let b = min_feasible_budget(&g) + 16;
            let spec = MachineSpec::uniprocessor(b);
            let (ms, stats) = partition_schedule_with_stats(&g, &spec).unwrap();
            let single = ms.project_single().unwrap();
            let classic = validate_schedule(&g, b, &single).unwrap();
            assert_eq!(classic.cost, stats.io_cost);
            assert_eq!(stats.comm_moves, 0);
        }
    }
}
