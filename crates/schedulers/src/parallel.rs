//! Multiprocessor scheduling of independent dataflow components.
//!
//! Many BCI workloads are embarrassingly parallel at the component level —
//! 96 electrode channels each running the same DWT, or the independent
//! subtrees of a shallow `DWT(n, d)` — and emerging BCI processors ship
//! several compute sites, each with its own small SRAM.  This module
//! extends the paper's single-memory model in the direction of the
//! multiprocessor red-blue pebble game it cites (Böhnlein et al., SPAA'24):
//!
//! * each of `p` processors owns a *private* fast memory of the same
//!   weighted budget,
//! * the CDAG's weakly-connected components are scheduled independently
//!   (Lemma 3.3's first observation: interleaving independent subgraphs
//!   never helps) and packed onto processors with the LPT rule,
//! * the plan reports per-processor weighted I/O and the **makespan**
//!   (bottleneck I/O), the quantity a parallel implementation minimises.
//!
//! Concatenating all per-processor schedules yields a valid
//! single-processor schedule of the same total cost, which is how the plan
//! is validated.

use pebblyn_core::{Cdag, Move, NodeId, Schedule, Weight};

/// A parallel execution plan over independent components.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    /// Per-processor schedules, in *original-graph* node ids.
    pub schedules: Vec<Schedule>,
    /// Per-processor weighted I/O cost.
    pub io_per_proc: Vec<Weight>,
    /// `assignment[c]` = processor that runs component `c`.
    pub assignment: Vec<usize>,
}

impl ParallelPlan {
    /// The bottleneck (maximum per-processor) weighted I/O.
    pub fn makespan(&self) -> Weight {
        self.io_per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Total weighted I/O across processors (equals the sequential cost).
    pub fn total_io(&self) -> Weight {
        self.io_per_proc.iter().sum()
    }

    /// Parallel speedup over running everything on one processor.
    pub fn speedup(&self) -> f64 {
        if self.makespan() == 0 {
            1.0
        } else {
            self.total_io() as f64 / self.makespan() as f64
        }
    }

    /// Concatenate all per-processor schedules into one sequential
    /// schedule (valid under the same per-processor budget, since each
    /// processor's schedule releases all fast memory when it finishes).
    pub fn sequential(&self) -> Schedule {
        let mut all = Schedule::new();
        for s in &self.schedules {
            all.extend(s);
        }
        all
    }
}

/// Schedule each weakly-connected component with `component_scheduler`
/// (which sees the component as a standalone [`Cdag`]) and pack the
/// results onto `procs` processors, longest-processing-time first.
///
/// Returns `None` if any component cannot be scheduled (the scheduler
/// returned `None`, e.g. budget below that component's feasibility).
pub fn schedule_components<F>(
    graph: &Cdag,
    procs: usize,
    mut component_scheduler: F,
) -> Option<ParallelPlan>
where
    F: FnMut(&Cdag) -> Option<Schedule>,
{
    assert!(procs >= 1, "at least one processor");
    let components = graph.weakly_connected_components();

    // Schedule every component in isolation, remapping to original ids.
    let mut scheduled: Vec<(usize, Weight, Schedule)> = Vec::with_capacity(components.len());
    for (c, nodes) in components.iter().enumerate() {
        let (sub, to_orig) = graph.induced_subgraph(nodes);
        let sub_sched = component_scheduler(&sub)?;
        let remapped: Schedule = sub_sched.iter().map(|mv| remap(mv, &to_orig)).collect();
        let cost = remapped.cost(graph);
        scheduled.push((c, cost, remapped));
    }

    // LPT: heaviest component first, onto the least-loaded processor.
    scheduled.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut io_per_proc = vec![0 as Weight; procs];
    let mut schedules = vec![Schedule::new(); procs];
    let mut assignment = vec![0usize; components.len()];
    for (c, cost, sched) in scheduled {
        let p = (0..procs)
            .min_by_key(|&p| io_per_proc[p])
            .expect("procs >= 1");
        io_per_proc[p] += cost;
        schedules[p].extend(&sched);
        assignment[c] = p;
    }

    Some(ParallelPlan {
        schedules,
        io_per_proc,
        assignment,
    })
}

fn remap(mv: Move, to_orig: &[NodeId]) -> Move {
    let v = to_orig[mv.node().index()];
    match mv {
        Move::Load(_) => Move::Load(v),
        Move::Store(_) => Move::Store(v),
        Move::Compute(_) => Move::Compute(v),
        Move::Delete(_) => Move::Delete(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kary, naive};
    use pebblyn_core::{algorithmic_lower_bound, validate_schedule};
    use pebblyn_graphs::tree::full_kary;
    use pebblyn_graphs::{DwtGraph, WeightScheme};

    /// Eight independent channels, each a small binary tree.
    fn channels(count: usize) -> Cdag {
        let tree = full_kary(2, 2, WeightScheme::Equal(16)).unwrap();
        let parts: Vec<&Cdag> = std::iter::repeat_n(&tree, count).collect();
        Cdag::disjoint_union(&parts).0
    }

    #[test]
    fn balanced_channels_split_evenly() {
        let g = channels(8);
        let budget = 6 * 16 + 32;
        let plan = schedule_components(&g, 4, |sub| kary::schedule(sub, budget)).unwrap();
        assert_eq!(plan.io_per_proc.len(), 4);
        // 8 identical components over 4 procs: perfectly balanced.
        assert!(plan.io_per_proc.iter().all(|&c| c == plan.io_per_proc[0]));
        assert!((plan.speedup() - 4.0).abs() < 1e-9);
        // The concatenation is a valid sequential schedule of the same cost.
        let seq = plan.sequential();
        let stats = validate_schedule(&g, budget, &seq).unwrap();
        assert_eq!(stats.cost, plan.total_io());
        assert_eq!(stats.cost, algorithmic_lower_bound(&g));
    }

    #[test]
    fn dwt_forest_parallelises() {
        // DWT(32, 2) has 8 independent subgraphs.
        let dwt = DwtGraph::new(32, 2, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        assert_eq!(g.weakly_connected_components().len(), 8);
        let budget = 8 * 16;
        let plan = schedule_components(g, 3, |sub| naive::schedule(sub, budget)).unwrap();
        assert_eq!(plan.assignment.len(), 8);
        let seq = plan.sequential();
        validate_schedule(g, budget, &seq).unwrap();
        assert!(plan.speedup() > 2.5, "speedup {}", plan.speedup());
    }

    #[test]
    fn lpt_beats_worst_case_on_skewed_components() {
        // 1 big + 4 small trees on 2 procs: LPT puts the big one alone.
        let big = full_kary(2, 4, WeightScheme::Equal(16)).unwrap();
        let small = full_kary(2, 1, WeightScheme::Equal(16)).unwrap();
        let parts: Vec<&Cdag> = vec![&big, &small, &small, &small, &small];
        let (g, _) = Cdag::disjoint_union(&parts);
        let budget = 8 * 16;
        let plan = schedule_components(&g, 2, |sub| kary::schedule(sub, budget)).unwrap();
        let big_cost = plan.io_per_proc.iter().max().unwrap();
        let small_cost = plan.io_per_proc.iter().min().unwrap();
        // The big tree (16 leaf loads + 1 root store, 16 bits each = 272)
        // dominates; the four small trees (3 * 16 each = 192) share the
        // other processor.
        assert_eq!(*big_cost, 272);
        assert_eq!(*small_cost, 192);
        assert_eq!(plan.makespan(), 272);
    }

    #[test]
    fn single_proc_is_sequential() {
        let g = channels(3);
        let budget = 1024;
        let plan = schedule_components(&g, 1, |sub| kary::schedule(sub, budget)).unwrap();
        assert_eq!(plan.makespan(), plan.total_io());
        assert!((plan.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_component_fails_the_plan() {
        let g = channels(2);
        assert!(schedule_components(&g, 2, |sub| kary::schedule(sub, 16)).is_none());
    }

    #[test]
    fn more_procs_than_components_is_fine() {
        let g = channels(2);
        let plan = schedule_components(&g, 5, |sub| kary::schedule(sub, 1024)).unwrap();
        assert_eq!(plan.io_per_proc.iter().filter(|&&c| c > 0).count(), 2);
        assert!(plan.schedules[4].is_empty());
    }
}
