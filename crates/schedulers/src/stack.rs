//! Big-stack helper for deeply recursive dynamic programs.
//!
//! The tree DPs recurse to the depth of the input tree.  DWT trees are
//! logarithmic, but k-ary trees admit degenerate chains (`k = 1`) whose
//! depth equals the node count; running the recursion on a dedicated thread
//! with a large stack makes the schedulers robust to any input shape without
//! rewriting the DPs as explicit worklists.

/// Stack size used for scheduler recursions: 256 MiB.
pub const SCHEDULER_STACK_BYTES: usize = 256 * 1024 * 1024;

/// Run `f` on a thread with [`SCHEDULER_STACK_BYTES`] of stack and return its
/// result.
///
/// Panics propagate to the caller (the join unwraps), preserving test
/// behaviour.
pub fn with_large_stack<T, F>(f: F) -> T
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("pebblyn-scheduler".into())
            .stack_size(SCHEDULER_STACK_BYTES)
            .spawn_scoped(scope, f)
            .expect("failed to spawn scheduler thread")
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_value() {
        assert_eq!(with_large_stack(|| 21 * 2), 42);
    }

    #[test]
    fn survives_deep_recursion() {
        fn depth(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                1 + depth(n - 1)
            }
        }
        // ~1M frames would overflow a default 8 MiB stack.
        let d = with_large_stack(|| depth(1_000_000));
        assert_eq!(d, 1_000_000);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        with_large_stack(|| panic!("boom"));
    }
}
