//! Reuse-aware greedy scheduling for arbitrary CDAGs.
//!
//! §4 closes by noting the data-reuse approach "extends … to less regular
//! CDAGs as well".  This module is that extension as a practical
//! scheduler: nodes are computed in a topological order, and when fast
//! memory fills up the victim is chosen by **Belady's rule** — evict the
//! resident value whose *next use* (in the planned compute order) lies
//! furthest in the future, breaking ties toward values that are already
//! clean (have a blue copy) and therefore evict for free.
//!
//! Unlike the FIFO layer-by-layer baseline this is reuse-aware, and unlike
//! the tree DPs it handles any DAG (FFT butterflies, random DAGs, diamond
//! reuse patterns).  It is a heuristic: for a *fixed* compute order,
//! furthest-next-use is the classic offline caching policy; the compute
//! order itself is not optimized.

use pebblyn_core::{Cdag, Move, MoveStream, NodeId, RedSet, Schedule, Weight};
use std::collections::BinaryHeap;

/// Schedule the whole graph under `budget` computing nodes in `order`
/// (which must be a topological order of the non-source nodes), or `None`
/// when the budget cannot hold some node's operand set.
pub fn schedule_with_order(graph: &Cdag, budget: Weight, order: &[NodeId]) -> Option<Schedule> {
    // use_positions[v] = positions in `order` where v is consumed, ascending.
    let mut use_positions: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (pos, &v) in order.iter().enumerate() {
        for &p in graph.preds(v) {
            use_positions[p.index()].push(pos);
        }
    }

    let mut blue = RedSet::new(graph.len());
    for &v in graph.sources() {
        blue.insert(v, graph.weight(v));
    }
    let mut st = State {
        graph,
        budget,
        moves: MoveStream::new(),
        red: RedSet::new(graph.len()),
        blue,
        pinned: vec![false; graph.len()],
        next_use_cursor: vec![0; graph.len()],
        use_positions,
        victims: BinaryHeap::new(),
    };

    for (pos, &v) in order.iter().enumerate() {
        debug_assert!(!graph.is_source(v), "order lists computed nodes only");
        if !st.compute(pos, v) {
            return None;
        }
    }
    // Stopping condition: every sink needs a blue copy.
    for &v in graph.sinks() {
        if !st.blue.contains(v) {
            st.moves.push(Move::Store(v));
            st.blue.insert(v, graph.weight(v));
        }
    }
    Some(Schedule::from_stream(st.moves))
}

/// Schedule with the graph's default topological order.
pub fn schedule(graph: &Cdag, budget: Weight) -> Option<Schedule> {
    let order: Vec<NodeId> = graph
        .topo_order()
        .iter()
        .copied()
        .filter(|&v| !graph.is_source(v))
        .collect();
    schedule_with_order(graph, budget, &order)
}

/// The schedule's cost, or `None` when infeasible.
pub fn cost(graph: &Cdag, budget: Weight) -> Option<Weight> {
    schedule(graph, budget).map(|s| s.cost(graph))
}

struct State<'a> {
    graph: &'a Cdag,
    budget: Weight,
    moves: MoveStream,
    /// Residency bitset; its cached weight is the fast-memory occupancy.
    red: RedSet,
    blue: RedSet,
    pinned: Vec<bool>,
    /// Index into `use_positions[v]` of the first use not yet executed.
    next_use_cursor: Vec<usize>,
    use_positions: Vec<Vec<usize>>,
    /// Max-heap of (next_use, node) candidates; entries may be stale and
    /// are re-validated on pop (lazy deletion).
    victims: BinaryHeap<(usize, NodeId)>,
}

impl<'a> State<'a> {
    /// The next position at which `v` is consumed, from `now` onward;
    /// `usize::MAX` when it is never used again.
    fn next_use(&mut self, v: NodeId, now: usize) -> usize {
        let uses = &self.use_positions[v.index()];
        let cur = &mut self.next_use_cursor[v.index()];
        while *cur < uses.len() && uses[*cur] < now {
            *cur += 1;
        }
        uses.get(*cur).copied().unwrap_or(usize::MAX)
    }

    fn insert_resident(&mut self, v: NodeId, now: usize) {
        self.red.insert(v, self.graph.weight(v));
        let nu = self.next_use(v, now);
        self.victims.push((nu, v));
    }

    fn make_room(&mut self, extra: Weight, now: usize) -> bool {
        while self.red.weight() + extra > self.budget {
            // Pop until we find a live, unpinned resident entry whose key
            // is current (lazy revalidation).  Pinned entries are parked
            // and re-inserted so they stay evictable later.
            let mut parked: Vec<(usize, NodeId)> = Vec::new();
            let victim = loop {
                let Some((key, v)) = self.victims.pop() else {
                    self.victims.extend(parked);
                    return false;
                };
                if !self.red.contains(v) {
                    continue; // stale entry for an already-evicted node
                }
                if self.pinned[v.index()] {
                    parked.push((key, v));
                    continue;
                }
                let fresh = self.next_use(v, now);
                if fresh != key {
                    self.victims.push((fresh, v));
                    continue;
                }
                break v;
            };
            self.victims.extend(parked);
            let dirty = !self.blue.contains(victim);
            let needed_again =
                self.next_use(victim, now) != usize::MAX || (self.graph.is_sink(victim) && dirty);
            if dirty && needed_again {
                self.moves.push(Move::Store(victim));
                self.blue.insert(victim, self.graph.weight(victim));
            }
            self.moves.push(Move::Delete(victim));
            self.red.remove(victim, self.graph.weight(victim));
        }
        true
    }

    fn make_red(&mut self, v: NodeId, now: usize) -> bool {
        if self.red.contains(v) {
            return true;
        }
        debug_assert!(self.blue.contains(v), "{v} must have been stored");
        if !self.make_room(self.graph.weight(v), now) {
            return false;
        }
        self.moves.push(Move::Load(v));
        self.insert_resident(v, now);
        true
    }

    fn compute(&mut self, now: usize, v: NodeId) -> bool {
        for &p in self.graph.preds(v) {
            self.pinned[p.index()] = true;
        }
        let ok = self
            .graph
            .preds(v)
            .to_vec()
            .into_iter()
            .all(|p| self.make_red(p, now))
            && self.make_room(self.graph.weight(v), now);
        for &p in self.graph.preds(v) {
            self.pinned[p.index()] = false;
        }
        if !ok {
            return false;
        }
        self.moves.push(Move::Compute(v));
        self.insert_resident(v, now + 1);
        // Re-key the parents: their just-consumed use is gone, so their
        // next-use keys grew.  Keys only ever grow, and a max-heap surfaces
        // large keys, so grown keys must be pushed eagerly (the lazy
        // revalidation on pop can only *shrink* stale entries' priority).
        for &p in self.graph.preds(v) {
            if self.red.contains(p) {
                let nu = self.next_use(p, now + 1);
                self.victims.push((nu, p));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layer_by_layer, naive};
    use pebblyn_core::{algorithmic_lower_bound, min_feasible_budget, validate_schedule};
    use pebblyn_graphs::layered::LayeredCdag;
    use pebblyn_graphs::testgraphs::{diamond, fft_butterfly, random_layered_dag};
    use pebblyn_graphs::{DwtGraph, Layered, WeightScheme};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn valid_on_diamond_at_min_feasible() {
        let g = diamond(WeightScheme::Equal(4));
        let b = min_feasible_budget(&g);
        let s = schedule(&g, b).unwrap();
        let stats = validate_schedule(&g, b, &s).unwrap();
        assert!(stats.cost >= algorithmic_lower_bound(&g));
        assert!(schedule(&g, b - 1).is_none());
    }

    #[test]
    fn reaches_lower_bound_with_ample_memory() {
        for g in [
            diamond(WeightScheme::DoubleAccumulator(4)),
            fft_butterfly(3, WeightScheme::Equal(4)).unwrap(),
        ] {
            let b = g.total_weight();
            let s = schedule(&g, b).unwrap();
            let stats = validate_schedule(&g, b, &s).unwrap();
            assert_eq!(stats.cost, algorithmic_lower_bound(&g));
        }
    }

    /// Boustrophedon compute order over the layers, matching the
    /// layer-by-layer baseline's traversal.
    fn boustrophedon_order(layered: &LayeredCdag) -> Vec<NodeId> {
        let mut order = Vec::new();
        for (li, layer) in Layered::layers(layered).iter().enumerate().skip(1) {
            if li % 2 == 0 {
                order.extend(layer.iter().rev().copied());
            } else {
                order.extend(layer.iter().copied());
            }
        }
        order
    }

    #[test]
    fn beats_fifo_layer_by_layer_on_fft_at_equal_order() {
        // Belady is the optimal eviction policy *for a fixed compute
        // order*; compare both policies under the same (boustrophedon)
        // order across an FFT budget sweep.
        let g = fft_butterfly(4, WeightScheme::Equal(16)).unwrap();
        let layered = LayeredCdag::from_cdag(g.clone());
        let order = boustrophedon_order(&layered);
        let minb = min_feasible_budget(&g);
        let mut belady_total: u64 = 0;
        let mut fifo_total: u64 = 0;
        let mut b = minb;
        while b <= g.total_weight() {
            let bl = schedule_with_order(&g, b, &order)
                .map(|s| validate_schedule(&g, b, &s).expect("valid").cost);
            let ff = layer_by_layer::cost(&layered, b, Default::default());
            if let (Some(bl), Some(ff)) = (bl, ff) {
                belady_total += bl;
                fifo_total += ff;
            }
            b += 8 * 16;
        }
        assert!(
            belady_total <= fifo_total,
            "belady {belady_total} vs fifo {fifo_total}"
        );
    }

    /// A hub value consumed by every subsequent compute: FIFO keeps
    /// evicting it (it is always the oldest), Belady pins it (its next use
    /// is always the nearest).
    #[test]
    fn hub_reuse_pattern() {
        let mut b = pebblyn_core::CdagBuilder::new();
        let hub = b.node(16, "hub");
        let consumers = 6;
        for i in 0..consumers {
            let x = b.node(16, format!("x{i}"));
            let c = b.node(16, format!("c{i}"));
            b.edge(hub, c);
            b.edge(x, c);
        }
        let g = b.build().unwrap();
        // Room for hub + one private input + one result + one slack word.
        let budget = 4 * 16;
        let s = schedule(&g, budget).unwrap();
        let stats = validate_schedule(&g, budget, &s).unwrap();
        // Optimal: hub once + 6 private inputs + 6 outputs = 13 words.
        assert_eq!(
            stats.cost,
            13 * 16,
            "belady must keep the hub resident (schedule: {s})"
        );
    }

    #[test]
    fn never_worse_than_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..20 {
            let g = random_layered_dag(4, 4, 1..=6, &mut rng).unwrap();
            let b = min_feasible_budget(&g);
            let s = schedule(&g, b).expect("feasible at min budget");
            let stats = validate_schedule(&g, b, &s).unwrap();
            assert!(stats.cost <= naive::cost(&g));
        }
    }

    #[test]
    fn random_dags_validate_across_budgets() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..15 {
            let g = random_layered_dag(3, 5, 1..=9, &mut rng).unwrap();
            let minb = min_feasible_budget(&g);
            let step = g.weight_gcd().max(1);
            let mut prev_unseen = true;
            for k in 0..10 {
                let b = minb + k * step * 3;
                if let Some(s) = schedule(&g, b) {
                    validate_schedule(&g, b, &s)
                        .unwrap_or_else(|e| panic!("invalid at b={b}: {e}"));
                    prev_unseen = false;
                }
            }
            assert!(!prev_unseen, "never scheduled anything");
        }
    }

    #[test]
    fn works_on_dwt_graphs_too() {
        // Sanity: the generic scheduler handles the paper's graphs, just
        // not optimally.
        let dwt = DwtGraph::new(16, 4, WeightScheme::Equal(16)).unwrap();
        let g = dwt.cdag();
        let b = min_feasible_budget(g) + 64;
        let s = schedule(g, b).unwrap();
        let stats = validate_schedule(g, b, &s).unwrap();
        let opt = crate::dwt_opt::min_cost(&dwt, b).unwrap();
        assert!(stats.cost >= opt);
        let _ = Layered::layers(&dwt);
    }
}
