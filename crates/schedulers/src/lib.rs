//! # pebblyn-schedulers — dataflow-specific WRBPG pebbling algorithms
//!
//! The paper's central algorithmic contributions, implemented as schedule
//! *generators* (every algorithm returns a concrete move sequence, not just a
//! cost):
//!
//! | Module | Paper reference | What it does |
//! |--------|-----------------|--------------|
//! | [`dwt_opt`] | Algorithm 1, Lemmas 3.2–3.4, Thm 3.5 | provably **optimal** schedules for `DWT(n,d)` graphs, any weights, any budget |
//! | [`kary`] | Eq. (6), Lemma 3.7, Thm 3.8 | provably optimal schedules for arbitrary k-ary tree graphs |
//! | [`memstate`] | Eq. (8), §4.1 | tree scheduling under initial/reuse fast-memory states |
//! | [`mvm_tiling`] | §4.3 | tiling schedules for `MVM(m,n)` with accumulator/vector residency search |
//! | [`layer_by_layer`] | §5.1 | the layer-by-layer heuristic baseline with boustrophedon traversal and FIFO spilling |
//! | [`naive`] | Prop. 2.3 (proof) | the trivial topological-order schedule witnessing existence |
//! | [`mod@min_memory`] | Def. 2.6 | minimum-fast-memory search over any scheduler |
//! | [`multi`] | multiprocessor WRBPG | per-processor red sets: level partitioning and communication-aware list scheduling |
//!
//! Every generator's output is designed to be checked with
//! [`pebblyn_core::validate_schedule`]; the test-suites of this crate do so
//! systematically, and additionally certify optimality of the dynamic
//! programs against the exhaustive `pebblyn-exact` solver on small
//! instances.
//!
//! ```
//! use pebblyn_core::{algorithmic_lower_bound, validate_schedule};
//! use pebblyn_graphs::{DwtGraph, WeightScheme};
//! use pebblyn_schedulers::dwt_opt;
//!
//! let dwt = DwtGraph::new(64, 6, WeightScheme::DoubleAccumulator(16)).unwrap();
//! // Table-1-style result: a handful of words reaches the lower bound.
//! let schedule = dwt_opt::schedule(&dwt, 16 * 16).unwrap();
//! let stats = validate_schedule(dwt.cdag(), 16 * 16, &schedule).unwrap();
//! assert_eq!(stats.cost, algorithmic_lower_bound(dwt.cdag()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod banded_stream;
pub mod conv_stream;
pub mod dwt_opt;
pub mod greedy_belady;
pub mod kary;
pub mod layer_by_layer;
pub mod memstate;
pub mod min_memory;
pub mod multi;
mod multi_sim;
pub mod mvm_tiling;
pub mod naive;
pub mod parallel;
pub mod stack;

pub use api::{by_name, execute, execute_with, registry, ExecuteError, ScheduleError, Scheduler};
pub use min_memory::{min_memory, MinMemoryOptions};
