//! The trivial topological-order scheduler — the constructive half of
//! Proposition 2.3.
//!
//! Every non-source node is computed in topological order: load its parents,
//! compute it, store it, evict everything.  The schedule is valid for any
//! budget at or above the minimum feasible budget and therefore witnesses
//! schedule existence; its cost is far from optimal (every intermediate
//! value makes a round trip through slow memory), which is exactly why the
//! paper's dataflow-specific algorithms matter.

use pebblyn_core::{min_feasible_budget, Cdag, Move, Schedule, Weight};

/// Generate the eager topological schedule, or `None` when no schedule
/// exists at this budget (Proposition 2.3).
pub fn schedule(graph: &Cdag, budget: Weight) -> Option<Schedule> {
    if budget < min_feasible_budget(graph) {
        return None;
    }
    let mut moves = Vec::new();
    for &v in graph.topo_order() {
        if graph.is_source(v) {
            continue;
        }
        for &p in graph.preds(v) {
            moves.push(Move::Load(p));
        }
        moves.push(Move::Compute(v));
        moves.push(Move::Store(v));
        for &p in graph.preds(v) {
            moves.push(Move::Delete(p));
        }
        moves.push(Move::Delete(v));
    }
    Some(Schedule::from_moves(moves))
}

/// The cost the eager schedule will incur:
/// `Σ_{v ∉ A} ( w_v + Σ_{p ∈ H(v)} w_p )` — every value stored once, every
/// edge re-loaded.
pub fn cost(graph: &Cdag) -> Weight {
    graph
        .nodes()
        .filter(|&v| !graph.is_source(v))
        .map(|v| {
            graph.weight(v)
                + graph
                    .preds(v)
                    .iter()
                    .map(|&p| graph.weight(p))
                    .sum::<Weight>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblyn_core::{algorithmic_lower_bound, validate_schedule, CdagBuilder};

    fn two_level() -> Cdag {
        let mut b = CdagBuilder::new();
        let x = b.node(16, "x");
        let y = b.node(16, "y");
        let s = b.node(32, "s");
        let t = b.node(16, "t");
        b.edge(x, s);
        b.edge(y, s);
        b.edge(s, t);
        b.build().unwrap()
    }

    #[test]
    fn schedule_is_valid_at_min_feasible() {
        let g = two_level();
        let b = min_feasible_budget(&g);
        let s = schedule(&g, b).unwrap();
        let stats = validate_schedule(&g, b, &s).unwrap();
        assert_eq!(stats.cost, cost(&g));
        assert!(stats.cost >= algorithmic_lower_bound(&g));
    }

    #[test]
    fn below_min_feasible_returns_none() {
        let g = two_level();
        assert!(schedule(&g, min_feasible_budget(&g) - 1).is_none());
    }

    #[test]
    fn cost_formula_matches_replay() {
        let g = two_level();
        let s = schedule(&g, 1000).unwrap();
        let stats = validate_schedule(&g, 1000, &s).unwrap();
        // s: stored 32 + loads 16+16 ; t: stored 16 + load 32 = 112.
        assert_eq!(stats.cost, 112);
        assert_eq!(cost(&g), 112);
    }
}
